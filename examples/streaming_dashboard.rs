//! Streaming ingestion with immediate durable-record detection.
//!
//! The paper analyzes historical data offline; this example exercises the
//! library's streaming extension: records arrive one by one, the appendable
//! index forest keeps the top-k building block current, and each newcomer is
//! classified as a durable record (or not) the instant it lands — the
//! "record-breaking event" push-notification use case.
//!
//! Run with `cargo run --release -p durable-topk-examples --bin streaming_dashboard`.

use durable_topk::{DurableQuery, LinearScorer, StreamingMonitor, Window};
use rand::prelude::*;

fn main() {
    let mut monitor = StreamingMonitor::new(2, 64);
    let scorer = LinearScorer::new(vec![0.6, 0.4]);
    let (k, tau) = (3usize, 5_000u32);
    let mut rng = StdRng::seed_from_u64(7);

    let total = 60_000usize;
    let mut alerts = 0usize;
    let mut recent_alerts: Vec<(usize, f64)> = Vec::new();
    for i in 0..total {
        // A slowly drifting signal with occasional spikes.
        let drift = (i as f64 / total as f64) * 3.0;
        let spike = if rng.random::<f64>() < 5e-4 { 20.0 * rng.random::<f64>() } else { 0.0 };
        let attrs =
            [drift + rng.random::<f64>() * 4.0 + spike, rng.random::<f64>() * 6.0 + spike * 0.5];
        // `push` indexes the record and answers "is this a τ-durable
        // top-k record as of right now?" in one call.
        if monitor.push(&attrs, &scorer, k, tau) {
            alerts += 1;
            let score = attrs[0] * 0.6 + attrs[1] * 0.4;
            recent_alerts.push((i, score));
        }
    }
    println!(
        "ingested {total} records; {alerts} arrived as durable top-{k} records of their trailing {tau} instants"
    );
    for (t, score) in recent_alerts.iter().rev().take(5) {
        println!("  alert at t={t}: score {score:.2}");
    }

    // The same monitor also answers historical queries over everything
    // ingested so far, served through the forest oracle.
    let n = monitor.len() as u32;
    let q = DurableQuery { k, tau, interval: Window::new(n - 20_000, n - 1) };
    let history = monitor.query(&scorer, &q, true);
    println!(
        "historical re-check over the last 20k records: {} durable ({} top-k probes)",
        history.records.len(),
        history.stats.topk_queries()
    );

    // And the "current champions" view of continuous monitoring.
    let champs = monitor.current_top(&scorer, k, tau);
    println!("current top-{k} of the trailing window: records {champs:?}");
}
