//! "The coldest temperatures in the past 20 years": durable records over
//! weather-like data, including the look-ahead anchoring.
//!
//! Reproduces the introduction's Wikipedia example — a cold wave is
//! newsworthy exactly when a day's low is a durable top-k record of
//! *coldness* over a long look-back window. The look-ahead variant answers
//! the dual question: which records then stood unbeaten for years to come?
//!
//! Run with `cargo run --release -p durable-topk-examples --bin weather_watch`.

use durable_topk::{Algorithm, Anchor, DurableQuery, DurableTopKEngine, Window};
use durable_topk_temporal::{Dataset, SingleAttributeScorer};
use rand::prelude::*;

/// Simulates `years` of daily minimum temperatures with seasonality, slow
/// warming drift, and occasional cold snaps; stores *coldness* (negated
/// temperature) so "colder" means "higher score".
fn simulate(years: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(1, years * 365);
    for day in 0..years * 365 {
        let t = day as f64;
        let seasonal = -10.0 * (std::f64::consts::TAU * t / 365.0).cos();
        let warming = 0.25 * t / (365.0 * years as f64);
        let noise = 4.0 * (rng.random::<f64>() - 0.5);
        let snap = if rng.random::<f64>() < 0.003 {
            -6.0 - 14.0 * rng.random::<f64>().powi(2) * (1.0 + rng.random::<f64>())
        } else {
            0.0
        };
        let temp = 8.0 + seasonal + warming + noise + snap;
        ds.push(&[-temp]); // coldness
    }
    ds
}

fn main() {
    let years = 60;
    let ds = simulate(years, 1234);
    let n = ds.len() as u32;
    let engine = DurableTopKEngine::new(ds).with_lookahead();
    let coldness = SingleAttributeScorer::new(0);

    // "Coldest day of the past decade", asked over the last 25 years; the
    // max-duration probe then upgrades each hit to its strongest claim
    // ("coldest in N years").
    let tau = 10 * 365;
    let q = DurableQuery { k: 1, tau, interval: Window::new(n - 25 * 365, n - 1) };
    let waves = engine.query(Algorithm::THop, &coldness, &q);
    println!(
        "look-back: {} days in the last 25 years were 10-year cold records",
        waves.records.len()
    );
    for &id in waves.records.iter().take(6) {
        let (dur, _) = engine.max_duration(&coldness, id, 1);
        println!(
            "  year {:2}, day {:3}: {:5.1}°C — coldest in the preceding {:.1} years",
            id / 365,
            id % 365,
            -engine.dataset().value(id, 0),
            (dur as f64 / 365.0).min(years as f64),
        );
    }

    // The dual claim: records that stayed unbeaten for the following decade
    // (look-ahead anchoring over the first half of history).
    let q = DurableQuery { k: 1, tau, interval: Window::new(0, n / 2) };
    let unbeaten = engine.query_anchored(Algorithm::THop, &coldness, &q, Anchor::LookAhead);
    println!(
        "look-ahead: {} early cold records stood unbeaten for the following decade",
        unbeaten.records.len()
    );

    // Warming drift means look-back cold records get rarer over time; the
    // look-ahead set concentrates early. Both read as one-line claims.
    println!("(same engine, same index; only the anchoring changed)");
}
