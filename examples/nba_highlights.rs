//! The paper's Fig. 1 case study: finding durable rebound highlights.
//!
//! Compares the durable top-k query against tumbling-window and
//! sliding-window top-k on NBA-like data, illustrating why durable top-k
//! answers are both robust (insensitive to window placement) and
//! interpretable (every answer reads "best in the preceding 5 years").
//!
//! Run with `cargo run --release -p durable-topk-examples --bin nba_highlights`.

use durable_topk::{alternatives, Algorithm, DurableQuery, DurableTopKEngine, Window};
use durable_topk_temporal::SingleAttributeScorer;
use durable_topk_workloads::{nba_attribute, nba_like};

fn main() {
    // 36 seasons of NBA-like history; rank by a single attribute: rebounds.
    let seasons = 36u32;
    let ds = nba_like(120_000, 2024).project(&[nba_attribute("rebounds")]);
    let n = ds.len() as u32;
    let per_season = n / seasons;
    let engine = DurableTopKEngine::new(ds);
    let scorer = SingleAttributeScorer::new(0);
    // A 5-season durability window. Start the query interval one window in,
    // so every claim has a full 5 seasons of history behind it.
    let tau = 5 * per_season;
    let interval = Window::new(tau, n - 1);

    let season_of = |t: u32| 1984 + (t / per_season).min(seasons - 1);

    println!("== durable top-1 rebounds, 5-season look-back window ==");
    let durable = engine.query(Algorithm::THop, &scorer, &DurableQuery { k: 1, tau, interval });
    for &id in &durable.records {
        let (dur, _) = engine.max_duration(&scorer, id, 1);
        let years = dur as f64 / per_season as f64;
        println!(
            "  {}: {} rebounds — best single-game mark of the preceding 5 seasons \
             (actually unbeaten for the prior {:.1} seasons)",
            season_of(id),
            engine.dataset().value(id, 0),
            years.min(seasons as f64),
        );
    }

    println!("\n== tumbling-window top-1 (5-season grid) ==");
    let grid0 = alternatives::tumbling_topk(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
        0,
    );
    let grid1 = alternatives::tumbling_topk(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
        tau / 2,
    );
    let ids0: Vec<u32> = grid0.iter().flat_map(|(_, v)| v.clone()).collect();
    let ids1: Vec<u32> = grid1.iter().flat_map(|(_, v)| v.clone()).collect();
    let stable = ids0.iter().filter(|i| ids1.contains(i)).count();
    println!(
        "  grid at 0: {} answers; grid shifted by 2.5 seasons: {} answers; only {} survive both",
        ids0.len(),
        ids1.len(),
        stable
    );
    println!("  (answers depend on an arbitrary grid placement — cherry-picking risk)");

    println!("\n== sliding-window top-1 union ==");
    let sliding = alternatives::sliding_topk_union(
        engine.dataset(),
        engine.oracle(),
        &scorer,
        1,
        interval,
        tau,
    );
    println!(
        "  {} records appear in some 5-season window's top-1 — {}x the durable answer, \
         with records drifting in and out as the window slides",
        sliding.len(),
        sliding.len() / durable.records.len().max(1)
    );

    // Every durable answer is also a sliding answer, never vice versa.
    assert!(durable.records.iter().all(|r| sliding.contains(r)));
    println!(
        "\ndurable answers are the interpretable core: {} records, each a \
         \"best of the past 5 seasons\" claim",
        durable.records.len()
    );
}
