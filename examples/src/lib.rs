//! Example binaries live at the crate root; see Cargo.toml [[bin]] entries.
