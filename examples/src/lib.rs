//! Example binaries live at the crate root; see the `[[bin]]` entries in Cargo.toml.
