//! Quickstart: build a dataset, run a durable top-k query, inspect results.
//!
//! Run with `cargo run --release -p durable-topk-examples --bin quickstart`.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Window};
use durable_topk_temporal::Dataset;
use durable_topk_workloads::ind;

fn main() {
    // 1. A dataset is a sequence of records ordered by arrival time, each
    //    with d real-valued attributes. Here: 100k synthetic 2-d records.
    let ds: Dataset = ind(100_000, 2, 7);
    let n = ds.len();
    println!("dataset: {} records x {} attributes", n, ds.dim());

    // 2. Build the engine: this constructs the skyline segment tree (the
    //    top-k building block) and, optionally, the durable k-skyband index
    //    that powers the S-Band algorithm.
    let engine = DurableTopKEngine::new(ds).with_skyband_index(16);

    // 3. All query parameters arrive at query time: the rank threshold k,
    //    the durability window τ, the query interval I, and the scoring
    //    function's preference vector u.
    let query = DurableQuery {
        k: 10,
        tau: (n / 10) as u32, // τ = 10% of history
        interval: Window::new((n / 2) as u32, (n - 1) as u32), // most recent half
    };
    let scorer = LinearScorer::new(vec![0.7, 0.3]);

    // 4. Run it. S-Hop is the recommended default; every algorithm returns
    //    the same answer.
    let result = engine.query(Algorithm::SHop, &scorer, &query);
    println!(
        "found {} durable records using {} top-k queries ({} durability checks)",
        result.records.len(),
        result.stats.topk_queries(),
        result.stats.durability_checks,
    );

    // 5. Cross-check with the time-prioritized algorithm.
    let check = engine.query(Algorithm::THop, &scorer, &query);
    assert_eq!(result.records, check.records);

    // 6. For any answer, ask how long its supremacy actually lasted.
    if let Some(&best) = result.records.first() {
        let (duration, probes) = engine.max_duration(&scorer, best, query.k);
        println!(
            "record t={best} stays in the top-{} for {duration} instants ({probes} probes)",
            query.k
        );
    }
}
