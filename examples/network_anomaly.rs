//! Network-anomaly triage with durable top-k (the paper's cybersecurity
//! use case from Section I).
//!
//! A scoring function combines session features (duration, bytes, login
//! attempts, hosts touched); a durable top-k query surfaces sessions that
//! stood out against everything in their surrounding window — candidate
//! intrusions — and the analyst can re-weight features at query time without
//! rebuilding anything.
//!
//! Run with `cargo run --release -p durable-topk-examples --bin network_anomaly`.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Scorer, Window};
use durable_topk_workloads::network_like;

fn main() {
    // 300k connection records, 5 headline features:
    // 0 duration, 1 src_bytes, 2 dst_bytes, 3 login attempts, 4 hosts.
    let ds = network_like(300_000, 99).project(&[0, 1, 2, 3, 4]);
    let n = ds.len() as u32;
    let engine = DurableTopKEngine::new(ds).with_skyband_index(16);

    // A session must dominate ~5% of history around it. Skip the first
    // window so early sessions are not trivially durable.
    let tau = n / 20;
    let interval = Window::new(tau, n - 1);

    // Analyst preference #1: exfiltration-shaped (bytes-heavy).
    let exfil = LinearScorer::new(vec![0.1, 0.5, 0.3, 0.05, 0.05]);
    // Analyst preference #2: credential-stuffing-shaped (logins/hosts).
    let stuffing = LinearScorer::new(vec![0.05, 0.05, 0.05, 0.45, 0.4]);

    for (name, scorer) in [("exfiltration", &exfil), ("credential-stuffing", &stuffing)] {
        let q = DurableQuery { k: 5, tau, interval };
        let result = engine.query(Algorithm::SHop, scorer, &q);
        println!(
            "{name}: {} durable suspicious sessions ({} top-k probes over {} records)",
            result.records.len(),
            result.stats.topk_queries(),
            n
        );
        // Show the strongest alerts (highest-scoring durable sessions).
        let mut ranked: Vec<u32> = result.records.clone();
        ranked.sort_by(|&a, &b| {
            let (sa, sb) =
                (scorer.score(engine.dataset().row(a)), scorer.score(engine.dataset().row(b)));
            sb.partial_cmp(&sa).expect("no NaN")
        });
        for &id in ranked.iter().take(4) {
            let row = engine.dataset().row(id);
            println!(
                "    t={id}: dur={:.2} src={:.2} dst={:.2} logins={:.2} hosts={:.2}",
                row[0], row[1], row[2], row[3], row[4]
            );
        }
    }

    // The same index serves both preferences: nothing was rebuilt between
    // queries — the core property that makes interactive triage feasible.
    println!("(both preferences served by one index; no rebuild between queries)");
}
