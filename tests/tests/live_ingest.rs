//! Live-ingestion equivalence and worker-pool persistence.
//!
//! The incremental `ShardedEngine` must be *indistinguishable* from a
//! from-scratch build: a head shard grown by appends, sealed mid-stream at
//! arbitrary points, answers every `DurTop(k, I, τ)` with `τ ≤ max_tau`
//! record-for-record like both a freshly sharded build over the final
//! dataset and a flat unsharded engine — at every prefix of the ingestion
//! timeline, not just at the end.
//!
//! Separately, the query path must spawn no threads: `BatchExecutor` and
//! `ShardedEngine::query` run on the persistent [`WorkerPool`], so the
//! process-wide spawn counter stays flat across arbitrarily many queries.

use durable_topk::{
    Algorithm, BatchExecutor, DurableQuery, DurableTopKEngine, EngineConfig, LinearScorer,
    QueryContext, ShardedEngine, TopKOracle, TopKResult, Window, WorkerPool,
};
use durable_topk_temporal::Dataset;
use proptest::prelude::*;

/// One randomized query shape, instantiated against a prefix at run time.
#[derive(Debug, Clone)]
struct QuerySpec {
    alg_index: usize,
    k: usize,
    tau_raw: u32,
    seed: u32,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (0usize..Algorithm::ALL.len(), 1usize..5, 0u32..10_000, 0u32..10_000)
        .prop_map(|(alg_index, k, tau_raw, seed)| QuerySpec { alg_index, k, tau_raw, seed })
}

fn rows_strategy(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..8, 2), 2..max_n).prop_map(|rows| {
        rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect()
    })
}

/// Definition-level durability over the first `upto + 1` records: `p` is
/// reported iff fewer than `k` records in its look-back window beat its
/// score.
fn brute_durable(ds: &Dataset, scorer: &LinearScorer, q: &DurableQuery, upto: u32) -> Vec<u32> {
    use durable_topk::Scorer;
    let interval = Window::new(q.interval.start(), q.interval.end().min(upto));
    interval
        .iter()
        .filter(|&t| {
            let lo = t.saturating_sub(q.tau);
            let my = scorer.score(ds.row(t));
            let better = (lo..t).filter(|&u| scorer.score(ds.row(u)) > my).count();
            better < q.k
        })
        .collect()
}

/// Materializes a spec against `n` ingested records, capping `τ` at the
/// engine's exactness bound.
fn materialize(spec: &QuerySpec, n: u32, max_tau: u32) -> (Algorithm, DurableQuery) {
    let tau = 1 + spec.tau_raw % max_tau;
    let a = spec.seed % n;
    let b = (spec.seed / 7) % n;
    let q = DurableQuery { k: spec.k, tau, interval: Window::new(a.min(b), a.max(b)) };
    (Algorithm::ALL[spec.alg_index], q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An engine grown by interleaved appends and queries answers
    /// identically to engines built from scratch, across random `k`/`τ`/
    /// window sequences and shard geometries.
    #[test]
    fn grown_engine_matches_rebuild_and_flat(
        rows in rows_strategy(90),
        span in 1usize..16,
        max_tau in 1u32..24,
        specs in prop::collection::vec(query_strategy(), 1..8),
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len();
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut live = ShardedEngine::new_live(2, span, max_tau);

        // Interleave: append everything, querying a few growing prefixes
        // against a flat engine over the same prefix.
        let mut spec_cursor = specs.iter().cycle();
        for id in 0..n {
            live.append(ds.row(id as u32));
            if id % 11 == 7 {
                let prefix = Dataset::from_rows(2, (0..=id).map(|i| ds.row(i as u32).to_vec()));
                let flat = DurableTopKEngine::new(prefix);
                let spec = spec_cursor.next().expect("cycle never ends");
                let (alg, q) = materialize(spec, (id + 1) as u32, max_tau);
                prop_assert_eq!(
                    live.query(alg, &scorer, &q).records,
                    flat.query(alg, &scorer, &q).records,
                    "prefix={} alg={} q={:?}", id + 1, alg, q
                );
            }
        }

        // Final dataset: grown engine vs from-scratch sharded build vs flat.
        let rebuilt = ShardedEngine::build(&ds, n.div_ceil(span), max_tau).expect("build");
        let flat = DurableTopKEngine::new(ds.clone());
        for spec in &specs {
            let (alg, q) = materialize(spec, n as u32, max_tau);
            let grown = live.query(alg, &scorer, &q);
            let scratch_built = rebuilt.query(alg, &scorer, &q);
            let unsharded = flat.query(alg, &scorer, &q);
            prop_assert_eq!(&grown.records, &scratch_built.records, "alg={} q={:?}", alg, q);
            prop_assert_eq!(&grown.records, &unsharded.records, "alg={} q={:?}", alg, q);
        }
    }

    /// The tentpole gate for head-shard S-Band: an engine grown by appends
    /// with a skyband bound serves `Algorithm::SBand` *natively* — exact
    /// against the definition-level brute force and against a
    /// rebuilt-from-scratch `build_with_skyband` engine, with
    /// `QueryStats::fallback == None`, at **every** prefix of the
    /// ingestion timeline, across at least two seal boundaries.
    #[test]
    fn grown_head_sband_is_native_and_exact_at_every_prefix(
        rows in rows_strategy(60),
        k_max in 1usize..6,
        max_tau in 1u32..16,
        seed in 0u32..10_000,
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len();
        // Two full seals fit in the run, so head, in-flight snapshot and
        // sealed tails are all exercised mid-stream.
        let span = (n / 3).max(1);
        let scorer = LinearScorer::new(vec![0.55, 0.45]);
        let mut live = EngineConfig::new(2, span, max_tau)
            .skyband_bound(k_max)
            .build()
            .expect("live config");
        for id in 0..n {
            live.append(ds.row(id as u32));
            let upto = id as u32;
            let k = 1 + (id + seed as usize) % k_max;
            let tau = 1 + (seed + upto) % max_tau;
            let q = DurableQuery { k, tau, interval: Window::new(0, upto) };
            let got = live.query(Algorithm::SBand, &scorer, &q);
            prop_assert_eq!(
                got.stats.fallback, None,
                "S-Band fell back at prefix {} (q={:?})", id + 1, q
            );
            let expected = brute_durable(&ds, &scorer, &q, upto);
            prop_assert_eq!(
                &got.records, &expected,
                "S-Band diverged from brute force at prefix {} (q={:?})", id + 1, q
            );
        }
        prop_assert!(live.sealed_shards() >= 2, "the run must cross two seal boundaries");

        // Final state: grown engine vs a from-scratch skyband build.
        let rebuilt =
            ShardedEngine::build_with_skyband(&ds, n.div_ceil(span), max_tau, k_max)
                .expect("build");
        for k in 1..=k_max {
            let q = DurableQuery {
                k,
                tau: 1 + (seed + k as u32) % max_tau,
                interval: Window::new(0, (n - 1) as u32),
            };
            let grown = live.query(Algorithm::SBand, &scorer, &q);
            let scratch_built = rebuilt.query(Algorithm::SBand, &scorer, &q);
            prop_assert_eq!(grown.stats.fallback, None);
            prop_assert_eq!(scratch_built.stats.fallback, None);
            prop_assert_eq!(&grown.records, &scratch_built.records, "k={} q={:?}", k, q);
        }
    }

    /// The sharded top-k building block (what `StreamingMonitor::push`
    /// probes) is exact for arbitrary windows, including `τ > max_tau`.
    #[test]
    fn sharded_top_k_is_exact_for_any_window(
        rows in rows_strategy(70),
        span in 1usize..12,
        windows in prop::collection::vec((0u32..10_000, 0u32..10_000, 1usize..5), 1..6),
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len() as u32;
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let mut live = ShardedEngine::new_live(2, span, 4);
        for id in 0..n {
            live.append(ds.row(id));
        }
        let flat = DurableTopKEngine::new(ds.clone());
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        for &(a, b, k) in &windows {
            let (a, b) = (a % n, b % n);
            let w = Window::new(a.min(b), a.max(b));
            live.top_k_into(&scorer, k, w, &mut ctx, &mut out);
            prop_assert_eq!(&out, &flat.oracle().top_k(&ds, &scorer, k, w), "k={} w={}", k, w);
        }
    }
}

/// The acceptance gate for the worker-pool refactor: once the global pool
/// exists, arbitrarily many sharded queries and batch runs spawn zero
/// additional threads — workers persist across queries.
#[test]
fn query_path_spawns_no_threads() {
    let ds = Dataset::from_rows(2, (0..600).map(|i| [((i * 37) % 101) as f64, (i % 13) as f64]));
    let sharded = ShardedEngine::build(&ds, 5, 60).expect("build");
    let engine = DurableTopKEngine::new(ds.clone());
    let executor = BatchExecutor::new(4);
    let scorer = LinearScorer::new(vec![0.5, 0.5]);
    let scorers: Vec<LinearScorer> =
        (1..=6).map(|i| LinearScorer::new(vec![i as f64, (7 - i) as f64])).collect();
    let q = DurableQuery { k: 3, tau: 50, interval: Window::new(100, 599) };

    // Warm-up: force the global pool (and its one-time worker spawns).
    let warm = sharded.query(Algorithm::THop, &scorer, &q);
    executor.run(&engine, Algorithm::THop, &scorers, &q);

    let before = WorkerPool::threads_spawned();
    for _ in 0..25 {
        let got = sharded.query(Algorithm::THop, &scorer, &q);
        assert_eq!(got.records, warm.records);
        executor.run(&engine, Algorithm::SHop, &scorers, &q);
        executor.run_sweep(&engine, &[Algorithm::THop, Algorithm::SHop], &scorer, &q);
        executor.run_queries(&engine, Algorithm::THop, &scorer, std::slice::from_ref(&q));
    }
    assert_eq!(
        WorkerPool::threads_spawned(),
        before,
        "the query path must reuse persistent pool workers, never spawn"
    );
}

/// Appending must also stay spawn-free: sealing collapses the head forest
/// in place on the ingesting thread.
#[test]
fn append_path_spawns_no_threads() {
    let mut live = ShardedEngine::new_live(2, 32, 16);
    // Warm the global pool through an unrelated build first.
    let warm_ds = Dataset::from_rows(2, (0..64).map(|i| [i as f64, (64 - i) as f64]));
    let _ = ShardedEngine::build(&warm_ds, 2, 8).expect("build");
    let before = WorkerPool::threads_spawned();
    for i in 0..500usize {
        live.append(&[((i * 7) % 23) as f64, ((i * 3) % 17) as f64]);
    }
    assert!(live.sealed_shards() > 10, "appends must have sealed shards");
    // Waiting out the background seals reuses pool workers too.
    live.quiesce();
    assert_eq!(live.pending_seals(), 0);
    assert_eq!(WorkerPool::threads_spawned(), before, "append/seal must not spawn");
}
