//! Edge cases, failure paths, and non-monotone scorer coverage.

use durable_topk::{
    Algorithm, CosineScorer, DurableQuery, DurableTopKEngine, LinearScorer, ScanOracle, Scorer,
    TopKOracle, Window,
};
use durable_topk_temporal::Dataset;

#[test]
fn single_record_dataset() {
    let ds = Dataset::from_rows(3, [[1.0, 2.0, 3.0]]);
    let engine = DurableTopKEngine::new(ds).with_skyband_index(4);
    let scorer = LinearScorer::uniform(3);
    let q = DurableQuery { k: 1, tau: 1, interval: Window::new(0, 0) };
    for alg in Algorithm::ALL {
        assert_eq!(engine.query(alg, &scorer, &q).records, vec![0], "alg={alg}");
    }
}

#[test]
fn interval_of_one_instant() {
    let ds = Dataset::from_rows(1, (0..100).map(|i| [((i * 7) % 13) as f64]));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(4);
    let scorer = LinearScorer::uniform(1);
    for t in [0u32, 50, 99] {
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(t, t) };
        let reference = engine.query(Algorithm::TBase, &scorer, &q);
        for alg in Algorithm::ALL {
            assert_eq!(
                engine.query(alg, &scorer, &q).records,
                reference.records,
                "t={t} alg={alg}"
            );
        }
    }
}

#[test]
fn tau_larger_than_history() {
    let ds = Dataset::from_rows(1, (0..50).map(|i| [((i * 11) % 17) as f64]));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(4);
    let scorer = LinearScorer::uniform(1);
    // τ covering far more than all of history: windows clamp at 0, so a
    // record is durable iff it is top-k among ALL its predecessors.
    let q = DurableQuery { k: 3, tau: 10_000, interval: Window::new(0, 49) };
    let expected: Vec<u32> = (0..50u32)
        .filter(|&t| {
            let my = engine.dataset().value(t, 0);
            (0..t).filter(|&u| engine.dataset().value(u, 0) > my).count() < 3
        })
        .collect();
    for alg in Algorithm::ALL {
        assert_eq!(engine.query(alg, &scorer, &q).records, expected, "alg={alg}");
    }
}

#[test]
fn k_larger_than_window_population() {
    let ds = Dataset::from_rows(1, (0..30).map(|i| [i as f64]));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(64);
    let scorer = LinearScorer::uniform(1);
    // k = 50 > any window population: everything is durable.
    let q = DurableQuery { k: 50, tau: 5, interval: Window::new(0, 29) };
    for alg in Algorithm::ALL {
        assert_eq!(engine.query(alg, &scorer, &q).records.len(), 30, "alg={alg}");
    }
}

#[test]
fn cosine_scorer_works_with_general_algorithms() {
    let rows: Vec<[f64; 3]> = (0..400)
        .map(|i| {
            let a = ((i * 13) % 23) as f64 + 1.0;
            let b = ((i * 7) % 19) as f64 + 1.0;
            let c = ((i * 29) % 31) as f64 + 1.0;
            [a, b, c]
        })
        .collect();
    let ds = Dataset::from_rows(3, rows);
    let engine = DurableTopKEngine::new(ds);
    let scorer = CosineScorer::new(vec![1.0, 2.0, 0.5]);
    let q = DurableQuery { k: 4, tau: 50, interval: Window::new(100, 399) };
    // Brute-force reference with the non-monotone scorer.
    let expected: Vec<u32> = q
        .interval
        .iter()
        .filter(|&t| {
            let my = scorer.score(engine.dataset().row(t));
            Window::lookback(t, q.tau)
                .iter()
                .filter(|&u| scorer.score(engine.dataset().row(u)) > my)
                .count()
                < q.k
        })
        .collect();
    for alg in [Algorithm::TBase, Algorithm::THop, Algorithm::SBase, Algorithm::SHop] {
        assert_eq!(engine.query(alg, &scorer, &q).records, expected, "alg={alg}");
    }
}

#[test]
fn sband_with_cosine_falls_back_to_shop() {
    // S-Band's pruning argument needs monotonicity; instead of panicking the
    // engine degrades to S-Hop and flags the substitution.
    let ds = Dataset::from_rows(2, [[1.0, 2.0], [2.0, 1.0], [0.5, 0.5], [3.0, 0.1]]);
    let engine = DurableTopKEngine::new(ds).with_skyband_index(2);
    let scorer = CosineScorer::new(vec![1.0, 1.0]);
    let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 3) };
    let got = engine.query(Algorithm::SBand, &scorer, &q);
    assert_eq!(
        got.stats.fallback,
        Some(durable_topk::FallbackReason::NonMonotoneScorer),
        "non-monotone scorer must be served via fallback"
    );
    assert_eq!(got.records, engine.query(Algorithm::SHop, &scorer, &q).records);
}

#[test]
fn zero_vectors_with_cosine() {
    // Records containing the zero vector must not break the oracle's
    // bounding logic (cosine of zero is defined as 0).
    let ds = Dataset::from_rows(2, [[0.0, 0.0], [1.0, 1.0], [0.0, 0.0], [2.0, 0.1], [0.5, 0.5]]);
    let engine = DurableTopKEngine::new(ds);
    let scorer = CosineScorer::new(vec![1.0, 1.0]);
    let scan = ScanOracle::new();
    for k in 1..=3 {
        let fast = engine.oracle().top_k(engine.dataset(), &scorer, k, Window::new(0, 4));
        let slow = scan.top_k(engine.dataset(), &scorer, k, Window::new(0, 4));
        assert_eq!(fast, slow, "k={k}");
    }
}

#[test]
fn negative_cosine_weights_supported() {
    // Cosine allows signed preferences ("like x0, dislike x1").
    let ds = Dataset::from_rows(
        2,
        (0..200).map(|i| [((i * 3) % 11) as f64 + 1.0, ((i * 5) % 7) as f64 + 1.0]),
    );
    let engine = DurableTopKEngine::new(ds);
    let scorer = CosineScorer::new(vec![1.0, -1.0]);
    let scan = ScanOracle::new();
    for t in [30u32, 120, 199] {
        let w = Window::lookback(t, 40);
        let fast = engine.oracle().top_k(engine.dataset(), &scorer, 3, w);
        let slow = scan.top_k(engine.dataset(), &scorer, 3, w);
        assert_eq!(fast, slow, "t={t}");
    }
}

#[test]
fn stats_reflect_algorithm_behaviour() {
    let ds = Dataset::from_rows(1, (0..2_000).map(|i| [((i * 97) % 389) as f64]));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(8);
    let scorer = LinearScorer::uniform(1);
    let q = DurableQuery { k: 5, tau: 400, interval: Window::new(500, 1_999) };
    let tb = engine.query(Algorithm::TBase, &scorer, &q);
    // T-Base visits every record of I.
    assert_eq!(tb.stats.candidates, 1_500);
    let sb = engine.query(Algorithm::SBase, &scorer, &q);
    // S-Base sorts everything in [I.start - tau, I.end] and never calls the
    // oracle.
    assert_eq!(sb.stats.candidates, 1_900);
    assert_eq!(sb.stats.topk_queries(), 0);
    let th = engine.query(Algorithm::THop, &scorer, &q);
    // T-Hop's durability checks equal its visited candidates.
    assert_eq!(th.stats.durability_checks, th.stats.candidates);
    let sh = engine.query(Algorithm::SHop, &scorer, &q);
    // Blocking prunes: S-Hop checks no more records than T-Hop.
    assert!(sh.stats.durability_checks <= th.stats.durability_checks);
}

#[test]
fn oracle_counters_are_cumulative_across_queries() {
    let ds = Dataset::from_rows(1, (0..500).map(|i| [(i % 97) as f64]));
    let engine = DurableTopKEngine::new(ds);
    let scorer = LinearScorer::uniform(1);
    engine.reset_counters();
    let q = DurableQuery { k: 3, tau: 100, interval: Window::new(100, 499) };
    let r1 = engine.query(Algorithm::THop, &scorer, &q);
    let after_one = engine.oracle_queries();
    assert_eq!(after_one, r1.stats.topk_queries());
    let r2 = engine.query(Algorithm::SHop, &scorer, &q);
    assert_eq!(engine.oracle_queries(), after_one + r2.stats.topk_queries());
}
