//! Property-based tests (proptest) over the core invariants.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Window};
use durable_topk_geom::{dominates, k_skyband, skyband_durations, skyline_indices};
use durable_topk_index::{scan_top_k, SkylineSegTree};
use durable_topk_temporal::{Dataset, Scorer};
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, d: usize, vals: u32) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0..vals, d), 1..max_n).prop_map(move |rows| {
        Dataset::from_rows(
            d,
            rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect::<Vec<_>>()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The segment tree agrees with the scan oracle on arbitrary windows.
    #[test]
    fn segtree_matches_scan(
        ds in dataset_strategy(120, 2, 9),
        k in 1usize..6,
        leaf in 1usize..16,
        seed in 0u32..1000,
    ) {
        let n = ds.len() as u32;
        let a = seed % n;
        let b = (seed / 7) % n;
        let w = Window::new(a.min(b), a.max(b));
        let tree = SkylineSegTree::with_leaf_size(&ds, leaf);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        prop_assert_eq!(tree.top_k(&ds, &scorer, k, w), scan_top_k(&ds, &scorer, k, w));
    }

    /// All algorithms agree with the brute-force durability definition.
    #[test]
    fn algorithms_match_definition(
        ds in dataset_strategy(80, 2, 5),
        k in 1usize..5,
        tau_raw in 1u32..120,
        seed in 0u32..1000,
    ) {
        let n = ds.len() as u32;
        let tau = 1 + tau_raw % n.max(2);
        let a = seed % n;
        let b = (seed / 3) % n;
        let interval = Window::new(a.min(b), a.max(b));
        let q = DurableQuery { k, tau, interval };
        let engine = DurableTopKEngine::new(ds).with_skyband_index(8);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let expected: Vec<u32> = interval
            .iter()
            .filter(|&t| {
                let w = Window::lookback(t, tau);
                let my = scorer.score(engine.dataset().row(t));
                w.clamp_to(engine.dataset().len())
                    .iter()
                    .filter(|&u| scorer.score(engine.dataset().row(u)) > my)
                    .count()
                    < k
            })
            .collect();
        for alg in Algorithm::ALL {
            prop_assert_eq!(&engine.query(alg, &scorer, &q).records, &expected, "alg={}", alg);
        }
    }

    /// Skyline: nothing in the skyline is dominated; everything outside is.
    #[test]
    fn skyline_is_exact(ds in dataset_strategy(100, 3, 6)) {
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let sky = skyline_indices(&ds, &ids);
        for &p in &ids {
            let dominated = ids.iter().any(|&q| q != p && dominates(ds.row(q), ds.row(p)));
            prop_assert_eq!(sky.contains(&p), !dominated, "record {}", p);
        }
    }

    /// k-skyband nests: the k-skyband is contained in the (k+1)-skyband.
    #[test]
    fn skyband_nesting(ds in dataset_strategy(80, 2, 6), k in 1usize..5) {
        let ids: Vec<u32> = (0..ds.len() as u32).collect();
        let inner = k_skyband(&ds, &ids, k);
        let outer = k_skyband(&ds, &ids, k + 1);
        prop_assert!(inner.iter().all(|p| outer.contains(p)));
    }

    /// Skyband durations are monotone in k: a larger k never shortens τ_p.
    #[test]
    fn skyband_durations_monotone_in_k(ds in dataset_strategy(80, 2, 6)) {
        let d1 = skyband_durations(&ds, 1);
        let d2 = skyband_durations(&ds, 2);
        let d4 = skyband_durations(&ds, 4);
        for i in 0..ds.len() {
            prop_assert!(d1[i] <= d2[i]);
            prop_assert!(d2[i] <= d4[i]);
        }
    }

    /// Answers always arrive sorted, deduplicated, and inside I.
    #[test]
    fn answers_are_canonical(
        ds in dataset_strategy(60, 2, 8),
        k in 1usize..4,
        tau in 1u32..40,
    ) {
        let n = ds.len() as u32;
        let interval = Window::new(n / 4, (n * 3 / 4).max(n / 4));
        let q = DurableQuery { k, tau, interval };
        let engine = DurableTopKEngine::new(ds);
        let scorer = LinearScorer::uniform(2);
        let r = engine.query(Algorithm::SHop, &scorer, &q);
        prop_assert!(r.records.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        prop_assert!(r.records.iter().all(|&t| interval.contains(t)), "inside I");
    }
}
