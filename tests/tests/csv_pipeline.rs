//! CSV round-trip pipeline: generate → export → import → query.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Window};
use durable_topk_temporal::{read_csv_file, write_csv_file};
use durable_topk_workloads::{nba_attribute, nba_like, NBA_ATTRIBUTES};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("durable-topk-csv-tests");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir.join(name)
}

#[test]
fn csv_roundtrip_preserves_query_answers() {
    let ds = nba_like(3_000, 9);
    let path = tmp("nba.csv");
    write_csv_file(&path, &ds, Some(&NBA_ATTRIBUTES)).expect("export");
    let imported = read_csv_file(&path).expect("import");
    assert_eq!(imported.columns.as_deref().map(|c| c.len()), Some(NBA_ATTRIBUTES.len()));
    assert_eq!(imported.dataset.len(), ds.len());

    let q = DurableQuery { k: 5, tau: 400, interval: Window::new(500, 2_999) };
    let weights = {
        let mut w = vec![0.0; 15];
        w[nba_attribute("points")] = 0.7;
        w[nba_attribute("rebounds")] = 0.3;
        w
    };
    let scorer = LinearScorer::new(weights);
    let original = DurableTopKEngine::new(ds).query(Algorithm::SHop, &scorer, &q);
    let roundtrip = DurableTopKEngine::new(imported.dataset).query(Algorithm::SHop, &scorer, &q);
    assert_eq!(original.records, roundtrip.records);
}

#[test]
fn projected_export_matches_projected_query() {
    let full = nba_like(2_000, 10);
    let cols = [nba_attribute("points"), nba_attribute("assists")];
    let nba2 = full.project(&cols);
    let path = tmp("nba2.csv");
    write_csv_file(&path, &nba2, Some(&["points", "assists"])).expect("export");
    let imported = read_csv_file(&path).expect("import").dataset;
    assert_eq!(imported.dim(), 2);
    for id in [0u32, 777, 1_999] {
        assert_eq!(imported.row(id), nba2.row(id), "row {id}");
    }
}
