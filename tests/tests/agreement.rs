//! Cross-algorithm agreement: the paper's five algorithms (plus variants)
//! must return identical answer sets on every workload family.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Window};
use durable_topk_temporal::{Dataset, Scorer};
use durable_topk_workloads::{anti, ind, nba_attribute, nba_like, network_like, preference_suite};
use rand::prelude::*;

fn brute_durable(ds: &Dataset, scorer: &dyn Scorer, q: &DurableQuery) -> Vec<u32> {
    q.interval
        .clamp_to(ds.len())
        .iter()
        .filter(|&t| {
            let w = Window::lookback(t, q.tau).clamp_to(ds.len());
            let my = scorer.score(ds.row(t));
            w.iter().filter(|&u| scorer.score(ds.row(u)) > my).count() < q.k
        })
        .collect()
}

fn check_all(ds: Dataset, seed: u64, queries: usize) {
    let n = ds.len();
    let d = ds.dim();
    let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
    let mut rng = StdRng::seed_from_u64(seed);
    for (qi, u) in preference_suite(d, queries, seed).into_iter().enumerate() {
        let scorer = LinearScorer::new(u);
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        let q = DurableQuery {
            k: rng.random_range(1..12),
            tau: rng.random_range(1..(n as u32 / 2).max(2)),
            interval: Window::new(a.min(b), a.max(b)),
        };
        let expected = brute_durable(engine.dataset(), &scorer, &q);
        for alg in Algorithm::ALL {
            let got = engine.query(alg, &scorer, &q);
            assert_eq!(got.records, expected, "q{qi} alg={alg} params={q:?}");
        }
    }
}

#[test]
fn agreement_on_ind() {
    check_all(ind(600, 2, 11), 11, 6);
}

#[test]
fn agreement_on_anti() {
    check_all(anti(600, 12), 12, 6);
}

#[test]
fn agreement_on_nba_like() {
    let ds = nba_like(700, 13).project(&[nba_attribute("points"), nba_attribute("assists")]);
    check_all(ds, 13, 6);
}

#[test]
fn agreement_on_network_5d() {
    let ds = network_like(500, 14).project(&[0, 1, 2, 3, 4]);
    check_all(ds, 14, 5);
}

#[test]
fn agreement_on_tie_heavy_data() {
    // Tiny value alphabet: nearly every score collides.
    let mut rng = StdRng::seed_from_u64(15);
    let rows: Vec<[f64; 2]> =
        (0..500).map(|_| [rng.random_range(0..3) as f64, rng.random_range(0..3) as f64]).collect();
    check_all(Dataset::from_rows(2, rows), 15, 8);
}

#[test]
fn agreement_on_constant_data() {
    // All records identical: everyone ties; every record is durable for
    // every tau and k.
    let ds = Dataset::from_rows(2, std::iter::repeat_n([1.0, 1.0], 200));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(4);
    let scorer = LinearScorer::uniform(2);
    let q = DurableQuery { k: 1, tau: 50, interval: Window::new(0, 199) };
    for alg in Algorithm::ALL {
        let got = engine.query(alg, &scorer, &q);
        assert_eq!(got.records.len(), 200, "alg={alg}");
    }
}

#[test]
fn agreement_on_monotone_decreasing_data() {
    // Strictly decreasing scores: only records within tau of a higher
    // predecessor are excluded — i.e. for k=1 only the first record of I
    // plus anything whose window clamps... brute force decides.
    let ds = Dataset::from_rows(1, (0..300).map(|i| [(300 - i) as f64]));
    check_all(ds, 16, 4);
}

#[test]
fn agreement_on_strictly_increasing_data() {
    // Every record beats all predecessors: everything is durable.
    let ds = Dataset::from_rows(1, (0..300).map(|i| [i as f64]));
    let engine = DurableTopKEngine::new(ds).with_skyband_index(4);
    let scorer = LinearScorer::uniform(1);
    let q = DurableQuery { k: 3, tau: 100, interval: Window::new(50, 299) };
    for alg in Algorithm::ALL {
        assert_eq!(engine.query(alg, &scorer, &q).records.len(), 250, "alg={alg}");
    }
}
