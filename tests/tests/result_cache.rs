//! Sealed-shard result cache exactness: cache-on ≡ cache-off.
//!
//! The result cache memoizes full-range answers of immutable sealed tails,
//! keyed on `(shard generation, algorithm, scorer fingerprint, k, τ)`.
//! Correctness rests on two invariants these tests drive end to end:
//! a cached answer must be **bit-identical** to a recomputation (across
//! seals, pending splices and paged spills), and a shard that changes
//! identity (merge, storage migration) must never serve a stale entry.

use durable_topk::{
    Algorithm, Backpressure, DurableQuery, DurableTopKEngine, EngineConfig, LinearScorer,
    PagedStorage, Scorer, ScorerSpec, ServeEngine, ServeRequest, Window,
};
use durable_topk_index::{NodeSummary, OracleScorer};
use durable_topk_temporal::Dataset;
use proptest::prelude::*;
use std::sync::Arc;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..8, 2), 24..64).prop_map(|rows| {
        rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect()
    })
}

/// A deterministic dataset for the unit-style tests.
fn fixed_dataset(n: usize) -> Dataset {
    Dataset::from_rows(
        2,
        (0..n).map(|i| {
            let x = ((i * 37) % 23) as f64;
            [x, 23.0 - x]
        }),
    )
}

/// A scorer with no structural fingerprint: scores exactly like the wrapped
/// linear scorer but reports `None`, so the cache must bypass it entirely.
#[derive(Debug)]
struct OpaqueScorer(LinearScorer);

impl Scorer for OpaqueScorer {
    fn score(&self, attrs: &[f64]) -> f64 {
        self.0.score(attrs)
    }

    fn is_monotone(&self) -> bool {
        self.0.is_monotone()
    }
}

impl OracleScorer for OpaqueScorer {
    fn node_bound(&self, ds: &Dataset, node: &NodeSummary) -> f64 {
        self.0.node_bound(ds, node)
    }
    // fingerprint() deliberately left at the default `None`.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lockstep ingestion into a cache-off memory engine and a cache-on
    /// paged engine yields identical answers (records *and* fallback
    /// classification) for every algorithm at every prefix — and the run
    /// demonstrably exercised the cache (hits > 0), crossed at least two
    /// seals and spilled at least one chunk.
    #[test]
    fn cached_engine_matches_uncached_at_every_prefix(
        rows in rows_strategy(),
        max_tau in 1u32..16,
        k_max in 1usize..5,
        seed in 0u32..10_000,
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len();
        // Small spans force several seals; spill_after = 1 keeps only the
        // newest sealed chunk resident, so cache hits must stay exact
        // without faulting spilled pages back in.
        let span = (n / 6).max(1);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut plain = EngineConfig::new(2, span, max_tau)
            .skyband_bound(k_max)
            .build()
            .expect("plain live config");
        let mut cached = EngineConfig::new(2, span, max_tau)
            .skyband_bound(k_max)
            .storage(Arc::new(PagedStorage::with_temp_file(1).expect("temp-file backend")))
            .result_cache(1 << 20)
            .build()
            .expect("cached live config");

        // Fixed k and τ so every prefix re-probes sealed shards with the
        // same cache key — sealed-tail answers repeat, guaranteeing hits.
        let k = 1 + seed as usize % k_max;
        let tau = 1 + seed % max_tau;
        for id in 0..n as u32 {
            plain.append(ds.row(id));
            cached.append(ds.row(id));
            let q = DurableQuery { k, tau, interval: Window::new(0, id) };
            for alg in Algorithm::ALL {
                let want = plain.query(alg, &scorer, &q);
                let got = cached.query(alg, &scorer, &q);
                prop_assert_eq!(
                    &got.records, &want.records,
                    "cache diverged at prefix {} (alg={} q={:?})", id + 1, alg, q
                );
                prop_assert_eq!(
                    got.stats.fallback, want.stats.fallback,
                    "fallback state diverged at prefix {} (alg={} q={:?})", id + 1, alg, q
                );
            }
        }

        // The equivalence must actually have replayed memoized answers
        // over a run with enough seals and at least one spilled chunk.
        cached.quiesce();
        prop_assert!(cached.sealed_shards() >= 2, "run must cross at least two seals");
        let storage = cached.storage().stats();
        prop_assert!(storage.spilled_chunks >= 1, "run must spill at least one chunk");
        let stats = cached.result_cache().expect("cache configured").stats();
        prop_assert!(stats.hits > 0, "sealed-tail re-probes must hit ({stats:?})");

        // Final state agrees with the flat unsharded reference engine.
        let flat = DurableTopKEngine::new(ds.clone()).with_skyband_index(k_max);
        let q = DurableQuery { k, tau, interval: Window::new(0, (n - 1) as u32) };
        for alg in Algorithm::ALL {
            prop_assert_eq!(
                &cached.query(alg, &scorer, &q).records,
                &flat.query(alg, &scorer, &q).records,
                "alg={} q={:?}", alg, q
            );
        }
    }
}

/// Re-probing a sealed tail replays the memoized answer; migrating the
/// engine onto a different storage backend re-stamps every shard's
/// generation, so the migrated engine must miss (no stale entry) and
/// still produce the identical answer.
#[test]
fn storage_migration_invalidates_without_changing_answers() {
    let ds = fixed_dataset(96);
    let scorer = LinearScorer::new(vec![0.7, 0.3]);
    let mut engine =
        EngineConfig::new(2, 16, 8).result_cache(1 << 20).build().expect("cached config");
    for id in 0..ds.len() as u32 {
        engine.append(ds.row(id));
    }
    engine.quiesce();
    assert!(engine.sealed_shards() >= 2, "fixture must seal at least twice");

    let q = DurableQuery { k: 3, tau: 5, interval: Window::new(0, ds.len() as u32 - 1) };
    let first = engine.query(Algorithm::THop, &scorer, &q);
    let populated = engine.result_cache().expect("cache").stats();
    let second = engine.query(Algorithm::THop, &scorer, &q);
    let warm = engine.result_cache().expect("cache").stats();
    assert_eq!(first.records, second.records);
    assert!(warm.hits > populated.hits, "re-probe must hit ({populated:?} -> {warm:?})");
    assert_eq!(warm.misses, populated.misses, "re-probe must not miss");

    // Migration re-chunks every sealed shard: same bytes, new identity.
    let engine =
        engine.migrate_storage(Arc::new(PagedStorage::with_temp_file(1).expect("backend")));
    let migrated = engine.query(Algorithm::THop, &scorer, &q);
    let after = engine.result_cache().expect("cache").stats();
    assert_eq!(migrated.records, first.records, "migration must not change the answer");
    assert!(
        after.misses > warm.misses,
        "migrated shards carry fresh generations; the old entries must not be probed \
         ({warm:?} -> {after:?})"
    );
}

/// Opaque scorers (no structural fingerprint) bypass the cache entirely:
/// no hits, no misses, and answers identical to the fingerprinted scorer
/// they wrap.
#[test]
fn opaque_scorers_bypass_the_cache() {
    let ds = fixed_dataset(96);
    let linear = LinearScorer::new(vec![0.7, 0.3]);
    let opaque = OpaqueScorer(linear.clone());
    assert_eq!(opaque.fingerprint(), None);

    let mut engine =
        EngineConfig::new(2, 16, 8).result_cache(1 << 20).build().expect("cached config");
    for id in 0..ds.len() as u32 {
        engine.append(ds.row(id));
    }
    engine.quiesce();

    let q = DurableQuery { k: 2, tau: 6, interval: Window::new(0, ds.len() as u32 - 1) };
    let want = engine.query(Algorithm::SHop, &linear, &q);
    let baseline = engine.result_cache().expect("cache").stats();
    for _ in 0..3 {
        let got = engine.query(Algorithm::SHop, &opaque, &q);
        assert_eq!(got.records, want.records);
    }
    let after = engine.result_cache().expect("cache").stats();
    assert_eq!(after.hits, baseline.hits, "bypass must not count hits");
    assert_eq!(after.misses, baseline.misses, "bypass must not count misses");
}

/// A starved byte budget evicts old entries instead of growing without
/// bound — and evictions never compromise exactness.
#[test]
fn byte_budget_evicts_under_pressure_without_losing_exactness() {
    let ds = fixed_dataset(128);
    let scorer = LinearScorer::new(vec![0.5, 0.5]);
    let budget = 8 * 1024;
    let mut plain = EngineConfig::new(2, 16, 12).build().expect("plain config");
    let mut tiny =
        EngineConfig::new(2, 16, 12).result_cache(budget).build().expect("tiny cache config");
    for id in 0..ds.len() as u32 {
        plain.append(ds.row(id));
        tiny.append(ds.row(id));
    }
    plain.quiesce();
    tiny.quiesce();

    // A wide parameter sweep mints far more distinct cache keys than the
    // budget can hold resident.
    for round in 0..3 {
        for k in 1..6usize {
            for tau in 1..12u32 {
                let q = DurableQuery { k, tau, interval: Window::new(0, ds.len() as u32 - 1) };
                for alg in [Algorithm::TBase, Algorithm::THop, Algorithm::SHop] {
                    let want = plain.query(alg, &scorer, &q);
                    let got = tiny.query(alg, &scorer, &q);
                    assert_eq!(
                        got.records, want.records,
                        "eviction broke exactness (round={round} alg={alg} q={q:?})"
                    );
                }
            }
        }
    }
    let stats = tiny.result_cache().expect("cache").stats();
    assert!(stats.evictions > 0, "the sweep must overflow the budget ({stats:?})");
    assert!(
        stats.resident_bytes <= budget as u64,
        "resident bytes must respect the budget ({stats:?})"
    );
}

/// The serve layer surfaces cache counters: per-request stats flow back
/// through the response handle, and `ServeStats` aggregates the engine's
/// live cache totals.
#[test]
fn serve_stats_surface_cache_counters() {
    let ds = fixed_dataset(96);
    let mut engine =
        EngineConfig::new(2, 16, 8).result_cache(1 << 20).build().expect("live engine");
    for id in 0..ds.len() as u32 {
        engine.append(ds.row(id));
    }
    engine.quiesce();
    let serving = ServeEngine::new(engine, 16, Backpressure::Block);

    let req = ServeRequest {
        alg: Algorithm::THop,
        query: DurableQuery { k: 2, tau: 5, interval: Window::new(0, ds.len() as u32 - 1) },
        scorer: ScorerSpec::Uniform,
    };
    let mut responses = Vec::new();
    for _ in 0..3 {
        let handle = serving.submit(req.clone()).expect("submit");
        responses.push(handle.wait().expect("response"));
    }
    serving.quiesce();
    let stats = serving.stats();
    serving.shutdown();

    assert!(responses.windows(2).all(|w| w[0].records == w[1].records));
    assert!(stats.cache_misses > 0, "first request must populate ({stats:?})");
    assert!(stats.cache_hits > 0, "repeats must hit ({stats:?})");
    assert!(stats.cache_bytes > 0, "populated cache must report resident bytes ({stats:?})");
    // Per-request stats carry the split too: across the three identical
    // requests both counters must show up.
    let per_request_hits: u64 = responses.iter().map(|r| r.stats.cache_hits).sum();
    let per_request_misses: u64 = responses.iter().map(|r| r.stats.cache_misses).sum();
    assert!(per_request_hits > 0, "response stats must report hits");
    assert!(per_request_misses > 0, "response stats must report misses");
}
