//! Standing-query subscriptions vs the full-recompute oracle.
//!
//! The acceptance gate for the subscription layer: a subscription
//! registered at an arbitrary point of the stream must hold, at **every**
//! later prefix, exactly the records a full `try_query` recompute over
//! its interval yields — bit-identical, with zero unexpected fallbacks —
//! while the stream crosses seal boundaries and the storage tier spills
//! sealed chunks to disk. The incremental path (bounded per-arrival
//! probes, skyband-gated fast-path skips, seal-boundary verifications)
//! must be *observationally absent*: only its counters may show it ran.

use durable_topk::{
    Algorithm, Backpressure, DurableQuery, EngineConfig, PagedStorage, ScorerSpec, ServeEngine,
    ServeRequest, SubscriptionId, Window,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// One randomized standing query, registered mid-stream.
#[derive(Debug, Clone)]
struct SubSpec {
    k: usize,
    tau_raw: u32,
    start_raw: u32,
    /// Which prefix length triggers registration.
    register_at: usize,
    /// Use the non-monotone cosine scorer (gate must stand down, results
    /// must still match).
    cosine: bool,
    /// Tail-follow (`end = u32::MAX`) instead of a fixed interval.
    tail: bool,
}

fn sub_strategy() -> impl Strategy<Value = SubSpec> {
    (1usize..=4, 0u32..10_000, 0u32..10_000, 0usize..96, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(k, tau_raw, start_raw, register_at, cosine, tail)| SubSpec {
            k,
            tau_raw,
            start_raw,
            register_at,
            cosine,
            tail,
        },
    )
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..8, 2), 48..96).prop_map(|rows| {
        rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect()
    })
}

const MAX_TAU: u32 = 24;
const SPAN: usize = 16;

/// Materializes a spec against the stream length it registers at.
fn materialize(spec: &SubSpec, n_total: usize) -> ServeRequest {
    let start = spec.start_raw % (n_total as u32);
    let end = if spec.tail { u32::MAX } else { start.saturating_add(1 + spec.tau_raw % 64) };
    ServeRequest {
        alg: Algorithm::THop,
        query: DurableQuery {
            k: spec.k,
            tau: 1 + spec.tau_raw % MAX_TAU,
            interval: Window::new(start, end),
        },
        scorer: if spec.cosine {
            ScorerSpec::Cosine(vec![0.7, 0.3])
        } else {
            ScorerSpec::Linear(vec![0.6, 0.4])
        },
    }
}

/// The full-recompute oracle for one subscription at prefix length `len`.
fn recompute(
    serving: &ServeEngine,
    req: &ServeRequest,
    len: usize,
) -> Result<Option<Vec<u32>>, TestCaseError> {
    let q = &req.query;
    if len == 0 || (q.interval.start() as usize) >= len {
        return Ok(Some(Vec::new()));
    }
    let full = DurableQuery {
        k: q.k,
        tau: q.tau,
        interval: Window::new(q.interval.start(), q.interval.end().min((len - 1) as u32)),
    };
    let engine = serving.engine();
    let scorer: Box<dyn durable_topk::OracleScorer + Sync> =
        if matches!(req.scorer, ScorerSpec::Cosine(_)) {
            Box::new(durable_topk::CosineScorer::new(vec![0.7, 0.3]))
        } else {
            Box::new(durable_topk::LinearScorer::new(vec![0.6, 0.4]))
        };
    let result = engine.try_query(req.alg, scorer.as_ref(), &full);
    let result = match result {
        Ok(r) => r,
        Err(e) => return Err(TestCaseError::fail(format!("recompute failed: {e}"))),
    };
    prop_assert_eq!(result.stats.fallback, None, "recompute must not fall back");
    Ok(Some(result.records))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Subscriptions registered mid-stream hold exactly the full-recompute
    /// answer at every prefix, across ≥ 2 seal boundaries and ≥ 1 paged
    /// spill, with no divergence flagged and no fallback anywhere.
    #[test]
    fn standing_results_match_recompute_at_every_prefix(
        rows in rows_strategy(),
        subs in prop::collection::vec(sub_strategy(), 1..=4),
    ) {
        let n = rows.len();
        let storage = PagedStorage::with_temp_file(1).expect("temp spill file");
        let engine = EngineConfig::new(2, SPAN, MAX_TAU)
            .leaf_size(8)
            .skyband_bound(4)
            .storage(Arc::new(storage))
            .build()
            .expect("live config");
        let serving = ServeEngine::new(engine, 16, Backpressure::Block);

        let mut registered: Vec<(SubscriptionId, ServeRequest)> = Vec::new();
        for (id, row) in rows.iter().enumerate() {
            // Register every subscription whose time has come — *before*
            // this append, so the arrival itself already flows through
            // the incremental path.
            for spec in subs.iter().filter(|s| s.register_at % n == id) {
                let req = materialize(spec, id.max(1));
                let sid = match serving.subscribe_verified(req.clone()) {
                    Ok(sid) => sid,
                    Err(e) => return Err(TestCaseError::fail(format!("register: {e}"))),
                };
                registered.push((sid, req));
            }
            serving.append(row).map_err(|e| TestCaseError::fail(format!("append: {e}")))?;
            // Drain in-flight refresh jobs, then compare against the
            // oracle at this exact prefix.
            serving.subscription_sync();
            for (sid, req) in &registered {
                let snap = serving.poll_subscription(*sid).expect("registered");
                prop_assert!(!snap.diverged, "prefix {}: diverged req={:?}", id + 1, req);
                let expected = recompute(&serving, req, id + 1)?.expect("non-empty prefix");
                prop_assert_eq!(
                    &snap.records, &expected,
                    "prefix {}: incremental != recompute, req={:?}", id + 1, req
                );
            }
        }

        // The run actually exercised what it claims: seal crossings and
        // cold storage underneath the incremental path.
        let engine = serving.engine();
        prop_assert!(engine.sealed_shards() >= 2, "must cross at least two seal boundaries");
        prop_assert!(
            engine.storage().stats().spilled_chunks >= 1,
            "must spill at least one sealed chunk"
        );
        drop(engine);
        serving.shutdown();
    }
}
