//! Concurrency-invariant checker integration: the ranked lock tracking of
//! `durable_topk_check` exercised through the public serving surface.
//!
//! Two properties gate the checker tentpole:
//!
//! 1. **Inversions are caught, with a witness** — an intentionally
//!    inverted acquisition (subscription registry before the engine, the
//!    reverse of the workspace hierarchy) panics in debug builds, and the
//!    report quotes the witness path: both threads and both held-stack
//!    snapshots that close the cycle.
//! 2. **The real system is inversion-free under perturbation** — a mixed
//!    ingest + serve + subscribe + cache workload driven with seeded
//!    yield injection at every tracked acquisition completes deadlock-free
//!    with zero fallbacks, across several seeds (each seed walks the
//!    schedule through a different interleaving).

use durable_topk::check::{self, LockClass, TrackedMutex};
use durable_topk::{
    Algorithm, Backpressure, DurableQuery, EngineConfig, ScorerSpec, ServeEngine, ServeRequest,
    Window,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn row(i: usize) -> [f64; 2] {
    [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]
}

/// The workspace hierarchy says engine (rank 10) before registry
/// (rank 20). Acquiring them inverted must panic — and the report must
/// name both threads of the witness cycle, so the diagnosis never
/// requires reproducing the deadlock itself.
#[test]
#[cfg_attr(not(debug_assertions), ignore = "lock tracking is debug-only")]
fn inverted_registry_engine_acquisition_is_caught_with_a_witness() {
    let engine = Arc::new(TrackedMutex::new(LockClass::Engine, ()));
    let registry = Arc::new(TrackedMutex::new(LockClass::SubscriptionRegistry, ()));

    // Establish the legal direction on a named thread, so the inversion
    // report below has a recorded witness to quote.
    {
        let engine = Arc::clone(&engine);
        let registry = Arc::clone(&registry);
        std::thread::Builder::new()
            .name("legal-order".into())
            .spawn(move || {
                let e = engine.lock();
                let r = registry.lock();
                drop(r);
                drop(e);
            })
            .expect("spawn")
            .join()
            .expect("the legal direction must not panic");
    }

    // Now invert it: registry first, engine second.
    let payload = std::thread::Builder::new()
        .name("inverter".into())
        .spawn(move || {
            let _r = registry.lock();
            let _e = engine.lock();
        })
        .expect("spawn")
        .join()
        .expect_err("the inverted acquisition must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("lock-order inversion"), "got: {msg}");
    assert!(msg.contains("Engine"), "names the blocked class: {msg}");
    assert!(msg.contains("SubscriptionRegistry"), "names the held class: {msg}");
    assert!(msg.contains("inverter"), "names this thread: {msg}");
    assert!(msg.contains("legal-order"), "quotes the witness thread: {msg}");
}

/// Schedule-perturbation stress: ingest racing queued queries and a
/// standing subscription over a result-cached engine, with seeded yields
/// injected before every tracked acquisition. Any latent ordering bug
/// that needs a particular interleaving gets many chances to fire; the
/// run must stay deadlock-free, exact in shape, and fallback-free.
#[test]
fn seeded_yield_stress_completes_deadlock_free_without_fallbacks() {
    const SPAN: usize = 64;
    const MAX_TAU: u32 = 32;
    const BASE: usize = 128;
    const TOTAL: usize = 512;

    for seed in [0x9e37u64, 42, 7] {
        check::set_yield_seed(seed);
        let mut engine =
            EngineConfig::new(2, SPAN, MAX_TAU).result_cache(1 << 18).build().expect("config");
        for i in 0..BASE {
            engine.append(&row(i));
        }
        let serve = ServeEngine::new(engine, 16, Backpressure::Block);
        let _sub = serve
            .subscribe_verified(ServeRequest {
                alg: Algorithm::THop,
                query: DurableQuery { k: 2, tau: 16, interval: Window::new(0, u32::MAX) },
                scorer: ScorerSpec::Linear(vec![0.3, 0.7]),
            })
            .expect("valid standing query");
        let appended = AtomicU32::new(BASE as u32);
        let fallbacks = AtomicU32::new(0);

        std::thread::scope(|scope| {
            for c in 0..2usize {
                let serve = serve.clone();
                let appended = &appended;
                let fallbacks = &fallbacks;
                scope.spawn(move || {
                    for r in 0..40usize {
                        let i = c * 1_000 + r;
                        let upto = appended.load(Ordering::Acquire);
                        let b = (i as u32).wrapping_mul(7919) % upto;
                        let a = b.saturating_sub((i as u32).wrapping_mul(311) % upto);
                        let req = ServeRequest {
                            alg: if i % 2 == 0 { Algorithm::THop } else { Algorithm::SHop },
                            query: DurableQuery {
                                k: 1 + i % 3,
                                tau: 1 + (i as u32).wrapping_mul(17) % MAX_TAU,
                                interval: Window::new(a, b),
                            },
                            scorer: ScorerSpec::Linear(vec![0.6, 0.4]),
                        };
                        let handle = serve.submit(req).expect("accepted");
                        let response = handle.wait().expect("served");
                        if response.stats.fallback.is_some() {
                            fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // Ingestion racing the clients across several seal boundaries.
            for i in BASE..TOTAL {
                serve.append(&row(i)).expect("arity matches");
                appended.store(i as u32 + 1, Ordering::Release);
            }
        });
        serve.quiesce();

        // Repeat one sealed-range query: with the stream quiesced, shard
        // generations are stable, so the second run must replay memoized
        // per-shard answers.
        let cached_req = ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery { k: 2, tau: 16, interval: Window::new(0, BASE as u32 - 1) },
            scorer: ScorerSpec::Linear(vec![0.5, 0.5]),
        };
        for _ in 0..2 {
            let response =
                serve.submit(cached_req.clone()).expect("accepted").wait().expect("served");
            assert!(response.stats.fallback.is_none(), "seed {seed}");
        }
        let stats = serve.stats();
        serve.shutdown();

        assert_eq!(fallbacks.load(Ordering::Relaxed), 0, "fallbacks=0 required (seed {seed})");
        assert_eq!(stats.failed, 0, "seed {seed}");
        assert_eq!(stats.subscriptions, 1, "seed {seed}");
        assert!(stats.refreshes + stats.fast_path_skips > 0, "the subscription ran (seed {seed})");
        assert!(stats.cache_hits > 0, "the repeated sealed query must hit (seed {seed})");
        assert!(serve.engine().sealed_shards() >= (TOTAL - BASE) / SPAN, "seed {seed}");
    }
    check::set_yield_seed(0);

    let report = check::report();
    if report.enabled {
        assert!(report.tracked_acquisitions > 0, "tracking must have observed the stress");
        assert!(report.max_held_depth >= 2, "nested engine->registry holds occurred");
    }
}
