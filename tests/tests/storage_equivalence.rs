//! Tiered storage exactness: `PagedStorage` ≡ `MemoryStorage`.
//!
//! The storage backend is invisible to queries by construction — a sealed
//! tail's record chunk must decode bit-identically after spilling to
//! pager-backed pages and reloading on demand. These properties drive two
//! live engines in lockstep, one per backend, and require record-for-record
//! identical answers for **every** algorithm at **every** ingestion prefix,
//! across at least two spills (`spill_after = 1` keeps only the newest
//! sealed chunk resident).

use durable_topk::{
    Algorithm, DurableQuery, DurableTopKEngine, EngineConfig, LinearScorer, PagedStorage,
    ShardedEngine, Window,
};
use durable_topk_temporal::Dataset;
use proptest::prelude::*;
use std::sync::Arc;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..8, 2), 24..64).prop_map(|rows| {
        rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect()
    })
}

/// A live engine over the paged backend, spilling every sealed chunk but
/// the newest.
fn paged_live(span: usize, max_tau: u32, k_max: usize) -> ShardedEngine {
    EngineConfig::new(2, span, max_tau)
        .skyband_bound(k_max)
        .storage(Arc::new(PagedStorage::with_temp_file(1).expect("temp-file backend")))
        .build()
        .expect("paged live config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lockstep ingestion into a memory-backed and a paged engine yields
    /// identical answers for every algorithm at every prefix, and the run
    /// demonstrably crossed the cold tier (≥ 2 spills, > 0 cold fetches).
    #[test]
    fn paged_engine_matches_memory_at_every_prefix(
        rows in rows_strategy(),
        max_tau in 1u32..16,
        k_max in 1usize..5,
        seed in 0u32..10_000,
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len();
        // Small spans force several seals, so spill_after = 1 spills ≥ 2
        // chunks well before ingestion ends.
        let span = (n / 6).max(1);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut memory = EngineConfig::new(2, span, max_tau)
            .skyband_bound(k_max)
            .build()
            .expect("memory live config");
        let mut paged = paged_live(span, max_tau, k_max);

        for id in 0..n as u32 {
            memory.append(ds.row(id));
            paged.append(ds.row(id));
            let k = 1 + (id as usize + seed as usize) % k_max;
            let tau = 1 + (seed + id) % max_tau;
            let a = (seed.wrapping_mul(31) + id) % (id + 1);
            let q = DurableQuery { k, tau, interval: Window::new(a, id) };
            for alg in Algorithm::ALL {
                let warm = memory.query(alg, &scorer, &q);
                let cold = paged.query(alg, &scorer, &q);
                prop_assert_eq!(
                    &cold.records, &warm.records,
                    "backends diverged at prefix {} (alg={} q={:?})", id + 1, alg, q
                );
                prop_assert_eq!(
                    cold.stats.fallback, warm.stats.fallback,
                    "fallback state diverged at prefix {} (alg={} q={:?})", id + 1, alg, q
                );
            }
        }

        // The equivalence must have been exercised against spilled chunks,
        // not a run where everything stayed resident.
        paged.quiesce();
        let stats = paged.storage().stats();
        prop_assert!(
            stats.spilled_chunks >= 2,
            "the run must spill at least twice (spilled={})", stats.spilled_chunks
        );
        prop_assert!(
            stats.cold_fetches > 0,
            "queries must have faulted spilled chunks back in"
        );

        // Final state: both backends also agree with the flat unsharded
        // engine on the full history.
        let flat = DurableTopKEngine::new(ds.clone()).with_skyband_index(k_max);
        for alg in Algorithm::ALL {
            let q = DurableQuery {
                k: 1 + seed as usize % k_max,
                tau: 1 + seed % max_tau,
                interval: Window::new(0, (n - 1) as u32),
            };
            let warm = memory.query(alg, &scorer, &q);
            let cold = paged.query(alg, &scorer, &q);
            let reference = flat.query(alg, &scorer, &q);
            prop_assert_eq!(&cold.records, &warm.records, "alg={} q={:?}", alg, q);
            prop_assert_eq!(&cold.records, &reference.records, "alg={} q={:?}", alg, q);
        }
    }

    /// Migrating an already-grown engine onto the paged backend
    /// (`migrate_storage` mid-life) preserves every answer.
    #[test]
    fn migrating_a_grown_engine_preserves_answers(
        rows in rows_strategy(),
        max_tau in 1u32..12,
        seed in 0u32..10_000,
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len() as u32;
        let span = (n as usize / 5).max(1);
        let scorer = LinearScorer::new(vec![0.45, 0.55]);
        let mut live = ShardedEngine::new_live(2, span, max_tau);
        for id in 0..n {
            live.append(ds.row(id));
        }
        let q = DurableQuery {
            k: 1 + seed as usize % 4,
            tau: 1 + seed % max_tau,
            interval: Window::new(seed % n, n - 1),
        };
        let before: Vec<_> =
            Algorithm::ALL.iter().map(|&alg| live.query(alg, &scorer, &q).records).collect();

        let mut live =
            live.migrate_storage(Arc::new(PagedStorage::with_temp_file(1).expect("backend")));
        for (&alg, expected) in Algorithm::ALL.iter().zip(&before) {
            prop_assert_eq!(
                &live.query(alg, &scorer, &q).records, expected,
                "migration changed the answer (alg={})", alg
            );
        }

        // The migrated engine keeps ingesting into the paged backend.
        for id in 0..n {
            live.append(ds.row(id));
        }
        let doubled = Dataset::from_rows(
            2,
            (0..2 * n).map(|i| ds.row(i % n).to_vec()),
        );
        let flat = DurableTopKEngine::new(doubled);
        let q2 = DurableQuery { interval: Window::new(q.interval.start(), 2 * n - 1), ..q };
        for alg in Algorithm::ALL {
            prop_assert_eq!(
                &live.query(alg, &scorer, &q2).records,
                &flat.query(alg, &scorer, &q2).records,
                "post-migration ingestion diverged (alg={})", alg
            );
        }
    }
}
