//! Serving-layer integration: the request queue over the worker pool.
//!
//! Three properties gate the serving tentpole:
//!
//! 1. **Exactness under concurrency** — a mixed workload replayed through
//!    the queue while appends race across several seal boundaries agrees
//!    record-for-record with a flat engine rebuilt over the final
//!    dataset. Durability windows only look backwards, so any request
//!    whose interval ends before the published ingestion watermark has a
//!    timing-independent answer.
//! 2. **No panic reachable from request input** — bad `τ`/`k`/intervals
//!    and even a deliberately panicking scorer fail exactly one
//!    completion handle; the worker, the queue, and subsequent requests
//!    keep serving.
//! 3. **Structural guarantees** — shutdown drains every accepted
//!    request, and arbitrarily many served requests spawn zero threads
//!    beyond the persistent pool's.

use durable_topk::{
    Algorithm, Backpressure, Dataset, DurableQuery, DurableTopKEngine, LinearScorer, OracleScorer,
    Scorer, ScorerSpec, ServeEngine, ServeError, ServeRequest, ShardedEngine, Window, WorkerPool,
};
use durable_topk_index::NodeSummary;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn row(i: usize) -> [f64; 2] {
    [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]
}

fn dataset(n: usize) -> Dataset {
    Dataset::from_rows(2, (0..n).map(row))
}

/// Appends racing queued queries across several seal boundaries: every
/// served answer must match a flat engine over the final dataset.
#[test]
fn ingest_while_serving_stays_exact() {
    const BASE: usize = 200;
    const TOTAL: usize = 2_200;
    const SPAN: usize = 256;
    const MAX_TAU: u32 = 64;
    let mut engine = ShardedEngine::new_live(2, SPAN, MAX_TAU);
    for i in 0..BASE {
        engine.append(&row(i));
    }
    let serve = ServeEngine::new(engine, 64, Backpressure::Block);
    let algs = [Algorithm::THop, Algorithm::SHop, Algorithm::TBase, Algorithm::SBand];
    // Published ingestion watermark: queries only touch records below it.
    let appended = AtomicU32::new(BASE as u32);

    let collected = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..3usize {
            let serve = serve.clone();
            let appended = &appended;
            clients.push(scope.spawn(move || {
                let mut collected = Vec::new();
                for r in 0..120usize {
                    let i = c * 1_000 + r;
                    let upto = appended.load(Ordering::Acquire);
                    let b = (i as u32).wrapping_mul(7919) % upto;
                    let a = b.saturating_sub((i as u32).wrapping_mul(311) % upto);
                    let req = ServeRequest {
                        alg: algs[i % algs.len()],
                        query: DurableQuery {
                            k: 1 + i % 4,
                            tau: 1 + (i as u32).wrapping_mul(17) % MAX_TAU,
                            interval: Window::new(a, b),
                        },
                        scorer: ScorerSpec::Linear(vec![0.6, 0.4]),
                    };
                    let handle = serve.submit(req.clone()).expect("accepted");
                    let response = handle.wait().expect("served");
                    collected.push((req, response.records));
                }
                collected
            }));
        }
        // The ingestion side: drive the engine across many seal
        // boundaries while the clients hammer the queue.
        for i in BASE..TOTAL {
            serve.append(&row(i)).expect("arity matches");
            appended.store(i as u32 + 1, Ordering::Release);
        }
        clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect::<Vec<_>>()
    });
    serve.shutdown();
    serve.quiesce();
    assert!(
        serve.engine().sealed_shards() >= (TOTAL - BASE) / SPAN,
        "the stream must have crossed several seal boundaries"
    );

    // Reference: a flat engine over the final dataset. Look-back windows
    // make every collected answer timing-independent.
    let flat = DurableTopKEngine::new(dataset(TOTAL)).with_skyband_index(4);
    let scorer = LinearScorer::new(vec![0.6, 0.4]);
    assert_eq!(collected.len(), 360);
    for (req, records) in collected {
        let expected = flat.query(req.alg, &scorer, &req.query);
        assert_eq!(records, expected.records, "req={req:?}");
    }
}

/// Regression: the appender must never deadlock against busy workers.
///
/// The hazard: `ServeEngine::append` holds the engine write lock; inside,
/// `ShardedEngine` hits the pending-seal cap and waits for the oldest
/// seal — but that seal job sits in the pool channel *behind* serve
/// tokens whose workers are all parked on the engine **read** lock
/// (held up by this very write lock). Without seal work-stealing the
/// process wedges permanently. With it, the appender produces the seal
/// inline and everything drains.
#[test]
fn append_backpressure_never_deadlocks_against_busy_workers() {
    const SPAN: usize = 32;
    const MAX_TAU: u32 = 16;
    let mut engine = ShardedEngine::new_live(2, SPAN, MAX_TAU);
    for i in 0..64 {
        engine.append(&row(i));
    }
    let serve = ServeEngine::new(engine, 32, Backpressure::Block);
    let appended = AtomicU32::new(64);

    std::thread::scope(|scope| {
        let client = {
            let serve = serve.clone();
            let appended = &appended;
            scope.spawn(move || {
                // Keep every pool worker saturated with queued requests so
                // seal tokens always queue behind serve tokens.
                for i in 0..400u32 {
                    let upto = appended.load(Ordering::Acquire);
                    let handle = serve
                        .submit(ServeRequest {
                            alg: Algorithm::THop,
                            query: DurableQuery {
                                k: 1 + (i as usize) % 3,
                                tau: 1 + i % MAX_TAU,
                                interval: Window::new(i.wrapping_mul(13) % upto, upto - 1),
                            },
                            scorer: ScorerSpec::Uniform,
                        })
                        .expect("accepted");
                    assert!(handle.wait().is_ok(), "request {i}");
                }
            })
        };
        // Cross ~90 seal boundaries while the client hammers the queue —
        // far past the pending-seal cap, so the appender repeatedly waits
        // for (and must steal) the oldest seal.
        for i in 64..3_000usize {
            serve.append(&row(i)).expect("arity matches");
            appended.store(i as u32 + 1, Ordering::Release);
        }
        client.join().expect("client thread");
    });
    serve.quiesce();
    serve.shutdown();
    let engine = serve.engine();
    assert_eq!(engine.len(), 3_000);
    assert_eq!(engine.pending_seals(), 0);
    assert!(engine.sealed_shards() >= (3_000 - SPAN) / SPAN);
}

/// Shutdown must serve (not discard) every request accepted before it.
#[test]
fn shutdown_drains_in_flight_requests() {
    let engine = ShardedEngine::build(&dataset(800), 4, 60).expect("build");
    let serve = ServeEngine::new(engine, 128, Backpressure::Block);
    let handles: Vec<_> = (0..96)
        .map(|i| {
            serve
                .submit(ServeRequest {
                    alg: [Algorithm::THop, Algorithm::SHop][i % 2],
                    query: DurableQuery {
                        k: 1 + i % 3,
                        tau: 1 + (i as u32) % 60,
                        interval: Window::new(0, 799),
                    },
                    scorer: ScorerSpec::Uniform,
                })
                .expect("accepted")
        })
        .collect();
    serve.shutdown();
    // After the drain, every handle resolves without blocking.
    for handle in handles {
        let outcome = handle.try_take().expect("shutdown drained every accepted request");
        assert!(outcome.is_ok());
    }
    let stats = serve.stats();
    assert_eq!(stats.completed, 96);
    assert_eq!(stats.depth, 0);
    assert_eq!(
        serve
            .submit(ServeRequest {
                alg: Algorithm::THop,
                query: DurableQuery { k: 1, tau: 10, interval: Window::new(0, 799) },
                scorer: ScorerSpec::Uniform,
            })
            .map(|_| ()),
        Err(ServeError::ShuttingDown)
    );
}

/// A scorer that panics once its trigger fires — fault injection for the
/// worker-pool panic audit.
#[derive(Debug)]
struct ExplodingScorer;

impl Scorer for ExplodingScorer {
    fn score(&self, attrs: &[f64]) -> f64 {
        if attrs[0] >= 0.0 {
            panic!("scorer exploded mid-request");
        }
        attrs[0]
    }

    fn is_monotone(&self) -> bool {
        true
    }
}

impl OracleScorer for ExplodingScorer {
    fn node_bound(&self, _ds: &Dataset, _node: &NodeSummary) -> f64 {
        f64::INFINITY
    }
}

/// The satellite audit: a panicking request fails only its own completion
/// handle; the pool replaces nothing and subsequent requests are served
/// by the same persistent workers.
#[test]
fn panicking_scorer_fails_one_handle_and_the_pool_recovers() {
    let engine = ShardedEngine::build(&dataset(500), 3, 40).expect("build");
    let serve = ServeEngine::new(engine, 32, Backpressure::Block);
    let query = DurableQuery { k: 2, tau: 30, interval: Window::new(0, 499) };
    // Warm the pool, then freeze the spawn counter.
    let warm = serve
        .submit(ServeRequest { alg: Algorithm::THop, query, scorer: ScorerSpec::Uniform })
        .expect("accepted")
        .wait()
        .expect("served");
    let spawned_before = WorkerPool::threads_spawned();

    for round in 0..4 {
        let boom = serve
            .submit(ServeRequest {
                alg: Algorithm::THop,
                query,
                scorer: ScorerSpec::Custom(Arc::new(ExplodingScorer)),
            })
            .expect("accepted");
        match boom.wait() {
            Err(ServeError::Panicked(msg)) => {
                assert!(msg.contains("scorer exploded"), "round={round} msg={msg}")
            }
            other => panic!("round={round}: expected a panic error, got {other:?}"),
        }
        // The very next request is served correctly by the same workers.
        let ok = serve
            .submit(ServeRequest { alg: Algorithm::THop, query, scorer: ScorerSpec::Uniform })
            .expect("accepted")
            .wait()
            .expect("served after a panic");
        assert_eq!(ok.records, warm.records, "round={round}");
    }
    assert_eq!(
        WorkerPool::threads_spawned(),
        spawned_before,
        "recovery must reuse persistent workers, never spawn replacements"
    );
    assert_eq!(serve.stats().failed, 4);
    serve.shutdown();
}

/// The serving acceptance guard: an entire replayed workload spawns no
/// threads beyond the persistent pool's.
#[test]
fn serving_spawns_no_threads() {
    let engine = ShardedEngine::build(&dataset(600), 4, 50).expect("build");
    let serve = ServeEngine::new(engine, 64, Backpressure::Block);
    let request = |i: usize| ServeRequest {
        alg: [Algorithm::THop, Algorithm::SHop, Algorithm::TBase][i % 3],
        query: DurableQuery {
            k: 1 + i % 4,
            tau: 1 + (i as u32) % 50,
            interval: Window::new((i as u32 * 13) % 600, 599),
        },
        scorer: ScorerSpec::Uniform,
    };
    // Warm-up: the global pool and the serve path.
    serve.submit(request(0)).expect("accepted").wait().expect("served");
    let before = WorkerPool::threads_spawned();
    let handles: Vec<_> = (0..200).map(|i| serve.submit(request(i)).expect("accepted")).collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert!(handle.wait().is_ok(), "request {i}");
    }
    serve.shutdown();
    assert_eq!(
        WorkerPool::threads_spawned(),
        before,
        "the serving path must reuse persistent pool workers, never spawn"
    );
}

/// τ beyond the overlap and an interval past the history are responses,
/// not aborts — reachable straight through the public serving API.
#[test]
fn bad_request_input_never_panics_the_server() {
    let engine = ShardedEngine::build(&dataset(300), 3, 20).expect("build");
    let serve = ServeEngine::new(engine, 16, Backpressure::Block);
    let cases: Vec<(ServeRequest, &str)> = vec![
        (
            ServeRequest {
                alg: Algorithm::THop,
                query: DurableQuery { k: 1, tau: 2_000, interval: Window::new(0, 299) },
                scorer: ScorerSpec::Uniform,
            },
            "exceeds the shard overlap",
        ),
        (
            ServeRequest {
                alg: Algorithm::SHop,
                query: DurableQuery { k: 0, tau: 5, interval: Window::new(0, 299) },
                scorer: ScorerSpec::Uniform,
            },
            "k must be positive",
        ),
        (
            ServeRequest {
                alg: Algorithm::SBase,
                query: DurableQuery { k: 1, tau: 0, interval: Window::new(0, 299) },
                scorer: ScorerSpec::Uniform,
            },
            "tau must be positive",
        ),
        (
            ServeRequest {
                alg: Algorithm::TBase,
                query: DurableQuery { k: 1, tau: 5, interval: Window::new(900, 999) },
                scorer: ScorerSpec::Uniform,
            },
            "starts past",
        ),
        (
            ServeRequest {
                alg: Algorithm::THop,
                query: DurableQuery { k: 1, tau: 5, interval: Window::new(0, 299) },
                scorer: ScorerSpec::Linear(vec![1.0]),
            },
            "arity mismatch",
        ),
    ];
    for (req, expected) in cases {
        let outcome = serve.submit(req.clone()).expect("accepted").wait();
        match outcome {
            Err(ServeError::Query(e)) => {
                assert!(e.to_string().contains(expected), "req={req:?}: {e}")
            }
            other => panic!("req={req:?}: expected a query error, got {other:?}"),
        }
    }
    // Still serving.
    let ok = serve
        .submit(ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery { k: 1, tau: 5, interval: Window::new(0, 299) },
            scorer: ScorerSpec::Uniform,
        })
        .expect("accepted")
        .wait();
    assert!(ok.is_ok());
    serve.shutdown();
}
