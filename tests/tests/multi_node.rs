//! Scatter-gather cluster vs the single-node oracle.
//!
//! The acceptance gate for the network layer: a [`Coordinator`] over a
//! cluster of nodes — three static slices plus one live tail, with one
//! member reached through a real loopback TCP round-trip — must answer
//! every `DurTop(k, I, τ)` **bit-identically** to one in-process
//! [`ShardedEngine`] over the same timeline, at every ingestion prefix,
//! for every algorithm, with zero fallbacks anywhere. The partitioning,
//! the left-context overlap, the wire codec and the merge must all be
//! *observationally absent*.

use durable_topk::{
    Algorithm, Backpressure, DurableQuery, EngineConfig, LinearScorer, ScorerSpec, ServeEngine,
    ServeRequest, ShardedEngine, Window,
};
use durable_topk_net::{
    Coordinator, LocalNode, Node, NodeIdentity, NodeServer, NodeServerOptions, RemoteNode,
    RemoteOptions,
};
use durable_topk_temporal::Dataset;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::net::TcpListener;
use std::sync::Arc;

/// Shard span for every engine in the cluster and the reference: small
/// enough that both the static slices and the live tail cross several
/// seal boundaries.
const SPAN: usize = 8;
/// Skyband maintainer bound; queries keep `k ≤ K_MAX` so S-Band stays
/// native on every head.
const K_MAX: usize = 4;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u32..8, 2), 64..112).prop_map(|rows| {
        rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect()
    })
}

/// A serving engine hosting the global slice `[lo, hi]` of `ds`, with
/// `max_tau` records of left context below `lo` (clamped at the timeline
/// start) — the overlap that keeps every durability window exact.
fn slice_node(ds: &Dataset, lo: u32, hi: u32, max_tau: u32) -> (ServeEngine, NodeIdentity) {
    let ext_lo = lo.saturating_sub(max_tau);
    let mut engine = EngineConfig::new(ds.dim(), SPAN, max_tau)
        .skyband_bound(K_MAX)
        .build()
        .expect("slice config");
    for id in ext_lo..=hi {
        engine.append(ds.row(id));
    }
    (ServeEngine::new(engine, 16, Backpressure::Block), NodeIdentity { base: ext_lo, owned_lo: lo })
}

/// The scorer `execute_request` materializes for `spec` — the reference
/// engine must score exactly the same way.
fn materialize(spec: &ScorerSpec, dim: usize) -> LinearScorer {
    match spec {
        ScorerSpec::Uniform => LinearScorer::uniform(dim),
        ScorerSpec::Linear(w) => LinearScorer::new(w.clone()),
        _ => unreachable!("test only uses uniform/linear specs"),
    }
}

/// One cluster query checked against the reference engine: identical
/// records, no fallback on either side.
fn check_query(
    cluster: &Coordinator,
    reference: &ShardedEngine,
    alg: Algorithm,
    spec: &ScorerSpec,
    q: &DurableQuery,
    context: &str,
) -> Result<(), TestCaseError> {
    let req = ServeRequest { alg, query: *q, scorer: spec.clone() };
    let response = match cluster.query(&req) {
        Ok(r) => r,
        Err(e) => return Err(TestCaseError::fail(format!("{context}: cluster query: {e}"))),
    };
    let scorer = materialize(spec, reference.dim());
    let want = reference.query(alg, &scorer, q);
    prop_assert_eq!(
        &response.records,
        &want.records,
        "{}: cluster diverged (alg={} q={:?})",
        context,
        alg,
        q
    );
    prop_assert_eq!(
        response.stats.fallback,
        None,
        "{}: cluster fell back (alg={} q={:?})",
        context,
        alg,
        q
    );
    prop_assert_eq!(
        want.stats.fallback,
        None,
        "{}: reference fell back (alg={} q={:?})",
        context,
        alg,
        q
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Four nodes tile the timeline — three static, one ingesting live,
    /// the second reached over loopback TCP — and the coordinator's
    /// answer matches the single-engine answer for every algorithm at
    /// every prefix of the live tail, plus a randomized sub-interval
    /// sweep at the final prefix.
    #[test]
    fn multi_node_matches_single_node_at_every_prefix(
        rows in rows_strategy(),
        max_tau in 1u32..8,
        seed in 0u32..10_000,
    ) {
        let ds = Dataset::from_rows(2, rows);
        let n = ds.len() as u32;
        // Static slices cover the first three quarters; the last quarter
        // streams into the live node one record at a time.
        let (b1, b2, b3) = (n / 4, n / 2, 3 * n / 4);

        let (serve0, id0) = slice_node(&ds, 0, b1 - 1, max_tau);
        let (serve1, id1) = slice_node(&ds, b1, b2 - 1, max_tau);
        let (serve2, id2) = slice_node(&ds, b2, b3 - 1, max_tau);
        // The live node starts with its left context plus the first owned
        // record (the coordinator requires every member to own something).
        let (serve3, id3) = slice_node(&ds, b3, b3, max_tau);

        // Node 1 joins through a real TCP round-trip: a loopback server
        // over a clone of its serving engine, dialed by a RemoteNode.
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| TestCaseError::fail(format!("bind: {e}")))?;
        let server =
            NodeServer::spawn(listener, serve1.clone(), id1, NodeServerOptions::default())
                .map_err(|e| TestCaseError::fail(format!("spawn server: {e}")))?;
        let remote1 = RemoteNode::connect(server.addr().to_string(), RemoteOptions::default());

        let nodes: Vec<Arc<dyn Node>> = vec![
            Arc::new(LocalNode::new(serve0.clone(), id0)),
            Arc::new(remote1),
            Arc::new(LocalNode::new(serve2.clone(), id2)),
            Arc::new(LocalNode::new(serve3.clone(), id3)),
        ];
        let cluster = match Coordinator::new(nodes) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("build cluster: {e}"))),
        };
        prop_assert_eq!(cluster.cluster_max_tau(), max_tau, "context must back the full τ range");

        // The single-engine oracle over the same prefix of the timeline.
        let mut reference = EngineConfig::new(2, SPAN, max_tau)
            .skyband_bound(K_MAX)
            .build()
            .expect("reference config");
        for id in 0..=b3 {
            reference.append(ds.row(id));
        }

        // Walk the live tail: append to the live node and the reference in
        // lockstep, refresh the routing table, and compare every algorithm
        // over the full prefix.
        for upto in b3..n {
            if upto > b3 {
                serve3
                    .append(ds.row(upto))
                    .map_err(|e| TestCaseError::fail(format!("append: {e}")))?;
                reference.append(ds.row(upto));
                if let Err(e) = cluster.refresh_ranges() {
                    return Err(TestCaseError::fail(format!("refresh: {e}")));
                }
            }
            prop_assert_eq!(cluster.total_len(), upto as usize + 1, "routing table must track growth");
            let step = (upto - b3) as usize;
            let spec = if step % 2 == 0 {
                ScorerSpec::Linear(vec![0.6, 0.4])
            } else {
                ScorerSpec::Uniform
            };
            let k = 1 + (step + seed as usize) % K_MAX;
            let tau = 1 + (seed + upto) % max_tau;
            let q = DurableQuery { k, tau, interval: Window::new(0, upto) };
            for alg in Algorithm::ALL {
                check_query(&cluster, &reference, alg, &spec, &q, "prefix walk")?;
            }
        }

        // Randomized sub-intervals at the final prefix: pieces that hit
        // one node, several nodes, and cross every boundary.
        let spec = ScorerSpec::Linear(vec![0.55, 0.45]);
        for i in 0..48u32 {
            let b = (seed.wrapping_mul(31).wrapping_add(i.wrapping_mul(7919))) % n;
            let a = b.saturating_sub(1 + i.wrapping_mul(104_729) % n);
            let q = DurableQuery {
                k: 1 + i as usize % K_MAX,
                tau: 1 + (seed + i) % max_tau,
                interval: Window::new(a, b),
            };
            for alg in Algorithm::ALL {
                check_query(&cluster, &reference, alg, &spec, &q, "interval sweep")?;
            }
        }

        // The run must have exercised what it claims: several seals on
        // both sides of the comparison, and real frames over the wire.
        reference.quiesce();
        prop_assert!(
            reference.sealed_shards() >= 2,
            "reference must cross at least two seal boundaries"
        );
        serve3.quiesce();
        prop_assert!(
            serve3.engine().sealed_shards() >= 2,
            "the live node must cross at least two seal boundaries"
        );
        prop_assert!(server.served() > 0, "node 1 must have answered over TCP");
        prop_assert_eq!(server.failed(), 0, "no TCP query may fail");
        let stats = cluster.stats();
        prop_assert_eq!(stats.nodes.len(), 4);
        for node in &stats.nodes {
            prop_assert!(node.requests > 0, "every node must be routed to ({})", node.label);
            prop_assert_eq!(node.errors, 0, "no node may report errors ({})", &node.label);
        }

        drop(server);
        for serve in [serve0, serve1, serve2, serve3] {
            serve.shutdown();
        }
    }
}
