//! Failure injection and robustness tests for the storage substrate.

use durable_topk::LinearScorer;
use durable_topk_store::{t_base_proc, t_hop_proc, BufferPool, RelStore, PAGE_SIZE};
use durable_topk_temporal::{Dataset, Window};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("durable-topk-failure-tests");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir.join(name)
}

fn dataset(n: usize) -> Dataset {
    Dataset::from_rows(2, (0..n).map(|i| [((i * 31) % 211) as f64, ((i * 17) % 89) as f64]))
}

#[test]
fn corrupted_magic_is_rejected() {
    let path = tmp("magic.db");
    let ds = dataset(100);
    {
        RelStore::create(&path, &ds, 16, 32).expect("create");
    }
    // Flip a byte in the magic number.
    let mut bytes = std::fs::read(&path).expect("read file");
    bytes[3] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(RelStore::open(&path, 32).is_err(), "corrupted magic must not open");
}

#[test]
fn results_identical_under_extreme_memory_pressure() {
    // A single-frame buffer pool thrashes on every access but must still
    // produce exact answers.
    let ds = dataset(2_000);
    let path = tmp("thrash.db");
    let roomy_answers = {
        let mut store = RelStore::create(&path, &ds, 32, 256).expect("create");
        let scorer = LinearScorer::uniform(2);
        let (a, _) =
            t_hop_proc(&mut store, &scorer, 5, Window::new(500, 1_999), 300).expect("t-hop");
        a
    };
    let mut tiny = RelStore::open(&path, 1).expect("open with one frame");
    let scorer = LinearScorer::uniform(2);
    let (a, stats) =
        t_hop_proc(&mut tiny, &scorer, 5, Window::new(500, 1_999), 300).expect("t-hop");
    assert_eq!(a, roomy_answers);
    // With a single frame, every switch between index and data pages is a
    // physical read.
    assert!(stats.io.misses > 50, "one frame must thrash, misses={}", stats.io.misses);
}

#[test]
fn reopened_store_equals_fresh_store() {
    let ds = dataset(1_500);
    let path = tmp("reopen.db");
    let scorer = LinearScorer::new(vec![0.2, 0.8]);
    let fresh = {
        let mut store = RelStore::create(&path, &ds, 64, 64).expect("create");
        let (a, _) =
            t_base_proc(&mut store, &scorer, 3, Window::new(200, 1_499), 150).expect("t-base");
        a
    };
    let mut reopened = RelStore::open(&path, 64).expect("open");
    let (b, _) =
        t_base_proc(&mut reopened, &scorer, 3, Window::new(200, 1_499), 150).expect("t-base");
    assert_eq!(fresh, b);
}

#[test]
fn pool_flush_then_crash_recovers_committed_pages() {
    // Simulate a crash after flush: data written + flushed must be visible
    // through a new pool even though the first pool was dropped without
    // further writes.
    let path = tmp("crash.db");
    {
        let mut pool = BufferPool::create(&path, 4).expect("create");
        pool.write_bytes(2 * PAGE_SIZE as u64 + 7, b"committed").expect("write");
        pool.flush().expect("flush");
        // Unflushed follow-up write, then "crash" (drop without flush).
        pool.write_bytes(5 * PAGE_SIZE as u64, b"lost-maybe").expect("write");
    }
    let mut pool = BufferPool::open(&path, 4).expect("reopen");
    let mut buf = [0u8; 9];
    pool.read_bytes(2 * PAGE_SIZE as u64 + 7, &mut buf).expect("read");
    assert_eq!(&buf, b"committed");
}

#[test]
fn stored_and_memory_answers_agree_under_every_pool_size() {
    let ds = dataset(800);
    let scorer = LinearScorer::uniform(2);
    let reference = {
        use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine};
        let engine = DurableTopKEngine::new(ds.clone());
        engine
            .query(
                Algorithm::THop,
                &scorer,
                &DurableQuery { k: 4, tau: 100, interval: Window::new(100, 799) },
            )
            .records
    };
    for pool_pages in [1usize, 2, 8, 64, 1024] {
        let path = tmp(&format!("pool{pool_pages}.db"));
        let mut store = RelStore::create(&path, &ds, 16, pool_pages).expect("create");
        let (a, _) = t_hop_proc(&mut store, &scorer, 4, Window::new(100, 799), 100).expect("t-hop");
        assert_eq!(a, reference, "pool_pages={pool_pages}");
    }
}
