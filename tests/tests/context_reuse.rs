//! Property tests for `QueryContext` scratch reuse.
//!
//! The allocation-free pipeline reuses heaps, stamp sets, the blocking
//! Fenwick and result buffers across queries; any state leaking from one
//! query into the next would corrupt answers in ways single-query tests
//! cannot see. Here a *single* context serves a randomized sequence of
//! queries — algorithms, `k`, `τ` and intervals all varying, including
//! dataset switches mid-sequence — and every answer must agree
//! record-for-record with a fresh-context run and with the brute-force
//! durability definition.

use durable_topk::{
    Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, QueryContext, Window,
};
use durable_topk_temporal::{Dataset, Scorer};
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, vals: u32) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0..vals, 2), 2..max_n).prop_map(|rows| {
        Dataset::from_rows(
            2,
            rows.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect::<Vec<_>>()),
        )
    })
}

/// One randomized query shape, instantiated against a dataset at run time.
#[derive(Debug, Clone)]
struct QuerySpec {
    alg_index: usize,
    k: usize,
    tau_raw: u32,
    seed: u32,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (0usize..Algorithm::ALL.len(), 1usize..6, 1u32..200, 0u32..10_000)
        .prop_map(|(alg_index, k, tau_raw, seed)| QuerySpec { alg_index, k, tau_raw, seed })
}

fn materialize(spec: &QuerySpec, n: u32) -> (Algorithm, DurableQuery) {
    let tau = 1 + spec.tau_raw % (n + 3);
    let a = spec.seed % n;
    let b = (spec.seed / 7) % n;
    let q = DurableQuery { k: spec.k, tau, interval: Window::new(a.min(b), a.max(b)) };
    (Algorithm::ALL[spec.alg_index], q)
}

fn brute_force(ds: &Dataset, scorer: &LinearScorer, q: &DurableQuery) -> Vec<u32> {
    q.interval
        .clamp_to(ds.len())
        .iter()
        .filter(|&t| {
            let w = Window::lookback(t, q.tau).clamp_to(ds.len());
            let my = scorer.score(ds.row(t));
            w.iter().filter(|&u| scorer.score(ds.row(u)) > my).count() < q.k
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single context across a mixed-algorithm query sequence agrees with
    /// fresh contexts and the definition.
    #[test]
    fn reused_context_matches_fresh_and_brute_force(
        ds in dataset_strategy(70, 6),
        specs in prop::collection::vec(query_strategy(), 1..12),
    ) {
        let n = ds.len() as u32;
        let engine = DurableTopKEngine::new(ds).with_skyband_index(8);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut shared = QueryContext::new();
        for spec in &specs {
            let (alg, q) = materialize(spec, n);
            let reused = engine.query_with(alg, &scorer, &q, &mut shared);
            let fresh = engine.query_with(alg, &scorer, &q, &mut QueryContext::new());
            prop_assert_eq!(&reused.records, &fresh.records, "alg={} q={:?}", alg, q);
            prop_assert_eq!(reused.stats, fresh.stats, "alg={} q={:?}", alg, q);
            let expected = brute_force(engine.dataset(), &scorer, &q);
            prop_assert_eq!(&reused.records, &expected, "alg={} q={:?}", alg, q);
        }
    }

    /// Context reuse survives switching datasets (of different sizes)
    /// between queries: every buffer re-sizes cleanly.
    #[test]
    fn reused_context_survives_dataset_switches(
        ds_a in dataset_strategy(60, 5),
        ds_b in dataset_strategy(25, 7),
        specs in prop::collection::vec(query_strategy(), 2..8),
    ) {
        let engines =
            [DurableTopKEngine::new(ds_a).with_skyband_index(8),
             DurableTopKEngine::new(ds_b).with_skyband_index(8)];
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let mut shared = QueryContext::new();
        for (i, spec) in specs.iter().enumerate() {
            let engine = &engines[i % 2];
            let (alg, q) = materialize(spec, engine.dataset().len() as u32);
            let reused = engine.query_with(alg, &scorer, &q, &mut shared);
            let expected = brute_force(engine.dataset(), &scorer, &q);
            prop_assert_eq!(&reused.records, &expected, "alg={} q={:?} engine={}", alg, q, i % 2);
        }
    }
}
