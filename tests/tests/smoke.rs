//! Fast agreement gate: the paper's five algorithms (plus the S-Hop top-1
//! refill variant) must return byte-identical answer sets on a small
//! synthetic dataset.
//!
//! This is the cheap invariant every future optimization PR must keep green
//! before the heavier `agreement.rs` and property suites run. It checks the
//! answers against the brute-force durability definition, not just against
//! each other, so a bug shared by all five algorithms still fails.

use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, Window};
use durable_topk_temporal::Scorer;
use durable_topk_workloads::{anti, ind};

fn brute_force(engine: &DurableTopKEngine, scorer: &LinearScorer, q: &DurableQuery) -> Vec<u32> {
    let ds = engine.dataset();
    q.interval
        .clamp_to(ds.len())
        .iter()
        .filter(|&t| {
            let w = Window::lookback(t, q.tau).clamp_to(ds.len());
            let my = scorer.score(ds.row(t));
            w.iter().filter(|&u| scorer.score(ds.row(u)) > my).count() < q.k
        })
        .collect()
}

#[test]
fn all_algorithms_agree_on_smoke_dataset() {
    let engine = DurableTopKEngine::new(ind(256, 2, 7)).with_skyband_index(16);
    let scorer = LinearScorer::new(vec![0.6, 0.4]);
    for (k, tau, lo, hi) in [(1, 8, 0, 255), (3, 16, 40, 200), (5, 64, 100, 255), (10, 256, 0, 100)]
    {
        let q = DurableQuery { k, tau, interval: Window::new(lo, hi) };
        let expected = brute_force(&engine, &scorer, &q);
        for alg in Algorithm::ALL {
            let got = engine.query(alg, &scorer, &q);
            assert_eq!(got.records, expected, "alg={alg} disagrees for {q:?}");
        }
    }
}

#[test]
fn all_algorithms_agree_on_anticorrelated_data() {
    let engine = DurableTopKEngine::new(anti(256, 9)).with_skyband_index(8);
    let scorer = LinearScorer::uniform(2);
    let q = DurableQuery { k: 4, tau: 32, interval: Window::new(32, 224) };
    let expected = brute_force(&engine, &scorer, &q);
    assert!(!expected.is_empty(), "smoke query should return some records");
    for alg in Algorithm::ALL {
        assert_eq!(engine.query(alg, &scorer, &q).records, expected, "alg={alg}");
    }
}

#[test]
fn sharded_engine_matches_unsharded_on_smoke_datasets() {
    for (ds, name) in [(ind(256, 2, 7), "ind"), (anti(256, 9), "anti")] {
        let flat = DurableTopKEngine::new(ds.clone()).with_skyband_index(16);
        let sharded =
            durable_topk::ShardedEngine::build_with_skyband(&ds, 4, 64, 16).expect("build");
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        for (k, tau, lo, hi) in [(1, 8, 0, 255), (3, 16, 40, 200), (5, 64, 100, 255)] {
            let q = DurableQuery { k, tau, interval: Window::new(lo, hi) };
            for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::SBand, Algorithm::TBase] {
                assert_eq!(
                    sharded.query(alg, &scorer, &q).records,
                    flat.query(alg, &scorer, &q).records,
                    "ds={name} alg={alg} q={q:?}"
                );
            }
        }
    }
}
