//! End-to-end integration: store vs in-memory engine, complexity bounds,
//! expected-size law, and duration reporting across crates.

use durable_topk::{
    duration::max_duration, Algorithm, DurableQuery, DurableTopKEngine, LinearScorer, QueryContext,
    SingleAttributeScorer, Window,
};
use durable_topk_store::{t_base_proc, t_hop_proc, RelStore};
use durable_topk_workloads::{ind, nba_attribute, nba_like, random_permutation_dataset};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("durable-topk-integration");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir.join(name)
}

#[test]
fn stored_procedures_match_in_memory_engine() {
    let ds = nba_like(4_000, 77).project(&[nba_attribute("points"), nba_attribute("rebounds")]);
    let engine = DurableTopKEngine::new(ds.clone());
    let mut store = RelStore::create(tmp("e2e.db"), &ds, 64, 128).expect("create");
    let scorer = LinearScorer::new(vec![0.3, 0.7]);
    for (k, tau, lo, hi) in
        [(1usize, 100u32, 500u32, 3999u32), (5, 800, 0, 3999), (10, 2000, 2000, 3500)]
    {
        let q = DurableQuery { k, tau, interval: Window::new(lo, hi) };
        let mem = engine.query(Algorithm::THop, &scorer, &q);
        let (hop, _) = t_hop_proc(&mut store, &scorer, k, q.interval, tau).expect("t-hop");
        let (base, _) = t_base_proc(&mut store, &scorer, k, q.interval, tau).expect("t-base");
        assert_eq!(mem.records, hop, "k={k} tau={tau}");
        assert_eq!(mem.records, base, "k={k} tau={tau}");
    }
}

#[test]
fn lemma1_and_lemma3_bounds_hold() {
    // The number of top-k queries by T-Hop and S-Hop is O(|S| + k⌈|I|/τ⌉);
    // verify the concrete inequality with a generous constant on random
    // data (where the bound is provably tight up to constants).
    let n = 20_000usize;
    let ds = ind(n, 2, 99);
    let engine = DurableTopKEngine::new(ds);
    let scorer = LinearScorer::uniform(2);
    for (k, tau_pct) in [(1usize, 0.05f64), (5, 0.10), (10, 0.25)] {
        let tau = ((n as f64 * tau_pct) as u32).max(1);
        let interval = Window::new((n / 2) as u32, (n - 1) as u32);
        let q = DurableQuery { k, tau, interval };
        let budget_units =
            |s: usize| s as u64 + k as u64 * (interval.len() as u64).div_ceil(tau as u64);
        for alg in [Algorithm::THop, Algorithm::SHop] {
            let r = engine.query(alg, &scorer, &q);
            let bound = 6 * budget_units(r.records.len()) + 20;
            assert!(
                r.stats.topk_queries() <= bound,
                "{alg}: {} queries vs bound {bound} (|S|={}, k={k}, tau={tau})",
                r.stats.topk_queries(),
                r.records.len()
            );
        }
    }
}

#[test]
fn lemma4_expected_answer_size() {
    // E[|S|] = k|I|/(τ+1) under the random permutation model; check the
    // empirical mean lands within 15% over 12 trials.
    let n = 30_000;
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let k = 5usize;
    let tau = 1_000u32;
    let interval = Window::new((n / 2) as u32, (n - 1) as u32);
    let expected = k as f64 * interval.len() as f64 / (tau as f64 + 1.0);
    let mut total = 0usize;
    let trials = 12;
    for t in 0..trials {
        let ds = random_permutation_dataset(&values, 1000 + t);
        let engine = DurableTopKEngine::new(ds);
        let scorer = SingleAttributeScorer::new(0);
        let r = engine.query(Algorithm::THop, &scorer, &DurableQuery { k, tau, interval });
        total += r.records.len();
    }
    let mean = total as f64 / trials as f64;
    assert!(
        (mean - expected).abs() / expected < 0.15,
        "measured {mean:.1} vs predicted {expected:.1}"
    );
}

#[test]
fn skyband_candidates_cover_answers_across_parameters() {
    let ds = ind(3_000, 3, 5);
    let engine = DurableTopKEngine::new(ds).with_skyband_index(16);
    let idx = engine.skyband_index().expect("built");
    let scorer = LinearScorer::new(vec![0.2, 0.5, 0.3]);
    for k in [1usize, 3, 8, 16] {
        for tau in [10u32, 100, 1_000] {
            let interval = Window::new(1_000, 2_999);
            let q = DurableQuery { k, tau, interval };
            let s = engine.query(Algorithm::THop, &scorer, &q);
            let (c, _) = idx.candidates(interval, tau, k);
            for id in &s.records {
                assert!(c.contains(id), "answer {id} missing from C (k={k}, tau={tau})");
            }
        }
    }
}

#[test]
fn max_duration_consistent_with_query_answers() {
    let ds = nba_like(2_000, 3).project(&[nba_attribute("points")]);
    let engine = DurableTopKEngine::new(ds);
    let scorer = SingleAttributeScorer::new(0);
    let k = 3usize;
    let tau = 300u32;
    let q = DurableQuery { k, tau, interval: Window::new(500, 1_999) };
    let answers = engine.query(Algorithm::SHop, &scorer, &q);
    assert!(!answers.records.is_empty());
    let mut ctx = QueryContext::new();
    for &id in answers.records.iter().take(20) {
        let (dur, _) = max_duration(engine.dataset(), engine.oracle(), &scorer, id, k, &mut ctx);
        assert!(dur >= tau, "answer {id} reports duration {dur} < queried tau {tau}");
    }
    // And a record *not* in the answer set must have duration < tau.
    let non_answer = q
        .interval
        .iter()
        .find(|t| !answers.records.contains(t))
        .expect("some record is non-durable");
    let (dur, _) =
        max_duration(engine.dataset(), engine.oracle(), &scorer, non_answer, k, &mut ctx);
    assert!(dur < tau, "non-answer {non_answer} reports duration {dur} >= {tau}");
}

#[test]
fn selectivity_monotonicity() {
    // Larger tau or smaller k can only shrink the answer set.
    let ds = ind(5_000, 2, 21);
    let engine = DurableTopKEngine::new(ds);
    let scorer = LinearScorer::uniform(2);
    let interval = Window::new(2_000, 4_999);
    let base =
        engine.query(Algorithm::THop, &scorer, &DurableQuery { k: 5, tau: 200, interval }).records;
    let longer_tau =
        engine.query(Algorithm::THop, &scorer, &DurableQuery { k: 5, tau: 800, interval }).records;
    let smaller_k =
        engine.query(Algorithm::THop, &scorer, &DurableQuery { k: 2, tau: 200, interval }).records;
    assert!(longer_tau.iter().all(|r| base.contains(r)));
    assert!(smaller_k.iter().all(|r| base.contains(r)));
    assert!(longer_tau.len() <= base.len());
    assert!(smaller_k.len() <= base.len());
}
