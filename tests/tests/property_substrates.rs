//! Property-based tests for the indexing substrates.

use durable_topk_geom::Fenwick;
use durable_topk_index::BlockingSet;
use durable_topk_temporal::{read_csv, write_csv, Dataset};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fenwick prefix sums agree with a naive accumulator under arbitrary
    /// interleaved updates.
    #[test]
    fn fenwick_matches_naive(
        ops in prop::collection::vec((0usize..64, -3i64..4), 1..200),
        probes in prop::collection::vec(0usize..64, 1..20),
    ) {
        let mut fen = Fenwick::new(64);
        let mut naive = vec![0i64; 64];
        for (i, delta) in ops {
            fen.add(i, delta);
            naive[i] += delta;
        }
        for p in probes {
            let expected: i64 = naive[..=p].iter().sum();
            prop_assert_eq!(fen.prefix(p) as i64, expected);
        }
    }

    /// BlockingSet coverage equals brute-force interval counting, including
    /// the strictly-above variant, when probes arrive in non-increasing
    /// score order (the algorithmic invariant).
    #[test]
    fn blocking_set_matches_brute_force(
        // (left endpoint, score level) — levels descend as the algorithms
        // process candidates; occasional higher-level inserts model the
        // blockers recruited by failed durability checks.
        events in prop::collection::vec((0u32..80, 0u32..12, prop::bool::ANY), 1..120),
        tau in 1u32..30,
    ) {
        let mut set = BlockingSet::new(100, tau);
        let mut brute: Vec<(u32, f64)> = Vec::new();
        // Sort event scores descending to respect the probe invariant, but
        // let the "recruited" flag inject out-of-order higher scores.
        let mut levels: Vec<(u32, u32, bool)> = events;
        levels.sort_by_key(|e| std::cmp::Reverse(e.1));
        for (left, level, _recruited) in levels {
            let score = level as f64;
            let probe_score = score;
            // Probe before inserting (as the algorithms do).
            for t in [left, left.saturating_sub(tau), (left + tau).min(99)] {
                let expected = brute
                    .iter()
                    .filter(|&&(l, s)| l <= t && t <= l + tau && s > probe_score)
                    .count();
                prop_assert_eq!(
                    set.coverage_above(t, probe_score),
                    expected,
                    "t={} score={}", t, probe_score
                );
                let expected_all = brute
                    .iter()
                    .filter(|&&(l, _)| l <= t && t <= l + tau)
                    .count();
                prop_assert_eq!(set.coverage(t), expected_all);
            }
            set.insert(left, score);
            brute.push((left, score));
        }
    }

    /// CSV round-trips arbitrary finite datasets exactly.
    #[test]
    fn csv_roundtrip_exact(
        rows in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 3),
            1..60,
        ),
    ) {
        let ds = Dataset::from_rows(3, rows);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds, Some(&["a", "b", "c"])).expect("write");
        let imported = read_csv(&buf[..]).expect("read").dataset;
        prop_assert_eq!(imported.raw_attrs(), ds.raw_attrs());
    }
}

mod stored_oracle {
    use durable_topk::LinearScorer;
    use durable_topk_index::scan_top_k;
    use durable_topk_store::RelStore;
    use durable_topk_temporal::{Dataset, Window};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The disk-backed top-k oracle agrees with the in-memory scan on
        /// arbitrary data, windows, and leaf sizes.
        #[test]
        fn stored_topk_matches_scan(
            rows in prop::collection::vec(prop::collection::vec(0u32..40, 2), 2..250),
            k in 1usize..6,
            leaf in 1usize..48,
            seed in 0u32..10_000,
        ) {
            let ds = Dataset::from_rows(
                2,
                rows.iter().map(|r| r.iter().map(|&v| v as f64).collect::<Vec<_>>()),
            );
            let n = ds.len() as u32;
            let a = seed % n;
            let b = (seed / 13) % n;
            let w = Window::new(a.min(b), a.max(b));
            let dir = std::env::temp_dir().join("durable-topk-prop-store");
            std::fs::create_dir_all(&dir).expect("mk tmpdir");
            let path = dir.join(format!("case-{seed}-{k}-{leaf}.db"));
            let mut store = RelStore::create(&path, &ds, leaf, 16).expect("create");
            let scorer = LinearScorer::new(vec![0.4, 0.6]);
            let got = store.top_k(&scorer, k, w).expect("stored top-k");
            prop_assert_eq!(got, scan_top_k(&ds, &scorer, k, w));
            drop(store);
            let _ = std::fs::remove_file(&path);
        }
    }
}
