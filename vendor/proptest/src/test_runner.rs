//! Test-case plumbing: configuration, RNG, and failure reporting.

use rand::prelude::*;

/// Per-`proptest!` configuration (`ProptestConfig` in the real crate).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies.
///
/// Seeded from the test name so every test gets an independent but
/// reproducible stream.
pub struct TestRng {
    /// Underlying generator (public so strategy impls can sample directly).
    pub rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

/// A failed assertion inside a generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
