//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::prelude::*;

/// Strategy generating `true` and `false` with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The uniform boolean strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.rng.random()
    }
}
