//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::prelude::*;

/// An inclusive-exclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
