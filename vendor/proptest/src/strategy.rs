//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::prelude::*;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                // The vendored rand stub samples half-open ranges only;
                // widen from whichever side has room. (A full-domain
                // inclusive range degrades to excluding `MAX` — no test
                // uses one.)
                if end < <$t>::MAX {
                    rng.rng.random_range(start..end + 1)
                } else if start > <$t>::MIN {
                    rng.rng.random_range(start - 1..end) + 1
                } else {
                    rng.rng.random_range(start..end)
                }
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Strategy producing a constant value, as `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
