//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro with `#![proptest_config(..)]`, range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`Strategy::prop_map`](strategy::Strategy::prop_map), and the `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a deterministic per-test RNG; there is
//! no shrinking — a failing case panics with its case number and message,
//! and reruns reproduce it exactly.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body; both sides are captured in
/// the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!(
            $left,
            $right,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        )
    };
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($fmt $(, $args)*),
                left,
                right
            )));
        }
    }};
}

/// Defines property tests: each `fn name(binding in strategy, ..) { body }`
/// item becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}
