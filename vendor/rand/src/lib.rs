//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! This workspace builds in environments without crates.io access, so the
//! handful of `rand` APIs the sources rely on are reimplemented here:
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`],
//! and the slice helpers [`SliceRandom::shuffle`] / [`SliceRandom::choose`].
//!
//! The generator is deterministic for a given seed, which is all the
//! workloads and tests require; it makes no cryptographic claims and the
//! streams do not match the real `rand` crate bit-for-bit.

pub mod prelude;
pub mod rngs;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly distributed random bits (upper half of a draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, matching the `rand 0.9` method names.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (for floats: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on an empty range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`. Panics if `range` is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: core::ops::Range<$t>,
            ) -> $t {
                let (lo, hi) = (range.start as i128, range.end as i128);
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                // Modulo bias is negligible for the test/workload spans used
                // here (all far below 2^64).
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit: f64 = Standard::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Random helpers on slices (`shuffle`, `choose`), as in `rand::seq`.
pub trait SliceRandom {
    /// Element type of the underlying slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [1usize, 3, 8, 128];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = *xs.choose(&mut rng).expect("non-empty");
            seen[xs.iter().position(|&x| x == v).expect("member")] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
