//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples of adaptively chosen iteration
//! counts, and the per-iteration minimum / mean are printed as text. There
//! are no plots, no statistics files, and no regression analysis — enough
//! to compare hot paths locally and to keep `cargo bench --no-run` honest
//! in CI.

use std::time::{Duration, Instant};

/// Re-export of the standard compiler-fence helper used to defeat
/// dead-code elimination in benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
    /// When true (`cargo test --benches` passes `--test`), every benchmark
    /// body runs exactly once, as a smoke test.
    test_mode: bool,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignore them.
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { default_sample_size: 10, test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size, criterion: self }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let id = id.into();
        self.run_one(&id.render(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher =
            Bencher { iters: 1, elapsed: Duration::ZERO, test_mode: self.test_mode, sample_size };
        f(&mut bencher);
        bencher.report(label);
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        let sample_size = self.sample_size;
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Registers and runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A function/parameter pair naming one benchmark.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Names a benchmark `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Names a benchmark by parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId { function: function.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId { function, parameter: None }
    }
}

/// Times a closure over a chosen number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, storing the total elapsed time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            self.iters = 1;
            let start = Instant::now();
            black_box(f());
            self.elapsed = start.elapsed();
            return;
        }
        // Calibrate: aim for samples of at least ~2 ms each, capped so cheap
        // closures do not spin forever.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            ((Duration::from_millis(2).as_nanos() / probe.as_nanos()).clamp(1, 10_000)) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iters += per_sample;
        }
        self.iters = iters;
        self.elapsed = total;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<48} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{label:<48} {:>12.0} ns/iter ({} iters)", per_iter, self.iters);
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Criterion benchmark group entry point."]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
