//! Indexing substrates for durable top-k queries.
//!
//! This crate implements the paper's "building block" and supporting
//! machinery:
//!
//! * [`segtree`] — the preference top-k index of Appendix A: a segment tree
//!   over arrival order whose nodes carry skyline summaries, queried
//!   best-first with interval max scores ([`SkylineSegTree`]). Generalized
//!   to any scorer that can bound a node summary ([`OracleScorer`]), so the
//!   non-monotone cosine scorer works through admissible bounding-box
//!   bounds. Also provides [`scan_top_k`], the naive reference oracle.
//! * [`blocking`] — the score-prioritized algorithms' blocking mechanism
//!   ([`BlockingSet`]): a Fenwick-backed multiset of τ-length intervals with
//!   tie-safe coverage counting.
//! * [`skyband_index`] — the durable k-skyband candidate index of Section
//!   IV-B ([`DurableSkybandIndex`]): per-record skyband durations in
//!   priority search trees, one per logarithmic k level.
//! * [`sliding`] — incremental top-k maintenance over sliding windows
//!   ([`SkybandBuffer`]), the substrate of the T-Base baseline (after
//!   Mouratidis et al.'s continuous-monitoring approach).
//! * [`forest`] — an appendable top-k index ([`AppendableTopKIndex`]): a
//!   logarithmic forest of segment trees supporting amortized-cheap appends
//!   for streaming arrivals.

pub mod blocking;
pub mod forest;
pub mod segtree;
pub mod skyband_index;
pub mod sliding;

pub use blocking::BlockingSet;
pub use forest::AppendableTopKIndex;
pub use segtree::{
    scan_top_k, scan_top_k_into, structural_fingerprint, NodeSummary, OracleScorer, OracleScratch,
    OrdF64, QueryCounters, SkylineSegTree, TopKResult, DEFAULT_LEAF_SIZE,
};
pub use skyband_index::{DurableSkybandIndex, IncrementalSkybandIndex, SkybandCandidates};
pub use sliding::SkybandBuffer;
