//! The preference top-k building block: a skyline-augmented segment tree.
//!
//! This is the index of the paper's Appendix A (Algorithms 4 and 5): a
//! balanced binary tree over arrival order where every node stores the
//! skyline of the records in its time interval. For a monotone scoring
//! function the maximum score within a node is attained on its skyline, so
//! scanning the (small) skyline yields an *exact* interval max score; a
//! best-first search over canonical nodes then needs to open at most `k`
//! leaf intervals to answer `Q(u, k, W)`.
//!
//! Two deliberate generalizations over the paper's description:
//!
//! 1. **Ties.** Results include every record tying the k-th score
//!    ([`TopKResult::kth_score`]), so the durability predicate
//!    `#{q : f(q) > f(p)} < k` can be evaluated exactly, and T-Hop's hop
//!    target (the most recent arrival in `π≤k`) remains correct when scores
//!    collide (common with integer-valued attributes such as rebounds).
//! 2. **Non-monotone scorers.** A node exposes a full [`NodeSummary`]
//!    (skyline, per-dimension bounds, norm range); any scorer that can
//!    produce an admissible upper bound from the summary plugs in via
//!    [`OracleScorer`]. The search remains exact because candidate records
//!    are always scored individually — bounds only drive pruning.

use durable_topk_geom::{skyline_indices, skyline_merge};
use durable_topk_temporal::{
    CosineScorer, Dataset, LinearScorer, MonotoneCombinationScorer, RecordId, Scorer,
    SingleAttributeScorer, Time, Window,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default leaf granularity; the paper's `LENGTH_THRESHOLD = 128`.
pub const DEFAULT_LEAF_SIZE: usize = 128;

/// Per-node statistics exposed to scorers for bounding.
#[derive(Debug, Clone)]
pub struct NodeSummary {
    /// Skyline of the node's records (ids into the dataset).
    pub skyline: Vec<RecordId>,
    /// Per-dimension maximum over the node's records.
    pub dim_max: Vec<f64>,
    /// Per-dimension minimum over the node's records.
    pub dim_min: Vec<f64>,
    /// Minimum Euclidean norm over the node's records.
    pub norm_min: f64,
    /// Maximum Euclidean norm over the node's records.
    pub norm_max: f64,
}

impl NodeSummary {
    fn from_range(ds: &Dataset, lo: Time, hi: Time) -> Self {
        let ids: Vec<RecordId> = (lo..=hi).collect();
        let skyline = skyline_indices(ds, &ids);
        let mut s = Self::empty(ds.dim());
        for id in lo..=hi {
            s.absorb_row(ds.row(id));
        }
        s.skyline = skyline;
        s
    }

    fn merged(ds: &Dataset, a: &NodeSummary, b: &NodeSummary) -> Self {
        let d = a.dim_max.len();
        let mut dim_max = Vec::with_capacity(d);
        let mut dim_min = Vec::with_capacity(d);
        for j in 0..d {
            dim_max.push(a.dim_max[j].max(b.dim_max[j]));
            dim_min.push(a.dim_min[j].min(b.dim_min[j]));
        }
        Self {
            skyline: skyline_merge(ds, &a.skyline, &b.skyline),
            dim_max,
            dim_min,
            norm_min: a.norm_min.min(b.norm_min),
            norm_max: a.norm_max.max(b.norm_max),
        }
    }

    fn empty(dim: usize) -> Self {
        Self {
            skyline: Vec::new(),
            dim_max: vec![f64::NEG_INFINITY; dim],
            dim_min: vec![f64::INFINITY; dim],
            norm_min: f64::INFINITY,
            norm_max: f64::NEG_INFINITY,
        }
    }

    fn absorb_row(&mut self, row: &[f64]) {
        let mut sq = 0.0;
        for (j, &x) in row.iter().enumerate() {
            self.dim_max[j] = self.dim_max[j].max(x);
            self.dim_min[j] = self.dim_min[j].min(x);
            sq += x * x;
        }
        let norm = sq.sqrt();
        self.norm_min = self.norm_min.min(norm);
        self.norm_max = self.norm_max.max(norm);
    }
}

/// A scorer usable by the top-k index: it must bound its own maximum over a
/// summarized set of records.
///
/// The bound must be *admissible*: `node_bound(..) >= max_{p in node} f(p)`.
/// Tighter bounds only improve pruning; correctness never depends on them.
pub trait OracleScorer: Scorer {
    /// An upper bound on the score of any record summarized by `node`.
    fn node_bound(&self, ds: &Dataset, node: &NodeSummary) -> f64;

    /// A structural fingerprint of the scoring function, or `None` when it
    /// has no canonical structure (opaque custom scorers).
    ///
    /// The contract is one-directional: two scorers returning the *same*
    /// fingerprint must score every record bit-identically — memoization
    /// layers (the sealed-shard result cache) key cached answers on it.
    /// Parameters are canonicalized bit-exactly through `f64::to_bits`
    /// (the same total-order view [`OrdF64`] takes), so distinct weight
    /// vectors never alias. The default is `None`: an unfingerprintable
    /// scorer simply bypasses caches, which costs performance, never
    /// correctness.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Order-sensitive FNV-1a over a scorer-family tag and parameter words —
/// the canonicalization behind [`OracleScorer::fingerprint`]. Word-at-a-time
/// mixing is deliberate: the fingerprint needs collision resistance between
/// *structurally different* scorers, not cryptographic strength.
pub fn structural_fingerprint(tag: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = (0xcbf2_9ce4_8422_2325u64 ^ tag).wrapping_mul(PRIME);
    for w in words {
        h = (h ^ w).wrapping_mul(PRIME);
    }
    h
}

/// Family tags feeding [`structural_fingerprint`]; distinct per scorer type
/// so equal parameter vectors under different families never collide.
mod fingerprint_tag {
    pub(super) const LINEAR: u64 = 1;
    pub(super) const MONOTONE_COMBINATION: u64 = 2;
    pub(super) const SINGLE_ATTRIBUTE: u64 = 3;
    pub(super) const COSINE: u64 = 4;
}

/// Exact bound for monotone scorers: the max score over the node is attained
/// on the skyline.
fn skyline_bound<S: Scorer>(scorer: &S, ds: &Dataset, node: &NodeSummary) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &id in &node.skyline {
        best = best.max(scorer.score(ds.row(id)));
    }
    best
}

impl OracleScorer for LinearScorer {
    fn node_bound(&self, ds: &Dataset, node: &NodeSummary) -> f64 {
        skyline_bound(self, ds, node)
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(structural_fingerprint(
            fingerprint_tag::LINEAR,
            self.weights().iter().map(|w| w.to_bits()),
        ))
    }
}

impl OracleScorer for MonotoneCombinationScorer {
    fn node_bound(&self, ds: &Dataset, node: &NodeSummary) -> f64 {
        skyline_bound(self, ds, node)
    }

    fn fingerprint(&self) -> Option<u64> {
        // Interleave weight bits with transform discriminants so
        // reordering transforms across attributes changes the print.
        let words = self
            .weights()
            .iter()
            .zip(self.transforms())
            .flat_map(|(w, tr)| [w.to_bits(), *tr as u64]);
        Some(structural_fingerprint(fingerprint_tag::MONOTONE_COMBINATION, words))
    }
}

impl OracleScorer for SingleAttributeScorer {
    fn node_bound(&self, ds: &Dataset, node: &NodeSummary) -> f64 {
        skyline_bound(self, ds, node)
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(structural_fingerprint(fingerprint_tag::SINGLE_ATTRIBUTE, [self.attr() as u64]))
    }
}

impl OracleScorer for CosineScorer {
    /// Admissible bounding-box bound: `u·p` is bounded coordinate-wise by
    /// the node box, `|p|` by the node's norm range. Cosine is capped at 1.
    fn node_bound(&self, _ds: &Dataset, node: &NodeSummary) -> f64 {
        let mut num = 0.0;
        for (j, &w) in self.weights().iter().enumerate() {
            num += if w >= 0.0 { w * node.dim_max[j] } else { w * node.dim_min[j] };
        }
        let wn = self.weight_norm();
        if num > 0.0 {
            if node.norm_min <= 0.0 {
                1.0
            } else {
                (num / (wn * node.norm_min)).min(1.0)
            }
        } else if node.norm_min <= 0.0 {
            // A zero vector scores exactly 0, which dominates the negative
            // bound the box would give.
            0.0
        } else {
            num / (wn * node.norm_max)
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        // `norm` is derived from the weights, so the weights alone pin the
        // function bit-exactly.
        Some(structural_fingerprint(
            fingerprint_tag::COSINE,
            self.weights().iter().map(|w| w.to_bits()),
        ))
    }
}

/// The result of a (range-restricted) preference top-k query.
///
/// `items` holds the `k` highest-scoring records in the window **plus every
/// record tying the k-th score**, sorted by descending score and ascending
/// id within ties. This is exactly the paper's `π≤k`: the set of records
/// with fewer than `k` strictly-better records in the window.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// `(record, score)` pairs, best first.
    pub items: Vec<(RecordId, f64)>,
    /// The k-th highest score in the window (counting multiplicity), or
    /// `f64::NEG_INFINITY` if the window holds fewer than `k` records.
    pub kth_score: f64,
}

impl Default for TopKResult {
    fn default() -> Self {
        Self::empty()
    }
}

impl TopKResult {
    /// An empty result (`kth_score = -inf`), ready to be filled in place.
    pub fn empty() -> Self {
        Self { items: Vec::new(), kth_score: f64::NEG_INFINITY }
    }

    /// Clears the result for reuse, keeping the item buffer's capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.kth_score = f64::NEG_INFINITY;
    }

    /// Whether a record scoring `score` belongs to `π≤k` of this window.
    ///
    /// Valid for records *inside* the queried window: membership is exactly
    /// `score >= kth_score` because all ties are materialized.
    #[inline]
    pub fn admits_score(&self, score: f64) -> bool {
        score >= self.kth_score
    }

    /// The most recent arrival time among the returned records, if any.
    pub fn max_time(&self) -> Option<Time> {
        self.items.iter().map(|&(id, _)| id).max()
    }

    /// Number of returned records with score strictly above `score`.
    pub fn strictly_better(&self, score: f64) -> usize {
        self.items.iter().take_while(|&&(_, s)| s > score).count()
    }

    /// Builds a result from unsorted candidates: sorts best-first, derives
    /// the k-th score and drops everything strictly below it.
    pub fn finalize(candidates: Vec<(RecordId, f64)>, k: usize) -> Self {
        let mut out = Self { items: candidates, kth_score: f64::NEG_INFINITY };
        out.finalize_in_place(k);
        out
    }

    /// Finalizes `items` in place: sorts best-first (descending score,
    /// ascending id), derives the k-th score and drops everything strictly
    /// below it. The allocation-free counterpart of
    /// [`finalize`](TopKResult::finalize).
    pub fn finalize_in_place(&mut self, k: usize) {
        self.items.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("scores must not be NaN").then(a.0.cmp(&b.0))
        });
        self.kth_score =
            if self.items.len() >= k { self.items[k - 1].1 } else { f64::NEG_INFINITY };
        let kth = self.kth_score;
        self.items.retain(|&(_, s)| s >= kth);
    }
}

/// Instrumentation counters for the oracle, used by the experiment harness
/// to report "number of top-k queries" exactly as the paper's figures do.
///
/// Counters are atomic (relaxed) so a built index can be shared across
/// threads for batch query workloads.
#[derive(Debug, Default)]
pub struct QueryCounters {
    queries: AtomicU64,
    nodes_opened: AtomicU64,
    records_scanned: AtomicU64,
}

impl QueryCounters {
    /// Total `Q(u, k, W)` invocations since the last reset.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total tree nodes expanded by best-first search.
    pub fn nodes_opened(&self) -> u64 {
        self.nodes_opened.load(Ordering::Relaxed)
    }

    /// Total records individually scored.
    pub fn records_scanned(&self) -> u64 {
        self.records_scanned.load(Ordering::Relaxed)
    }

    /// Increments the logical query count (used by composite indexes).
    pub(crate) fn bump_queries(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.nodes_opened.store(0, Ordering::Relaxed);
        self.records_scanned.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
struct TreeNode {
    lo: Time,
    hi: Time,
    left: i32,
    right: i32,
    summary: NodeSummary,
}

/// Total-order wrapper for `f64` heap keys (via `total_cmp`).
///
/// Public so out-of-crate oracle implementations (e.g. the disk-backed
/// store relation) can key their [`OracleScratch`] heaps the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable scratch space for [`SkylineSegTree::top_k_with`] and
/// [`scan_top_k_into`]: the best-first node priority queue, the running
/// best-k threshold heap, and a merge buffer used by composite indexes.
///
/// One instance per query thread; reusing it across calls removes every
/// per-probe heap allocation from the oracle path.
#[derive(Debug, Clone, Default)]
pub struct OracleScratch {
    /// Best-first frontier: (bound, node, window slice).
    pq: BinaryHeap<(OrdF64, i32, Time, Time)>,
    /// Min-heap over the best k scores seen; its top is the running s_k.
    best_k: BinaryHeap<Reverse<OrdF64>>,
    /// Candidate accumulation across forest trees (see `forest`).
    pub(crate) merge: Vec<(RecordId, f64)>,
    /// Best-first frontier for out-of-crate oracles that address nodes by
    /// byte offset instead of slot index (the disk-backed store relation):
    /// (bound, node offset, window slice).
    pub pq_ext: BinaryHeap<(OrdF64, u64, Time, Time)>,
    /// Running best-k min-heap for out-of-crate oracles; its top is the
    /// running s_k.
    pub best_ext: BinaryHeap<Reverse<OrdF64>>,
    /// Reusable attribute-row buffer for oracles that materialize records
    /// one at a time (e.g. through a buffer pool).
    pub row: Vec<f64>,
    /// Reusable byte buffer for serialized node payloads.
    pub bytes: Vec<u8>,
}

impl OracleScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The skyline-augmented segment tree over arrival order.
///
/// Built once per dataset in `O(n · s̄ + n log n)` where `s̄` is the mean
/// node skyline size; answers `Q(u, k, W)` for any window `W` and any
/// [`OracleScorer`] given at query time.
#[derive(Debug, Clone)]
pub struct SkylineSegTree {
    nodes: Vec<TreeNode>,
    root: i32,
    leaf_size: usize,
    counters: QueryCounters,
}

impl Clone for QueryCounters {
    fn clone(&self) -> Self {
        let c = QueryCounters::default();
        c.queries.store(self.queries(), Ordering::Relaxed);
        c.nodes_opened.store(self.nodes_opened(), Ordering::Relaxed);
        c.records_scanned.store(self.records_scanned(), Ordering::Relaxed);
        c
    }
}

impl SkylineSegTree {
    /// Builds the index over the whole dataset with the default leaf size.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(ds: &Dataset) -> Self {
        Self::with_leaf_size(ds, DEFAULT_LEAF_SIZE)
    }

    /// Builds with an explicit leaf granularity (the paper's
    /// `LENGTH_THRESHOLD`). Exposed for the ablation experiments.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `leaf_size == 0`.
    pub fn with_leaf_size(ds: &Dataset, leaf_size: usize) -> Self {
        assert!(!ds.is_empty(), "cannot index an empty dataset");
        assert!(leaf_size > 0, "leaf size must be positive");
        Self::build_over(ds, 0, (ds.len() - 1) as Time, leaf_size)
    }

    /// Builds the index over a sub-range of the dataset — the appendable
    /// forest's per-tree build, and the shard-seal collapse (which rebuilds
    /// a frozen head snapshot's range on a background worker).
    pub fn build_over(ds: &Dataset, lo: Time, hi: Time, leaf_size: usize) -> Self {
        let mut tree = Self {
            nodes: Vec::with_capacity(2 * ((hi - lo) as usize + 1) / leaf_size + 2),
            root: -1,
            leaf_size,
            counters: QueryCounters::default(),
        };
        tree.root = tree.build_rec(ds, lo, hi);
        tree
    }

    fn build_rec(&mut self, ds: &Dataset, lo: Time, hi: Time) -> i32 {
        let idx = self.nodes.len() as i32;
        if ((hi - lo) as usize) < self.leaf_size {
            let summary = NodeSummary::from_range(ds, lo, hi);
            self.nodes.push(TreeNode { lo, hi, left: -1, right: -1, summary });
            return idx;
        }
        // Reserve the slot so parents precede children in memory.
        self.nodes.push(TreeNode {
            lo,
            hi,
            left: -1,
            right: -1,
            summary: NodeSummary::empty(ds.dim()),
        });
        let mid = lo + (hi - lo) / 2;
        let left = self.build_rec(ds, lo, mid);
        let right = self.build_rec(ds, mid + 1, hi);
        let summary = NodeSummary::merged(
            ds,
            &self.nodes[left as usize].summary,
            &self.nodes[right as usize].summary,
        );
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.summary = summary;
        idx
    }

    /// The time range covered by this tree.
    pub fn coverage(&self) -> Window {
        let root = &self.nodes[self.root as usize];
        Window::new(root.lo, root.hi)
    }

    /// Instrumentation counters.
    pub fn counters(&self) -> &QueryCounters {
        &self.counters
    }

    /// Heap bytes held by the tree: the node array plus every node's
    /// skyline and per-dimension bound vectors (capacities, not lengths).
    /// Resident-set accounting for the storage-tier bench.
    pub fn heap_bytes(&self) -> usize {
        let summaries: usize = self
            .nodes
            .iter()
            .map(|n| {
                n.summary.skyline.capacity() * std::mem::size_of::<RecordId>()
                    + (n.summary.dim_max.capacity() + n.summary.dim_min.capacity())
                        * std::mem::size_of::<f64>()
            })
            .sum();
        self.nodes.capacity() * std::mem::size_of::<TreeNode>() + summaries
    }

    /// Answers `Q(u, k, W)`: the top-k records (with ties) in the window.
    ///
    /// Convenience wrapper over [`top_k_with`](SkylineSegTree::top_k_with)
    /// that allocates fresh scratch; hot paths should hold an
    /// [`OracleScratch`] and call `top_k_with` directly.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn top_k<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
    ) -> TopKResult {
        let mut scratch = OracleScratch::new();
        let mut out = TopKResult::empty();
        self.top_k_with(ds, scorer, k, w, &mut scratch, &mut out);
        out
    }

    /// Answers `Q(u, k, W)` into `out`, drawing every internal heap and
    /// buffer from `scratch` — the allocation-free oracle path.
    ///
    /// The window is clamped to the tree's coverage; empty intersections
    /// yield an empty result with `kth_score = -inf`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn top_k_with<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        assert!(k > 0, "k must be positive");
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        out.clear();
        let cover = self.coverage();
        let Some(w) = cover.intersect(w) else { return };

        // Best-first search over canonical nodes. Heap entries carry the
        // node's admissible bound and the window slice it must scan (only
        // partial leaves differ from the node range).
        let pq = &mut scratch.pq;
        pq.clear();
        self.seed_canonical(ds, scorer, self.root, w, pq);

        // Candidates accumulate directly in the output buffer.
        let candidates = &mut out.items;
        let best_k = &mut scratch.best_k;
        best_k.clear();
        let mut scanned = 0u64;
        let mut opened = 0u64;

        while let Some((bound, idx, lo, hi)) = pq.pop() {
            let threshold = if best_k.len() >= k {
                best_k.peek().expect("non-empty").0 .0
            } else {
                f64::NEG_INFINITY
            };
            // Strictly below the threshold: no record inside can enter π≤k
            // (equal bounds may still contain ties of s_k).
            if bound.0 < threshold {
                break;
            }
            opened += 1;
            let node = &self.nodes[idx as usize];
            if node.left < 0 {
                // Leaf: score records in [lo, hi].
                for id in lo..=hi {
                    let s = scorer.score(ds.row(id));
                    scanned += 1;
                    let threshold = if best_k.len() >= k {
                        best_k.peek().expect("non-empty").0 .0
                    } else {
                        f64::NEG_INFINITY
                    };
                    if s >= threshold {
                        candidates.push((id, s));
                        best_k.push(Reverse(OrdF64(s)));
                        if best_k.len() > k {
                            best_k.pop();
                        }
                    }
                }
                // Keep the candidate buffer from growing without bound on
                // tie-heavy data.
                if candidates.len() > 8 * k + 64 {
                    let thr = if best_k.len() >= k {
                        best_k.peek().expect("non-empty").0 .0
                    } else {
                        f64::NEG_INFINITY
                    };
                    candidates.retain(|&(_, s)| s >= thr);
                }
            } else {
                for child in [node.left, node.right] {
                    let c = &self.nodes[child as usize];
                    let cw = Window::new(c.lo, c.hi);
                    if let Some(iw) = cw.intersect(Window::new(lo, hi)) {
                        let b = scorer.node_bound(ds, &c.summary);
                        pq.push((OrdF64(b), child, iw.start(), iw.end()));
                    }
                }
            }
        }
        self.counters.nodes_opened.fetch_add(opened, Ordering::Relaxed);
        self.counters.records_scanned.fetch_add(scanned, Ordering::Relaxed);
        out.finalize_in_place(k);
    }

    /// Pushes the canonical decomposition of `w` under `node` into the heap.
    fn seed_canonical<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        idx: i32,
        w: Window,
        pq: &mut BinaryHeap<(OrdF64, i32, Time, Time)>,
    ) {
        let node = &self.nodes[idx as usize];
        let range = Window::new(node.lo, node.hi);
        let Some(iw) = range.intersect(w) else { return };
        if w.contains_window(range) || node.left < 0 {
            let b = scorer.node_bound(ds, &node.summary);
            pq.push((OrdF64(b), idx, iw.start(), iw.end()));
            return;
        }
        self.seed_canonical(ds, scorer, node.left, w, pq);
        self.seed_canonical(ds, scorer, node.right, w, pq);
    }
}

/// Naive reference oracle: scores every record in the window.
///
/// Used as the correctness baseline in tests and as the fallback oracle for
/// scorers without node bounds.
pub fn scan_top_k<S: Scorer + ?Sized>(ds: &Dataset, scorer: &S, k: usize, w: Window) -> TopKResult {
    let mut out = TopKResult::empty();
    scan_top_k_into(ds, scorer, k, w, &mut out);
    out
}

/// [`scan_top_k`] into a caller-provided result buffer (allocation-free once
/// the buffer is warm).
///
/// # Panics
/// Panics if `k == 0`.
pub fn scan_top_k_into<S: Scorer + ?Sized>(
    ds: &Dataset,
    scorer: &S,
    k: usize,
    w: Window,
    out: &mut TopKResult,
) {
    assert!(k > 0, "k must be positive");
    out.clear();
    if ds.is_empty() || w.start() as usize >= ds.len() {
        return;
    }
    let w = w.clamp_to(ds.len());
    out.items.extend(w.iter().map(|id| (id, scorer.score(ds.row(id)))));
    out.finalize_in_place(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_dataset(rng: &mut StdRng, n: usize, d: usize, vals: u32) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.random_range(0..vals) as f64).collect()).collect();
        Dataset::from_rows(d, rows)
    }

    #[test]
    fn top_k_matches_scan_small() {
        let ds = Dataset::from_rows(
            2,
            [[1.0, 2.0], [5.0, 5.0], [3.0, 1.0], [5.0, 5.0], [0.0, 9.0], [4.0, 4.0]],
        );
        let tree = SkylineSegTree::with_leaf_size(&ds, 2);
        let scorer = LinearScorer::new(vec![1.0, 1.0]);
        for k in 1..=4 {
            let w = Window::new(0, 5);
            let fast = tree.top_k(&ds, &scorer, k, w);
            let slow = scan_top_k(&ds, &scorer, k, w);
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn ties_at_kth_are_all_returned() {
        let ds = Dataset::from_rows(1, [[5.0], [3.0], [5.0], [5.0], [1.0]]);
        let tree = SkylineSegTree::with_leaf_size(&ds, 1);
        let scorer = SingleAttributeScorer::new(0);
        let r = tree.top_k(&ds, &scorer, 2, Window::new(0, 4));
        // Three records tie the 2nd score of 5.0.
        assert_eq!(r.kth_score, 5.0);
        let ids: Vec<RecordId> = r.items.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert!(r.admits_score(5.0));
        assert!(!r.admits_score(4.9));
        assert_eq!(r.strictly_better(4.0), 3);
        assert_eq!(r.max_time(), Some(3));
    }

    #[test]
    fn window_smaller_than_k_admits_everything() {
        let ds = Dataset::from_rows(1, [[1.0], [2.0], [3.0]]);
        let tree = SkylineSegTree::build(&ds);
        let scorer = SingleAttributeScorer::new(0);
        let r = tree.top_k(&ds, &scorer, 5, Window::new(0, 2));
        assert_eq!(r.items.len(), 3);
        assert_eq!(r.kth_score, f64::NEG_INFINITY);
        assert!(r.admits_score(-1e300));
    }

    #[test]
    fn window_clamps_beyond_coverage() {
        let ds = Dataset::from_rows(1, [[1.0], [2.0], [3.0]]);
        let tree = SkylineSegTree::build(&ds);
        let scorer = SingleAttributeScorer::new(0);
        let r = tree.top_k(&ds, &scorer, 1, Window::new(1, 500));
        assert_eq!(r.items, vec![(2, 3.0)]);
    }

    #[test]
    fn randomized_agreement_linear_2d() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..20 {
            let n = rng.random_range(1..400);
            let ds = random_dataset(&mut rng, n, 2, 15);
            let leaf = *[1usize, 3, 8, 128].choose(&mut rng).expect("non-empty");
            let tree = SkylineSegTree::with_leaf_size(&ds, leaf);
            for _ in 0..10 {
                let a = rng.random_range(0..n as Time);
                let b = rng.random_range(0..n as Time);
                let w = Window::new(a.min(b), a.max(b));
                let k = rng.random_range(1..8);
                let u = vec![rng.random::<f64>(), rng.random::<f64>()];
                let scorer = LinearScorer::new(u);
                let fast = tree.top_k(&ds, &scorer, k, w);
                let slow = scan_top_k(&ds, &scorer, k, w);
                assert_eq!(fast, slow, "trial={trial} k={k} w={w}");
            }
        }
    }

    #[test]
    fn randomized_agreement_high_dim() {
        let mut rng = StdRng::seed_from_u64(22);
        for d in [3usize, 5, 8] {
            let n = 200;
            let ds = random_dataset(&mut rng, n, d, 10);
            let tree = SkylineSegTree::with_leaf_size(&ds, 16);
            for _ in 0..8 {
                let a = rng.random_range(0..n as Time);
                let b = rng.random_range(0..n as Time);
                let w = Window::new(a.min(b), a.max(b));
                let k = rng.random_range(1..6);
                let u: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
                let scorer = LinearScorer::new(u);
                assert_eq!(tree.top_k(&ds, &scorer, k, w), scan_top_k(&ds, &scorer, k, w), "d={d}");
            }
        }
    }

    #[test]
    fn randomized_agreement_cosine() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let n = rng.random_range(2..200);
            let ds = random_dataset(&mut rng, n, 3, 9);
            let tree = SkylineSegTree::with_leaf_size(&ds, 4);
            let mut u: Vec<f64> = (0..3).map(|_| rng.random::<f64>() * 2.0 - 0.5).collect();
            if u.iter().all(|&w| w == 0.0) {
                u[0] = 1.0;
            }
            let scorer = CosineScorer::new(u);
            for _ in 0..6 {
                let a = rng.random_range(0..n as Time);
                let b = rng.random_range(0..n as Time);
                let w = Window::new(a.min(b), a.max(b));
                let k = rng.random_range(1..5);
                let fast = tree.top_k(&ds, &scorer, k, w);
                let slow = scan_top_k(&ds, &scorer, k, w);
                assert_eq!(fast, slow, "trial={trial}");
            }
        }
    }

    #[test]
    fn monotone_combination_agreement() {
        let mut rng = StdRng::seed_from_u64(24);
        let ds = random_dataset(&mut rng, 300, 2, 50);
        let tree = SkylineSegTree::build(&ds);
        let scorer = MonotoneCombinationScorer::log1p(vec![0.7, 0.3]);
        for _ in 0..10 {
            let a = rng.random_range(0..300 as Time);
            let b = rng.random_range(0..300 as Time);
            let w = Window::new(a.min(b), a.max(b));
            assert_eq!(tree.top_k(&ds, &scorer, 3, w), scan_top_k(&ds, &scorer, 3, w));
        }
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let ds = Dataset::from_rows(1, [[1.0], [2.0], [3.0], [4.0]]);
        let tree = SkylineSegTree::with_leaf_size(&ds, 1);
        let scorer = SingleAttributeScorer::new(0);
        tree.top_k(&ds, &scorer, 1, Window::new(0, 3));
        tree.top_k(&ds, &scorer, 1, Window::new(0, 3));
        assert_eq!(tree.counters().queries(), 2);
        assert!(tree.counters().nodes_opened() > 0);
        tree.counters().reset();
        assert_eq!(tree.counters().queries(), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let ds = Dataset::from_rows(1, [[1.0]]);
        let tree = SkylineSegTree::build(&ds);
        tree.top_k(&ds, &SingleAttributeScorer::new(0), 0, Window::new(0, 0));
    }
}
