//! An appendable top-k index for streaming arrivals.
//!
//! The static [`SkylineSegTree`] is built once over a
//! dataset; instant-stamped data, however, keeps arriving. This module
//! provides the classical logarithmic method: maintain a forest of segment
//! trees over consecutive arrival ranges whose sizes follow a binary
//! counter. Appending a record adds a singleton tree and merges equal-sized
//! neighbors (rebuilding their range), giving amortized `O(log n)` merge
//! events and keeping at most `⌈log₂ n⌉ + 1` trees; queries fan out over the
//! forest and merge the per-tree `π≤k` sets.
//!
//! This realizes the paper's claim that the index "supports updates in
//! polylogarithmic time" for the append-heavy temporal setting.

use crate::segtree::{OracleScorer, OracleScratch, QueryCounters, SkylineSegTree, TopKResult};
use crate::skyband_index::{DurableSkybandIndex, IncrementalSkybandIndex};
use durable_topk_temporal::{Dataset, Time, Window};

/// A forest of skyline segment trees supporting appends.
#[derive(Debug, Clone)]
pub struct AppendableTopKIndex {
    trees: Vec<SkylineSegTree>,
    n: usize,
    leaf_size: usize,
    /// Largest tree the binary-counter cascade may produce; `None` keeps
    /// the classical unbounded counter.
    merge_limit: Option<usize>,
    /// Incrementally-maintained durable k-skyband candidates whose search
    /// blocks shadow the forest trees — enables native S-Band over a
    /// still-growing head shard.
    skyband: Option<IncrementalSkybandIndex>,
    counters: QueryCounters,
}

impl AppendableTopKIndex {
    /// Creates an empty index with the given leaf granularity.
    ///
    /// # Panics
    /// Panics if `leaf_size == 0`.
    pub fn new(leaf_size: usize) -> Self {
        assert!(leaf_size > 0, "leaf size must be positive");
        Self {
            trees: Vec::new(),
            n: 0,
            leaf_size,
            merge_limit: None,
            skyband: None,
            counters: QueryCounters::default(),
        }
    }

    /// Caps the binary-counter cascade: no merge may produce a tree
    /// covering more than `limit` records, bounding the worst-case cost
    /// of a single [`append`](AppendableTopKIndex::append) at an
    /// `O(limit)` rebuild instead of `O(n)`.
    ///
    /// The price is more trees — `O(n / limit)` full-sized ones instead
    /// of `O(log n)` total — so queries fan out wider. The sweet spot is
    /// a forest that is *sealed* (rebuilt into one balanced tree) every
    /// `span` appends anyway: merges past the cap are pure wasted work
    /// there, because [`seal`](AppendableTopKIndex::seal) rebuilds from
    /// scratch whenever more than one tree remains.
    ///
    /// # Panics
    /// Panics if `limit == 0`.
    pub fn with_merge_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "merge limit must be positive");
        self.merge_limit = Some(limit);
        self
    }

    /// Attaches an incrementally-maintained durable k-skyband index
    /// serving `k <= k_max` (rounded up to a power of two), so
    /// `Algorithm::SBand` runs natively over the forest at every point of
    /// the append timeline. `ds` must be the dataset this index already
    /// covers (it seeds durations for records indexed before the call);
    /// later [`append`](AppendableTopKIndex::append)s keep the skyband in
    /// step automatically.
    ///
    /// # Panics
    /// Panics if `k_max == 0` or `ds.len() != self.len()`.
    pub fn with_skyband_bound(mut self, ds: &Dataset, k_max: usize) -> Self {
        assert_eq!(
            ds.len(),
            self.n,
            "skyband bound must be attached over the dataset this index covers"
        );
        let mut skyband = IncrementalSkybandIndex::build(ds, k_max);
        skyband.sync(self.trees.iter().map(SkylineSegTree::coverage));
        self.skyband = Some(skyband);
        self
    }

    /// The incremental skyband candidate index, when one was attached.
    pub fn skyband(&self) -> Option<&IncrementalSkybandIndex> {
        self.skyband.as_ref()
    }

    /// Freezes the maintained skyband durations into the static index a
    /// sealed shard serves — the skyband half of
    /// [`seal`](AppendableTopKIndex::seal), reusing every duration the
    /// maintainer already computed instead of rescanning the history.
    ///
    /// Returns `None` when no skyband bound was attached or the index is
    /// empty.
    pub fn sealed_skyband(&self) -> Option<DurableSkybandIndex> {
        self.skyband.as_ref().filter(|sb| !sb.is_empty()).map(IncrementalSkybandIndex::to_static)
    }

    /// Builds the index over an existing dataset (one tree), ready for
    /// further appends.
    pub fn build(ds: &Dataset, leaf_size: usize) -> Self {
        let mut idx = Self::new(leaf_size);
        if !ds.is_empty() {
            idx.trees.push(SkylineSegTree::with_leaf_size(ds, leaf_size));
            idx.n = ds.len();
        }
        idx
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index covers no records.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of trees currently in the forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Instrumentation counters (logical queries against the forest).
    pub fn counters(&self) -> &QueryCounters {
        &self.counters
    }

    /// Heap bytes held by the forest's trees (see
    /// [`SkylineSegTree::heap_bytes`]) — resident-set accounting for the
    /// storage-tier bench. The incremental skyband maintainer is excluded:
    /// it is duration bookkeeping, not record storage.
    pub fn heap_bytes(&self) -> usize {
        self.trees.iter().map(SkylineSegTree::heap_bytes).sum()
    }

    /// Indexes the most recently appended record of `ds`.
    ///
    /// # Panics
    /// Panics unless `ds.len() == self.len() + 1` — exactly one new record
    /// must have been pushed to the dataset since the last append/build.
    pub fn append(&mut self, ds: &Dataset) {
        assert_eq!(ds.len(), self.n + 1, "append expects exactly one new record in the dataset");
        let t = self.n as Time;
        self.trees.push(SkylineSegTree::build_over(ds, t, t, self.leaf_size));
        self.n += 1;
        // Binary-counter merge: combine equal-length suffix trees (up to
        // the merge cap, when one is set).
        while self.trees.len() >= 2 {
            let last = self.trees[self.trees.len() - 1].coverage();
            let prev = self.trees[self.trees.len() - 2].coverage();
            if prev.len() != last.len() {
                break;
            }
            if self.merge_limit.is_some_and(|cap| prev.len() + last.len() > cap) {
                break;
            }
            self.trees.pop();
            self.trees.pop();
            self.trees.push(SkylineSegTree::build_over(
                ds,
                prev.start(),
                last.end(),
                self.leaf_size,
            ));
        }
        // The skyband rides the same cascade: ingest the newcomer's
        // durations, then realign the search blocks to the (suffix of)
        // trees the counter just rebuilt.
        if let Some(skyband) = self.skyband.as_mut() {
            skyband.push(ds);
            skyband.sync(self.trees.iter().map(SkylineSegTree::coverage));
        }
    }

    /// Consumes the forest, collapsing it into a single balanced tree over
    /// its whole coverage — the *sealing* step of shard rotation: a head
    /// shard grown by appends freezes into the same index shape a
    /// from-scratch build produces, ready to serve as an immutable tail
    /// shard.
    ///
    /// When the binary counter already holds a single tree (record count a
    /// power of two), that tree is moved out as-is; otherwise the covered
    /// range is rebuilt once into a fresh balanced tree (segment trees do
    /// not merge structurally).
    ///
    /// # Panics
    /// Panics if the index is empty.
    pub fn seal(mut self, ds: &Dataset) -> SkylineSegTree {
        assert!(!self.is_empty(), "cannot seal an empty index");
        if self.trees.len() == 1 {
            return self.trees.pop().expect("one tree");
        }
        SkylineSegTree::build_over(ds, 0, (self.n - 1) as Time, self.leaf_size)
    }

    /// As [`seal`](AppendableTopKIndex::seal), leaving the forest intact —
    /// the background-seal path, where a frozen head snapshot must keep
    /// serving queries while its collapse runs on a pool worker. The
    /// single-tree case clones that tree (a flat memcpy) instead of
    /// rebuilding.
    ///
    /// # Panics
    /// Panics if the index is empty.
    pub fn seal_ref(&self, ds: &Dataset) -> SkylineSegTree {
        assert!(!self.is_empty(), "cannot seal an empty index");
        if self.trees.len() == 1 {
            return self.trees[0].clone();
        }
        SkylineSegTree::build_over(ds, 0, (self.n - 1) as Time, self.leaf_size)
    }

    /// Answers `Q(u, k, W)` over the forest.
    ///
    /// Convenience wrapper over [`top_k_with`](AppendableTopKIndex::top_k_with)
    /// that allocates fresh scratch.
    ///
    /// # Panics
    /// Panics if `k == 0` or the index is empty.
    pub fn top_k<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
    ) -> TopKResult {
        let mut scratch = OracleScratch::new();
        let mut out = TopKResult::empty();
        self.top_k_with(ds, scorer, k, w, &mut scratch, &mut out);
        out
    }

    /// Answers `Q(u, k, W)` over the forest into `out`, merging the per-tree
    /// `π≤k` sets through the scratch's merge buffer (allocation-free once
    /// warm).
    ///
    /// # Panics
    /// Panics if `k == 0` or the index is empty.
    pub fn top_k_with<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        assert!(!self.trees.is_empty(), "cannot query an empty index");
        self.counters.bump_queries();
        // Collect per-tree results through `out`, accumulating in the merge
        // buffer, then finalize the union in place.
        let mut merge = std::mem::take(&mut scratch.merge);
        merge.clear();
        for tree in &self.trees {
            if tree.coverage().intersect(w).is_some() {
                tree.top_k_with(ds, scorer, k, w, scratch, out);
                merge.append(&mut out.items);
            }
        }
        out.clear();
        std::mem::swap(&mut out.items, &mut merge);
        out.finalize_in_place(k);
        scratch.merge = merge;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segtree::scan_top_k;
    use durable_topk_temporal::LinearScorer;
    use rand::prelude::*;

    #[test]
    fn forest_matches_scan_under_appends() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ds = Dataset::new(2);
        let mut idx = AppendableTopKIndex::new(4);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        for step in 0..200usize {
            ds.push(&[rng.random_range(0..20) as f64, rng.random_range(0..20) as f64]);
            idx.append(&ds);
            if step % 17 == 0 {
                let n = ds.len() as Time;
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                let w = Window::new(a.min(b), a.max(b));
                let k = rng.random_range(1..5);
                assert_eq!(
                    idx.top_k(&ds, &scorer, k, w),
                    scan_top_k(&ds, &scorer, k, w),
                    "step={step}"
                );
            }
        }
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn forest_size_stays_logarithmic() {
        let mut ds = Dataset::new(1);
        let mut idx = AppendableTopKIndex::new(2);
        for i in 0..1024usize {
            ds.push(&[i as f64]);
            idx.append(&ds);
        }
        // 1024 = 2^10: binary counter collapses to a single tree.
        assert_eq!(idx.tree_count(), 1);
        ds.push(&[0.0]);
        idx.append(&ds);
        assert_eq!(idx.tree_count(), 2);
        for i in 0..6usize {
            ds.push(&[i as f64]);
            idx.append(&ds);
        }
        assert!(idx.tree_count() <= 11);
    }

    #[test]
    fn build_then_append_mixes() {
        let mut ds = Dataset::from_rows(1, [[3.0], [1.0], [2.0]]);
        let mut idx = AppendableTopKIndex::build(&ds, 2);
        ds.push(&[9.0]);
        idx.append(&ds);
        let scorer = LinearScorer::new(vec![1.0]);
        let r = idx.top_k(&ds, &scorer, 2, Window::new(0, 3));
        assert_eq!(r.items, vec![(3, 9.0), (0, 3.0)]);
    }

    #[test]
    fn merge_limit_bounds_tree_size_and_stays_exact() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ds = Dataset::new(2);
        let mut capped = AppendableTopKIndex::new(4).with_merge_limit(16);
        let mut classic = AppendableTopKIndex::new(4);
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        for step in 0..300usize {
            ds.push(&[rng.random_range(0..25) as f64, rng.random_range(0..25) as f64]);
            capped.append(&ds);
            classic.append(&ds);
            if step % 23 == 0 {
                let n = ds.len() as Time;
                let w = Window::new(n / 3, n - 1);
                let k = 1 + step % 4;
                assert_eq!(
                    capped.top_k(&ds, &scorer, k, w),
                    classic.top_k(&ds, &scorer, k, w),
                    "step={step}"
                );
            }
        }
        // No tree exceeds the cap, so the worst single append rebuilt at
        // most 16 records; the price is a linear (bounded) tree count.
        assert!(capped.tree_count() >= 300 / 16, "capped forests keep cap-sized trees");
        // The sealed shapes agree too.
        let a = capped.seal(&ds);
        let b = classic.seal(&ds);
        assert_eq!(a.coverage(), b.coverage());
    }

    #[test]
    fn seal_collapses_to_one_exact_tree() {
        let mut ds = Dataset::new(2);
        let mut idx = AppendableTopKIndex::new(4);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        for i in 0..37usize {
            ds.push(&[((i * 13) % 29) as f64, ((i * 7) % 23) as f64]);
            idx.append(&ds);
        }
        assert!(idx.tree_count() > 1, "37 = 0b100101 keeps several trees");
        let sealed = idx.seal(&ds);
        assert_eq!(sealed.coverage(), Window::new(0, 36));
        for k in [1usize, 3] {
            let w = Window::new(5, 30);
            assert_eq!(sealed.top_k(&ds, &scorer, k, w), scan_top_k(&ds, &scorer, k, w));
        }
    }

    #[test]
    fn skyband_rides_the_merge_cascade() {
        use crate::skyband_index::{DurableSkybandIndex, SkybandCandidates};
        let mut rng = StdRng::seed_from_u64(53);
        let mut ds = Dataset::new(2);
        let mut idx = AppendableTopKIndex::new(4).with_merge_limit(16).with_skyband_bound(&ds, 6);
        for step in 0..180usize {
            ds.push(&[rng.random_range(0..14) as f64, rng.random_range(0..14) as f64]);
            idx.append(&ds);
            if step % 19 == 3 {
                let stat = DurableSkybandIndex::build(&ds, 6);
                let sb = idx.skyband().expect("attached");
                let n = ds.len() as Time;
                for (k, tau) in [(1usize, 2u32), (3, 9), (6, 40)] {
                    let w = Window::new(n / 3, n - 1);
                    let (mut got, gl) = sb.candidates(w, tau, k);
                    let (mut want, wl) = stat.candidates(w, tau, k);
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!((got, gl), (want, wl), "step={step} k={k} tau={tau}");
                }
            }
        }
        // The sealed skyband equals a from-scratch static build.
        let sealed = idx.sealed_skyband().expect("attached and non-empty");
        let stat = DurableSkybandIndex::build(&ds, 6);
        let w = Window::new(20, 170);
        let (mut a, _) = sealed.candidates(w, 12, 4);
        let (mut b, _) = stat.candidates(w, 12, 4);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn skyband_attaches_over_existing_history() {
        let ds = Dataset::from_rows(2, (0..40).map(|i| [((i * 7) % 13) as f64, (i % 5) as f64]));
        let mut full = ds.clone();
        let mut idx = AppendableTopKIndex::build(&ds, 4).with_skyband_bound(&ds, 3);
        full.push(&[11.0, 4.0]);
        idx.append(&full);
        assert_eq!(idx.skyband().expect("attached").len(), 41);
    }

    #[test]
    #[should_panic(expected = "cannot seal an empty index")]
    fn sealing_an_empty_forest_is_rejected() {
        AppendableTopKIndex::new(2).seal(&Dataset::new(1));
    }

    #[test]
    #[should_panic(expected = "exactly one new record")]
    fn append_requires_one_push() {
        let mut ds = Dataset::from_rows(1, [[1.0]]);
        let mut idx = AppendableTopKIndex::build(&ds, 2);
        ds.push(&[2.0]);
        ds.push(&[3.0]);
        idx.append(&ds);
    }
}
