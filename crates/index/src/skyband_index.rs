//! The durable k-skyband candidate index (paper Section IV-B, Fig. 4).
//!
//! For a monotone scoring function, any τ-durable top-k record must be
//! τ-durable for the k-skyband as well. Mapping each record `p` to the point
//! `(p.t, τ_p)` — arrival time versus longest skyband-resident duration —
//! turns candidate retrieval into a 3-sided range query `I × [τ, +∞)` on a
//! priority search tree.
//!
//! Because `k` is a query parameter, the index keeps a logarithmic family of
//! levels `k = 1, 2, 4, …, 2^⌈log κ⌉`; a query with parameter `k` uses the
//! smallest level `k̄ >= k`, whose candidate set is a superset of the answer
//! (`S ⊆ C`), at the cost of at most doubling the effective `k`.

use durable_topk_geom::{skyband_durations_multi, PrioritySearchTree, PstPoint};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// The durable k-skyband index: one priority search tree per k level.
#[derive(Debug, Clone)]
pub struct DurableSkybandIndex {
    levels: Vec<(usize, PrioritySearchTree)>,
}

impl DurableSkybandIndex {
    /// Builds levels `k = 1, 2, 4, …` up to the first power of two at or
    /// above `k_max`.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `k_max == 0`.
    pub fn build(ds: &Dataset, k_max: usize) -> Self {
        assert!(!ds.is_empty(), "cannot index an empty dataset");
        assert!(k_max > 0, "k_max must be positive");
        let mut ks = vec![1usize];
        while *ks.last().expect("non-empty") < k_max {
            ks.push(ks.last().expect("non-empty") * 2);
        }
        let durations = skyband_durations_multi(ds, &ks);
        let levels = ks
            .into_iter()
            .zip(durations)
            .map(|(k, durs)| {
                let points = durs
                    .into_iter()
                    .enumerate()
                    .map(|(id, tau)| PstPoint { x: id as u32, y: tau, id: id as u32 })
                    .collect();
                (k, PrioritySearchTree::build(points))
            })
            .collect();
        Self { levels }
    }

    /// The largest `k` the index can serve.
    pub fn max_k(&self) -> usize {
        self.levels.last().map_or(0, |&(k, _)| k)
    }

    /// The level (`k̄`) that will serve a query with parameter `k`, if any.
    pub fn level_for(&self, k: usize) -> Option<usize> {
        self.levels.iter().map(|&(lk, _)| lk).find(|&lk| lk >= k)
    }

    /// Retrieves the candidate superset `C` for `DurTop(k, I, τ)`: records
    /// arriving in `interval` whose k̄-skyband duration is at least `tau`.
    ///
    /// Returns the candidate ids (unsorted) and the level `k̄` used.
    ///
    /// # Panics
    /// Panics if `k` exceeds the largest built level (the index cannot
    /// guarantee a superset then).
    pub fn candidates(&self, interval: Window, tau: Time, k: usize) -> (Vec<RecordId>, usize) {
        assert!(k >= 1, "k must be positive");
        let k_bar = self
            .level_for(k)
            .unwrap_or_else(|| panic!("index built for k <= {}, got {k}", self.max_k()));
        let pst = &self
            .levels
            .iter()
            .find(|&&(lk, _)| lk == k_bar)
            .expect("level_for returned an existing level")
            .1;
        let ids =
            pst.query(interval.start(), interval.end(), tau).into_iter().map(|p| p.id).collect();
        (ids, k_bar)
    }

    /// Total candidate count for instrumentation without materializing ids.
    pub fn candidate_count(&self, interval: Window, tau: Time, k: usize) -> usize {
        self.candidates(interval, tau, k).0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_geom::{skyband_durations, DURATION_UNBOUNDED};
    use rand::prelude::*;

    #[test]
    fn levels_are_powers_of_two() {
        let ds = Dataset::from_rows(2, (0..32).map(|i| [i as f64, (32 - i) as f64]));
        let idx = DurableSkybandIndex::build(&ds, 10);
        assert_eq!(idx.max_k(), 16);
        assert_eq!(idx.level_for(1), Some(1));
        assert_eq!(idx.level_for(3), Some(4));
        assert_eq!(idx.level_for(16), Some(16));
        assert_eq!(idx.level_for(17), None);
    }

    #[test]
    fn candidates_match_direct_duration_filter() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<[f64; 2]> = (0..150)
            .map(|_| [rng.random_range(0..10) as f64, rng.random_range(0..10) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let idx = DurableSkybandIndex::build(&ds, 8);
        for k in [1usize, 2, 3, 5, 8] {
            let k_bar = idx.level_for(k).expect("built");
            let durs = skyband_durations(&ds, k_bar);
            for tau in [1u32, 5, 20, 100] {
                let interval = Window::new(30, 120);
                let (mut got, used) = idx.candidates(interval, tau, k);
                assert_eq!(used, k_bar);
                got.sort_unstable();
                let expected: Vec<RecordId> =
                    (30..=120u32).filter(|&i| durs[i as usize] >= tau).collect();
                assert_eq!(got, expected, "k={k} tau={tau}");
            }
        }
    }

    #[test]
    fn unbounded_records_are_always_candidates() {
        // Strictly increasing chain: nobody is ever dominated.
        let ds = Dataset::from_rows(2, (0..20).map(|i| [i as f64, i as f64]));
        let durs = skyband_durations(&ds, 1);
        assert!(durs.iter().all(|&d| d == DURATION_UNBOUNDED));
        let idx = DurableSkybandIndex::build(&ds, 4);
        let (got, _) = idx.candidates(Window::new(0, 19), 19, 1);
        assert_eq!(got.len(), 20);
    }

    #[test]
    #[should_panic(expected = "index built for")]
    fn oversized_k_panics() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0], [2.0, 2.0]]);
        let idx = DurableSkybandIndex::build(&ds, 2);
        idx.candidates(Window::new(0, 1), 1, 50);
    }
}
