//! The durable k-skyband candidate index (paper Section IV-B, Fig. 4).
//!
//! For a monotone scoring function, any τ-durable top-k record must be
//! τ-durable for the k-skyband as well. Mapping each record `p` to the point
//! `(p.t, τ_p)` — arrival time versus longest skyband-resident duration —
//! turns candidate retrieval into a 3-sided range query `I × [τ, +∞)` on a
//! priority search tree.
//!
//! Because `k` is a query parameter, the index keeps a logarithmic family of
//! levels `k = 1, 2, 4, …, 2^⌈log κ⌉`; a query with parameter `k` uses the
//! smallest level `k̄ >= k`, whose candidate set is a superset of the answer
//! (`S ⊆ C`), at the cost of at most doubling the effective `k`.

use durable_topk_geom::{
    level_ks, skyband_durations_multi, PrioritySearchTree, PstPoint, SkybandMaintainer,
};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// A source of S-Band candidate supersets: anything that can answer the
/// 3-sided query "records arriving in `I` whose k̄-skyband duration is at
/// least `τ`". Implemented by the static [`DurableSkybandIndex`] (sealed
/// shards) and the [`IncrementalSkybandIndex`] riding the appendable
/// forest (the mutable head shard), so the S-Band algorithm runs
/// unchanged over both.
pub trait SkybandCandidates {
    /// The largest `k` the candidate source can serve.
    fn max_k(&self) -> usize;

    /// The level (`k̄`) that will serve a query with parameter `k`, if any.
    fn level_for(&self, k: usize) -> Option<usize>;

    /// Retrieves the candidate superset `C` for `DurTop(k, I, τ)` and the
    /// level `k̄` used; ids are unsorted.
    fn candidates(&self, interval: Window, tau: Time, k: usize) -> (Vec<RecordId>, usize);
}

/// Builds one level's priority search tree from its duration vector.
fn level_pst(durs: Vec<u32>) -> PrioritySearchTree {
    let points = durs
        .into_iter()
        .enumerate()
        .map(|(id, tau)| PstPoint { x: id as u32, y: tau, id: id as u32 })
        .collect();
    PrioritySearchTree::build(points)
}

/// The durable k-skyband index: one priority search tree per k level.
#[derive(Debug, Clone)]
pub struct DurableSkybandIndex {
    levels: Vec<(usize, PrioritySearchTree)>,
}

impl DurableSkybandIndex {
    /// Builds levels `k = 1, 2, 4, …` up to the first power of two at or
    /// above `k_max`.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `k_max == 0`.
    pub fn build(ds: &Dataset, k_max: usize) -> Self {
        assert!(!ds.is_empty(), "cannot index an empty dataset");
        let ks = level_ks(k_max);
        let durations = skyband_durations_multi(ds, &ks);
        let levels = ks.into_iter().zip(durations).map(|(k, durs)| (k, level_pst(durs))).collect();
        Self { levels }
    }

    /// Assembles the index from already-computed per-level durations —
    /// the shard-sealing path, where the head's incremental maintainer
    /// already knows every record's duration and only the search trees
    /// need building (an `O(n log n)` restructure instead of the
    /// `O(n · scan)` duration recompute).
    ///
    /// # Panics
    /// Panics if `levels` is empty, its `k` values are not strictly
    /// ascending, or the duration vectors are empty or unequal in length.
    pub fn from_durations(levels: Vec<(usize, Vec<u32>)>) -> Self {
        assert!(!levels.is_empty(), "at least one level required");
        assert!(
            levels.windows(2).all(|w| w[0].0 < w[1].0),
            "levels must be strictly ascending in k"
        );
        let n = levels[0].1.len();
        assert!(n > 0, "cannot index an empty dataset");
        assert!(levels.iter().all(|(_, d)| d.len() == n), "level lengths must agree");
        Self { levels: levels.into_iter().map(|(k, durs)| (k, level_pst(durs))).collect() }
    }

    /// The largest `k` the index can serve.
    pub fn max_k(&self) -> usize {
        self.levels.last().map_or(0, |&(k, _)| k)
    }

    /// The level (`k̄`) that will serve a query with parameter `k`, if any.
    pub fn level_for(&self, k: usize) -> Option<usize> {
        self.levels.iter().map(|&(lk, _)| lk).find(|&lk| lk >= k)
    }

    /// Retrieves the candidate superset `C` for `DurTop(k, I, τ)`: records
    /// arriving in `interval` whose k̄-skyband duration is at least `tau`.
    ///
    /// Returns the candidate ids (unsorted) and the level `k̄` used.
    ///
    /// # Panics
    /// Panics if `k` exceeds the largest built level (the index cannot
    /// guarantee a superset then).
    pub fn candidates(&self, interval: Window, tau: Time, k: usize) -> (Vec<RecordId>, usize) {
        assert!(k >= 1, "k must be positive");
        let k_bar = self
            .level_for(k)
            // lint: allow(panic) — documented-panic API: k beyond the build
            // bound is a caller bug, not a query-path state.
            .unwrap_or_else(|| panic!("index built for k <= {}, got {k}", self.max_k()));
        let pst = &self
            .levels
            .iter()
            .find(|&&(lk, _)| lk == k_bar)
            .expect("level_for returned an existing level")
            .1;
        let ids =
            pst.query(interval.start(), interval.end(), tau).into_iter().map(|p| p.id).collect();
        (ids, k_bar)
    }

    /// Total candidate count for instrumentation without materializing ids.
    pub fn candidate_count(&self, interval: Window, tau: Time, k: usize) -> usize {
        self.candidates(interval, tau, k).0.len()
    }
}

impl SkybandCandidates for DurableSkybandIndex {
    fn max_k(&self) -> usize {
        DurableSkybandIndex::max_k(self)
    }

    fn level_for(&self, k: usize) -> Option<usize> {
        DurableSkybandIndex::level_for(self, k)
    }

    fn candidates(&self, interval: Window, tau: Time, k: usize) -> (Vec<RecordId>, usize) {
        DurableSkybandIndex::candidates(self, interval, tau, k)
    }
}

/// One contiguous run of records whose per-level search trees mirror a
/// segment tree of the appendable forest.
#[derive(Debug, Clone)]
struct SkybandBlock {
    /// Record-id range `[lo, hi]` this block covers — always equal to the
    /// coverage of the forest tree it shadows.
    range: Window,
    /// One priority search tree per maintained level, same order as
    /// [`SkybandMaintainer::levels`].
    levels: Vec<PrioritySearchTree>,
}

impl SkybandBlock {
    fn build(range: Window, maintainer: &SkybandMaintainer) -> Self {
        let levels = (0..maintainer.levels().len())
            .map(|level| {
                let durs = maintainer.durations(level);
                let points =
                    range.iter().map(|id| PstPoint { x: id, y: durs[id as usize], id }).collect();
                PrioritySearchTree::build(points)
            })
            .collect();
        Self { range, levels }
    }
}

/// An appendable durable k-skyband index for the mutable head shard.
///
/// Two halves, mirroring the split between data and search structure:
///
/// * a [`SkybandMaintainer`] computes every arriving record's skyband
///   duration once, incrementally (durations are append-stable — they
///   only look backwards — so no insertion ever revisits old records);
/// * a list of skyband blocks partitions the covered ids into
///   contiguous runs of per-level priority search trees, *riding the
///   forest's merge cascade*: [`sync`](IncrementalSkybandIndex::sync)
///   realigns the blocks to the forest's tree coverages after each
///   append, rebuilding only the suffix the binary counter touched.
///   Because the forest caps its merges (`span/4` in the sharded
///   engine), block rebuilds inherit the same bound, keeping the worst
///   single append polylogarithmic-amortized with an `O(cap · log)`
///   ceiling.
///
/// Candidate retrieval fans the 3-sided query over the blocks
/// intersecting `I` — identical semantics to the static index, so
/// [`SkybandCandidates`] serves S-Band over either without the algorithm
/// noticing.
#[derive(Debug, Clone)]
pub struct IncrementalSkybandIndex {
    maintainer: SkybandMaintainer,
    blocks: Vec<SkybandBlock>,
}

impl IncrementalSkybandIndex {
    /// An empty incremental index serving `k <= k_max` (rounded up to a
    /// power of two).
    ///
    /// # Panics
    /// Panics if `k_max == 0`.
    pub fn new(k_max: usize) -> Self {
        Self { maintainer: SkybandMaintainer::new(k_max), blocks: Vec::new() }
    }

    /// Bootstraps the maintainer over existing history; call
    /// [`sync`](IncrementalSkybandIndex::sync) afterwards to align the
    /// blocks with the owning forest.
    pub fn build(ds: &Dataset, k_max: usize) -> Self {
        Self { maintainer: SkybandMaintainer::build(ds, k_max), blocks: Vec::new() }
    }

    /// Records covered.
    pub fn len(&self) -> usize {
        self.maintainer.len()
    }

    /// Whether no record is covered.
    pub fn is_empty(&self) -> bool {
        self.maintainer.is_empty()
    }

    /// The duration maintainer (instrumentation, seal hand-off).
    pub fn maintainer(&self) -> &SkybandMaintainer {
        &self.maintainer
    }

    /// Ingests the most recently appended record of `ds` (durations only;
    /// follow with [`sync`](IncrementalSkybandIndex::sync) to realign the
    /// search blocks).
    pub fn push(&mut self, ds: &Dataset) {
        self.maintainer.append(ds);
    }

    /// Realigns the search blocks to the given forest tree coverages,
    /// reusing every block whose range is unchanged (the merge cascade
    /// only ever touches a suffix) and rebuilding the rest from the
    /// maintained durations.
    pub fn sync<I: Iterator<Item = Window>>(&mut self, coverages: I) {
        let coverages: Vec<Window> = coverages.collect();
        let mut common = 0usize;
        while common < self.blocks.len()
            && common < coverages.len()
            && self.blocks[common].range == coverages[common]
        {
            common += 1;
        }
        self.blocks.truncate(common);
        for &range in &coverages[common..] {
            self.blocks.push(SkybandBlock::build(range, &self.maintainer));
        }
    }

    /// Freezes the maintained durations into a static
    /// [`DurableSkybandIndex`] — the seal path: one balanced search tree
    /// per level over the whole coverage, durations reused verbatim.
    ///
    /// # Panics
    /// Panics if the index is empty.
    pub fn to_static(&self) -> DurableSkybandIndex {
        assert!(!self.is_empty(), "cannot seal an empty skyband index");
        let levels = self
            .maintainer
            .levels()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, self.maintainer.durations(i).to_vec()))
            .collect();
        DurableSkybandIndex::from_durations(levels)
    }
}

impl SkybandCandidates for IncrementalSkybandIndex {
    fn max_k(&self) -> usize {
        self.maintainer.k_max()
    }

    fn level_for(&self, k: usize) -> Option<usize> {
        self.maintainer.levels().iter().copied().find(|&lk| lk >= k)
    }

    fn candidates(&self, interval: Window, tau: Time, k: usize) -> (Vec<RecordId>, usize) {
        assert!(k >= 1, "k must be positive");
        let k_bar = self
            .level_for(k)
            // lint: allow(panic) — documented-panic API: k beyond the build
            // bound is a caller bug, not a query-path state.
            .unwrap_or_else(|| panic!("index built for k <= {}, got {k}", self.max_k()));
        let level = self
            .maintainer
            .levels()
            .iter()
            .position(|&lk| lk == k_bar)
            .expect("level_for returned an existing level");
        let mut ids = Vec::new();
        for block in &self.blocks {
            if let Some(piece) = block.range.intersect(interval) {
                for p in block.levels[level].query(piece.start(), piece.end(), tau) {
                    ids.push(p.id);
                }
            }
        }
        (ids, k_bar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_geom::{skyband_durations, DURATION_UNBOUNDED};
    use rand::prelude::*;

    #[test]
    fn levels_are_powers_of_two() {
        let ds = Dataset::from_rows(2, (0..32).map(|i| [i as f64, (32 - i) as f64]));
        let idx = DurableSkybandIndex::build(&ds, 10);
        assert_eq!(idx.max_k(), 16);
        assert_eq!(idx.level_for(1), Some(1));
        assert_eq!(idx.level_for(3), Some(4));
        assert_eq!(idx.level_for(16), Some(16));
        assert_eq!(idx.level_for(17), None);
    }

    #[test]
    fn candidates_match_direct_duration_filter() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<[f64; 2]> = (0..150)
            .map(|_| [rng.random_range(0..10) as f64, rng.random_range(0..10) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let idx = DurableSkybandIndex::build(&ds, 8);
        for k in [1usize, 2, 3, 5, 8] {
            let k_bar = idx.level_for(k).expect("built");
            let durs = skyband_durations(&ds, k_bar);
            for tau in [1u32, 5, 20, 100] {
                let interval = Window::new(30, 120);
                let (mut got, used) = idx.candidates(interval, tau, k);
                assert_eq!(used, k_bar);
                got.sort_unstable();
                let expected: Vec<RecordId> =
                    (30..=120u32).filter(|&i| durs[i as usize] >= tau).collect();
                assert_eq!(got, expected, "k={k} tau={tau}");
            }
        }
    }

    #[test]
    fn unbounded_records_are_always_candidates() {
        // Strictly increasing chain: nobody is ever dominated.
        let ds = Dataset::from_rows(2, (0..20).map(|i| [i as f64, i as f64]));
        let durs = skyband_durations(&ds, 1);
        assert!(durs.iter().all(|&d| d == DURATION_UNBOUNDED));
        let idx = DurableSkybandIndex::build(&ds, 4);
        let (got, _) = idx.candidates(Window::new(0, 19), 19, 1);
        assert_eq!(got.len(), 20);
    }

    #[test]
    #[should_panic(expected = "index built for")]
    fn oversized_k_panics() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0], [2.0, 2.0]]);
        let idx = DurableSkybandIndex::build(&ds, 2);
        idx.candidates(Window::new(0, 1), 1, 50);
    }

    #[test]
    fn from_durations_equals_build() {
        let mut rng = StdRng::seed_from_u64(14);
        let rows: Vec<[f64; 2]> = (0..120)
            .map(|_| [rng.random_range(0..12) as f64, rng.random_range(0..12) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let built = DurableSkybandIndex::build(&ds, 4);
        let ks = durable_topk_geom::level_ks(4);
        let durs = durable_topk_geom::skyband_durations_multi(&ds, &ks);
        let assembled = DurableSkybandIndex::from_durations(ks.into_iter().zip(durs).collect());
        for k in [1usize, 2, 4] {
            for tau in [1u32, 7, 40] {
                let w = Window::new(15, 100);
                let (mut a, la) = built.candidates(w, tau, k);
                let (mut b, lb) = assembled.candidates(w, tau, k);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!((a, la), (b, lb), "k={k} tau={tau}");
            }
        }
    }

    /// The incremental index under appends, blocks synced to an evolving
    /// binary-counter-style partition, must report exactly the static
    /// index's candidates at every prefix.
    #[test]
    fn incremental_candidates_match_static_at_every_prefix() {
        let mut rng = StdRng::seed_from_u64(77);
        let rows: Vec<[f64; 2]> = (0..140)
            .map(|_| [rng.random_range(0..10) as f64, rng.random_range(0..10) as f64])
            .collect();
        let full = Dataset::from_rows(2, rows);
        let mut ds = Dataset::new(2);
        let mut inc = IncrementalSkybandIndex::new(5);
        for i in 0..full.len() {
            ds.push(full.row(i as RecordId));
            inc.push(&ds);
            // A deliberately uneven partition that changes shape as it
            // grows: blocks of 8 plus a remainder, mimicking forest
            // coverages after a capped merge cascade.
            let n = ds.len() as u32;
            let mut coverages = Vec::new();
            let mut lo = 0u32;
            while lo < n {
                let hi = (lo + 7).min(n - 1);
                coverages.push(Window::new(lo, hi));
                lo = hi + 1;
            }
            inc.sync(coverages.into_iter());
            if i % 13 == 5 {
                let stat = DurableSkybandIndex::build(&ds, 5);
                assert_eq!(SkybandCandidates::max_k(&inc), stat.max_k());
                for k in [1usize, 2, 5, 8] {
                    for tau in [1u32, 4, 30] {
                        let w = Window::new((n / 4).min(n - 1), n - 1);
                        let (mut a, la) = inc.candidates(w, tau, k);
                        let (mut b, lb) = stat.candidates(w, tau, k);
                        a.sort_unstable();
                        b.sort_unstable();
                        assert_eq!((a, la), (b, lb), "prefix={} k={k} tau={tau}", i + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_seals_into_the_static_shape() {
        let mut rng = StdRng::seed_from_u64(91);
        let rows: Vec<[f64; 3]> = (0..90)
            .map(|_| {
                [
                    rng.random_range(0..6) as f64,
                    rng.random_range(0..6) as f64,
                    rng.random_range(0..6) as f64,
                ]
            })
            .collect();
        let ds = Dataset::from_rows(3, rows);
        let mut inc = IncrementalSkybandIndex::build(&ds, 3);
        inc.sync(std::iter::once(Window::new(0, 89)));
        let sealed = inc.to_static();
        let stat = DurableSkybandIndex::build(&ds, 3);
        for k in [1usize, 3, 4] {
            for tau in [2u32, 11, 60] {
                let w = Window::new(10, 80);
                let (mut a, la) = sealed.candidates(w, tau, k);
                let (mut b, lb) = stat.candidates(w, tau, k);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!((a, la), (b, lb), "k={k} tau={tau}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot seal an empty skyband index")]
    fn sealing_an_empty_incremental_index_is_rejected() {
        IncrementalSkybandIndex::new(2).to_static();
    }
}
