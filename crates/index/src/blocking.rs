//! The blocking mechanism of the score-prioritized algorithms.
//!
//! When a record `q` with score `f(q)` is visited, it *blocks* the τ-length
//! interval `[q.t, q.t + τ]`: any record arriving in that interval has `q`
//! inside its own look-back window. Once a timestamp is covered by `k`
//! blocking intervals from strictly higher-scoring records, no record there
//! can be τ-durable (Section IV, Fig. 3).
//!
//! Because every blocking interval has the same length τ, coverage of `t`
//! reduces to counting interval *left endpoints* in `[t − τ, t]` — a Fenwick
//! prefix-sum query over the discrete time domain.
//!
//! **Tie safety.** The paper assumes distinct scores; with real data (e.g.
//! integer rebounds) ties are common, and an interval contributed by a
//! record scoring *equal* to the record under test must not count (the
//! durability predicate is strict: `f(q) > f(p)`). Callers visit records in
//! non-increasing score order, so only the most recent score level can tie;
//! the set keeps that level's left endpoints in a side buffer and subtracts
//! the ones covering the probe.

use durable_topk_geom::Fenwick;
use durable_topk_temporal::Time;

/// A multiset of fixed-length blocking intervals with tie-aware coverage
/// counting.
#[derive(Debug, Clone)]
pub struct BlockingSet {
    fenwick: Fenwick,
    tau: Time,
    /// Left endpoints inserted at the current (lowest-so-far) score level.
    tie_lefts: Vec<Time>,
    tie_score: f64,
    len: usize,
}

impl Default for BlockingSet {
    /// An empty set over an empty domain; size it with
    /// [`reset`](BlockingSet::reset) before use.
    fn default() -> Self {
        Self::new(0, 1)
    }
}

impl BlockingSet {
    /// Creates an empty set over the time domain `[0, n)` for intervals of
    /// length `tau`.
    pub fn new(n: usize, tau: Time) -> Self {
        Self {
            fenwick: Fenwick::new(n),
            tau,
            tie_lefts: Vec::new(),
            tie_score: f64::INFINITY,
            len: 0,
        }
    }

    /// Empties the set and re-sizes it for the time domain `[0, n)` with
    /// intervals of length `tau`, reusing the Fenwick allocation — the
    /// scratch-reuse path of the score-prioritized algorithms.
    pub fn reset(&mut self, n: usize, tau: Time) {
        self.fenwick.reset(n);
        self.tau = tau;
        self.tie_lefts.clear();
        self.tie_score = f64::INFINITY;
        self.len = 0;
    }

    /// Number of intervals inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no interval was inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts the blocking interval `[left, left + τ]` contributed by a
    /// record scoring `score`.
    ///
    /// Scores at or below every previously *probed* score may arrive in any
    /// order (the score-prioritized algorithms insert higher-scoring
    /// blockers discovered by durability checks out of order); the tie
    /// buffer only needs to track the minimum score level, which is the only
    /// level that can tie future probes.
    pub fn insert(&mut self, left: Time, score: f64) {
        self.fenwick.add(left as usize, 1);
        self.len += 1;
        if score < self.tie_score {
            self.tie_lefts.clear();
            self.tie_score = score;
            self.tie_lefts.push(left);
        } else if score == self.tie_score {
            self.tie_lefts.push(left);
        }
        // score > tie_score: strictly above every future probe; no buffering.
    }

    /// Counts blocking intervals covering `t` contributed by records with
    /// score **strictly greater** than `score`.
    ///
    /// Correct provided probes arrive in non-increasing score order relative
    /// to inserted minimums (the invariant maintained by S-Base, S-Band and
    /// S-Hop, which process candidates by descending score).
    pub fn coverage_above(&self, t: Time, score: f64) -> usize {
        let lo = t.saturating_sub(self.tau) as usize;
        let all = self.fenwick.range(lo, t as usize) as usize;
        if score < self.tie_score {
            return all;
        }
        debug_assert!(
            score == self.tie_score,
            "probe score above an inserted level violates descending-order use"
        );
        let tied_covering = self.tie_lefts.iter().filter(|&&l| l as usize >= lo && l <= t).count();
        all - tied_covering
    }

    /// Counts all blocking intervals covering `t`, regardless of score.
    pub fn coverage(&self, t: Time) -> usize {
        let lo = t.saturating_sub(self.tau) as usize;
        self.fenwick.range(lo, t as usize) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_intervals_containing_t() {
        let mut b = BlockingSet::new(100, 10);
        b.insert(5, 9.0); // covers [5, 15]
        b.insert(12, 8.0); // covers [12, 22]
        assert_eq!(b.coverage(4), 0);
        assert_eq!(b.coverage(5), 1);
        assert_eq!(b.coverage(12), 2);
        assert_eq!(b.coverage(15), 2);
        assert_eq!(b.coverage(16), 1);
        assert_eq!(b.coverage(23), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn strictly_above_excludes_tied_level() {
        let mut b = BlockingSet::new(50, 5);
        b.insert(0, 7.0);
        b.insert(2, 7.0);
        // Insert a new minimum level, then probe at the tied level 6.0:
        // only the two 7.0 intervals count.
        b.insert(3, 6.0);
        assert_eq!(b.coverage_above(4, 6.0), 2);
        // Probe below every level: everything counts.
        assert_eq!(b.coverage_above(4, 5.9), 3);
        assert_eq!(b.coverage(4), 3);
    }

    #[test]
    fn out_of_order_higher_insertions_always_count() {
        let mut b = BlockingSet::new(50, 5);
        b.insert(1, 4.0); // processing level drops to 4.0
        b.insert(2, 9.0); // blocker discovered by a durability check
        assert_eq!(b.coverage_above(3, 4.0), 1); // only the 9.0 interval
        assert_eq!(b.coverage_above(3, 3.0), 2);
    }

    #[test]
    fn left_edge_clamps() {
        let mut b = BlockingSet::new(20, 8);
        b.insert(0, 1.0);
        assert_eq!(b.coverage(0), 1);
        assert_eq!(b.coverage(8), 1);
        assert_eq!(b.coverage(9), 0);
    }

    #[test]
    fn tie_buffer_resets_on_new_level() {
        let mut b = BlockingSet::new(30, 3);
        b.insert(0, 5.0);
        b.insert(1, 5.0);
        assert_eq!(b.coverage_above(1, 5.0), 0);
        b.insert(2, 4.0);
        // Level 5.0 intervals now count for probes at 4.0.
        assert_eq!(b.coverage_above(2, 4.0), 2);
        assert_eq!(b.coverage_above(2, 3.5), 3);
    }
}
