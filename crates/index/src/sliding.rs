//! Incremental top-k maintenance over sliding windows.
//!
//! The substrate of the T-Base baseline (Section III-A) and of the
//! sliding-window alternative of Example I.1, following the skyband
//! maintenance idea of Mouratidis et al.: keep the current window's `π≤k`
//! materialized; when the window slides, an expiring record that is *not* in
//! `π≤k` cannot change it beyond the incoming record's insertion, while an
//! expiring member forces a from-scratch recomputation (which the caller
//! performs with the top-k oracle).

use crate::segtree::TopKResult;
use durable_topk_temporal::RecordId;

/// The materialized `π≤k` (top-k with ties) of the current window.
#[derive(Debug, Clone)]
pub struct SkybandBuffer {
    k: usize,
    /// Sorted by descending score, ascending id.
    items: Vec<(RecordId, f64)>,
}

impl SkybandBuffer {
    /// Creates an empty buffer; fill it with
    /// [`refill`](SkybandBuffer::refill).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, items: Vec::new() }
    }

    /// Initializes the buffer from an oracle result.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_result(k: usize, result: &TopKResult) -> Self {
        let mut buf = Self::new(k);
        buf.refill(result);
        buf
    }

    /// Replaces the maintained membership with a fresh oracle result,
    /// reusing the internal buffer (the allocation-free recompute path of
    /// T-Base).
    pub fn refill(&mut self, result: &TopKResult) {
        self.items.clear();
        self.items.extend_from_slice(&result.items);
    }

    /// The k-th highest score in the window, `-inf` when fewer than `k`
    /// records are present.
    #[inline]
    pub fn kth_score(&self) -> f64 {
        if self.items.len() >= self.k {
            self.items[self.k - 1].1
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Whether the record `id` is a member of the maintained `π≤k`.
    pub fn contains(&self, id: RecordId) -> bool {
        self.items.iter().any(|&(i, _)| i == id)
    }

    /// Whether a record scoring `score` belongs to `π≤k` of the current
    /// window (for records inside the window).
    #[inline]
    pub fn admits(&self, score: f64) -> bool {
        score >= self.kth_score()
    }

    /// Current members, best first.
    pub fn items(&self) -> &[(RecordId, f64)] {
        &self.items
    }

    /// Slides the window past a non-member expiry and inserts the incoming
    /// record.
    ///
    /// **Precondition**: the expiring record was not a member
    /// (`!self.contains(expired)`), so the remaining membership is unchanged
    /// except for the incoming record — the O(log k) incremental step of
    /// T-Base. Call sites must recompute from scratch when the expiring
    /// record is a member.
    pub fn insert(&mut self, id: RecordId, score: f64) {
        if score < self.kth_score() {
            return;
        }
        let pos = self.items.partition_point(|&(i, s)| s > score || (s == score && i < id));
        self.items.insert(pos, (id, score));
        let kth = self.kth_score();
        self.items.retain(|&(_, s)| s >= kth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(k: usize, items: Vec<(RecordId, f64)>) -> SkybandBuffer {
        SkybandBuffer::from_result(k, &TopKResult { items, kth_score: 0.0 })
    }

    #[test]
    fn kth_score_with_and_without_enough_records() {
        let b = buf(2, vec![(0, 9.0), (1, 7.0), (2, 7.0)]);
        assert_eq!(b.kth_score(), 7.0);
        let b = buf(5, vec![(0, 9.0)]);
        assert_eq!(b.kth_score(), f64::NEG_INFINITY);
        assert!(b.admits(-1e308));
    }

    #[test]
    fn insert_better_record_evicts_tail() {
        let mut b = buf(2, vec![(0, 9.0), (1, 7.0)]);
        b.insert(5, 8.0);
        assert_eq!(b.items(), &[(0, 9.0), (5, 8.0)]);
        assert_eq!(b.kth_score(), 8.0);
    }

    #[test]
    fn insert_tie_keeps_all_tied() {
        let mut b = buf(2, vec![(0, 9.0), (1, 7.0)]);
        b.insert(5, 7.0);
        assert_eq!(b.items(), &[(0, 9.0), (1, 7.0), (5, 7.0)]);
        assert!(b.contains(5));
    }

    #[test]
    fn insert_worse_record_is_ignored() {
        let mut b = buf(2, vec![(0, 9.0), (1, 7.0)]);
        b.insert(5, 6.9);
        assert_eq!(b.items().len(), 2);
        assert!(!b.contains(5));
    }

    #[test]
    fn underfull_buffer_accepts_everything() {
        let mut b = buf(3, vec![(0, 1.0)]);
        b.insert(1, -5.0);
        assert!(b.contains(1));
        assert_eq!(b.items().len(), 2);
    }
}
