//! Machine-checked concurrency invariants for the `durable_topk` workspace.
//!
//! The serving stack is genuinely concurrent — a worker pool with detached
//! jobs, claim-based seal work-stealing, subscription refresh planned under
//! the engine lock, a sharded-lock result cache, page pinning in the buffer
//! pool — and its deadlock-freedom argument is a **total order over lock
//! classes**: a thread may only acquire a lock whose class ranks *strictly
//! higher* than every class it already holds. This crate turns that
//! argument from comments into an executable specification.
//!
//! # How it works
//!
//! Every lock in the workspace is a [`TrackedMutex`] or [`TrackedRwLock`]
//! declared with a [`LockClass`]. Under `cfg(debug_assertions)` (or the
//! `lock-check` feature, for optimized stress runs) each acquisition:
//!
//! 1. optionally injects a seeded [`yield`](set_yield_seed) to perturb the
//!    schedule and flush out order-dependent interleavings,
//! 2. checks the class rank against the thread's held-set and **panics with
//!    a witness** — both threads' stacks of held classes — on any inversion
//!    (which, under a total rank order, is exactly the set of potential
//!    deadlock cycles),
//! 3. records the edge into a global lock-order graph so the *first* thread
//!    to establish an order becomes the witness quoted when another thread
//!    later contradicts it.
//!
//! In release builds (without `lock-check`) the wrappers are transparent:
//! the tracking metadata is a zero-sized type and every hook is an empty
//! inline function, so `TrackedMutex::lock` compiles to `Mutex::lock`.
//!
//! Poisoning is ignored throughout ([`std::sync::PoisonError::into_inner`]),
//! matching the workspace-wide convention: a panicking query job is already
//! isolated and reported by the pool; its data is never left half-written
//! under a lock.
//!
//! The rank table itself lives in [`LockClass::rank`] and is documented in
//! `docs/ARCHITECTURE.md` ("Concurrency invariants").

use std::fmt;
use std::sync::{Condvar, Mutex, PoisonError, RwLock, WaitTimeoutResult};
use std::time::Duration;

#[cfg(any(debug_assertions, feature = "lock-check"))]
mod track;

#[cfg(not(any(debug_assertions, feature = "lock-check")))]
mod track {
    //! Release stub: zero-sized metadata, empty inline hooks.
    use super::LockClass;

    pub(crate) type Meta = ();

    #[inline(always)]
    pub(crate) fn acquire(_class: LockClass) -> Meta {}
    #[inline(always)]
    pub(crate) fn reacquire(meta: Meta) -> Meta {
        meta
    }
    #[inline(always)]
    pub(crate) fn release(_meta: Meta) {}
    #[inline(always)]
    pub(crate) fn set_seed(_seed: u64) {}
    #[inline(always)]
    pub(crate) fn seed() -> u64 {
        0
    }
    #[inline(always)]
    pub(crate) fn stats() -> (u64, u64) {
        (0, 0)
    }
    pub(crate) const ENABLED: bool = false;
}

/// The class of a tracked lock: its position in the workspace-wide total
/// acquisition order.
///
/// A thread may acquire a lock only if its class [`rank`](LockClass::rank)
/// is **strictly greater** than the rank of every class the thread already
/// holds. Two locks of the *same* class are therefore never held together
/// (intra-class nesting is an inversion too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LockClass {
    /// The serve-engine `RwLock<ShardedEngine>` — the outermost lock; taken
    /// before everything else on append, query, seal and refresh paths.
    Engine,
    /// The `SubscriptionRegistry` mutex on `ServeEngine`: refresh plans are
    /// drawn up under the engine lock, so registry always nests inside it.
    SubscriptionRegistry,
    /// A single `Subscription`'s state mutex (locked under the registry
    /// while planning, under the engine read lock while refreshing).
    SubscriptionState,
    /// The serve queue bookkeeping (`QueueState`, refresh in-flight count)
    /// — short critical sections around condvar waits.
    ServeQueue,
    /// The streaming monitor's history cache.
    MonitorCache,
    /// One lock shard of the `ShardResultCache` LRU.
    CacheShard,
    /// Shard storage internals: `MemoryStorage` chunk list, `PagedStorage`
    /// buffer-pool state.
    PagePool,
    /// Worker-pool internals: work queues, batch state, panic slot, spare
    /// contexts, the shared job receiver.
    PoolQueue,
    /// A seal hand-off `OnceSlot` (claim-based work stealing).
    SealSlot,
    /// A detached-job response `OnceSlot` (completion handles).
    ResponseSlot,
    /// The coordinator's cached cluster topology (per-node shard-range
    /// descriptors). Snapshotted and released before any fan-out.
    NetTopology,
    /// A `RemoteNode`'s TCP connection: held only around socket I/O for one
    /// request/response exchange; never nested with engine-side locks.
    NetConnection,
    /// The node server's connection-handler registry (join handles and the
    /// live-connection count).
    NetServer,
    /// A coordinator per-node latency reservoir; recorded after an RPC
    /// returns, with nothing else held.
    NetStats,
}

impl LockClass {
    /// Every class, in rank order. Kept in sync with [`rank`](Self::rank)
    /// by a unit test and the `xtask lint` rank-completeness rule.
    pub const ALL: [LockClass; 14] = [
        LockClass::Engine,
        LockClass::SubscriptionRegistry,
        LockClass::SubscriptionState,
        LockClass::ServeQueue,
        LockClass::MonitorCache,
        LockClass::CacheShard,
        LockClass::PagePool,
        LockClass::PoolQueue,
        LockClass::SealSlot,
        LockClass::ResponseSlot,
        LockClass::NetTopology,
        LockClass::NetConnection,
        LockClass::NetServer,
        LockClass::NetStats,
    ];

    /// The class's position in the total acquisition order (higher nests
    /// inside lower). Gaps are deliberate: new classes slot in without
    /// renumbering.
    pub const fn rank(self) -> u32 {
        match self {
            LockClass::Engine => 10,
            LockClass::SubscriptionRegistry => 20,
            LockClass::SubscriptionState => 30,
            LockClass::ServeQueue => 40,
            LockClass::MonitorCache => 50,
            LockClass::CacheShard => 60,
            LockClass::PagePool => 70,
            LockClass::PoolQueue => 80,
            LockClass::SealSlot => 90,
            LockClass::ResponseSlot => 95,
            LockClass::NetTopology => 100,
            LockClass::NetConnection => 110,
            LockClass::NetServer => 120,
            LockClass::NetStats => 130,
        }
    }

    /// Stable display name (used in witness reports and stats lines).
    pub const fn name(self) -> &'static str {
        match self {
            LockClass::Engine => "Engine",
            LockClass::SubscriptionRegistry => "SubscriptionRegistry",
            LockClass::SubscriptionState => "SubscriptionState",
            LockClass::ServeQueue => "ServeQueue",
            LockClass::MonitorCache => "MonitorCache",
            LockClass::CacheShard => "CacheShard",
            LockClass::PagePool => "PagePool",
            LockClass::PoolQueue => "PoolQueue",
            LockClass::SealSlot => "SealSlot",
            LockClass::ResponseSlot => "ResponseSlot",
            LockClass::NetTopology => "NetTopology",
            LockClass::NetConnection => "NetConnection",
            LockClass::NetServer => "NetServer",
            LockClass::NetStats => "NetStats",
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(rank {})", self.name(), self.rank())
    }
}

/// A [`std::sync::Mutex`] that participates in ranked lock tracking.
///
/// Lock poisoning is swallowed (the guard is recovered), matching the
/// workspace convention.
pub struct TrackedMutex<T: ?Sized> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex of the given class.
    pub const fn new(class: LockClass, value: T) -> Self {
        Self { class, inner: Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock, enforcing the rank order in checked builds.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let meta = track::acquire(self.class);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TrackedMutexGuard { inner: Some(inner), meta }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("class", &self.class)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`TrackedMutex`]; releasing it pops the class from the
/// thread's held-set.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    meta: track::Meta,
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track::release(self.meta);
        }
    }
}

/// A [`std::sync::RwLock`] that participates in ranked lock tracking.
///
/// Shared and exclusive acquisitions are ranked identically: a read lock
/// can still deadlock against a queued writer, so it occupies the same slot
/// in the acquisition order.
pub struct TrackedRwLock<T: ?Sized> {
    class: LockClass,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked reader–writer lock of the given class.
    pub const fn new(class: LockClass, value: T) -> Self {
        Self { class, inner: RwLock::new(value) }
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires the lock shared, enforcing the rank order in checked builds.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let meta = track::acquire(self.class);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        TrackedReadGuard { inner: Some(inner), meta }
    }

    /// Acquires the lock exclusively, enforcing the rank order in checked
    /// builds.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let meta = track::acquire(self.class);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        TrackedWriteGuard { inner: Some(inner), meta }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("class", &self.class)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-access RAII guard for [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    meta: track::Meta,
}

impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track::release(self.meta);
        }
    }
}

/// Exclusive-access RAII guard for [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    meta: track::Meta,
}

impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track::release(self.meta);
        }
    }
}

/// A condition variable paired with [`TrackedMutex`].
///
/// While a thread is parked in [`wait`](TrackedCondvar::wait) the lock's
/// class is popped from its held-set (the mutex really is released), and
/// re-registered — including a fresh rank check — when the wait returns.
#[derive(Debug, Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: Condvar::new() }
    }

    /// Releases the guard, parks until notified, then re-acquires (with a
    /// fresh rank check against whatever the thread still holds).
    pub fn wait<'a, T>(&self, mut guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
        let inner = guard.inner.take().expect("guard accessed after release");
        let meta = guard.meta;
        track::release(meta);
        drop(guard);
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        let meta = track::reacquire(meta);
        TrackedMutexGuard { inner: Some(inner), meta }
    }

    /// [`wait`](Self::wait) with a timeout; the guard is re-acquired either
    /// way.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
        dur: Duration,
    ) -> (TrackedMutexGuard<'a, T>, WaitTimeoutResult) {
        let inner = guard.inner.take().expect("guard accessed after release");
        let meta = guard.meta;
        track::release(meta);
        drop(guard);
        let (inner, timed_out) =
            self.inner.wait_timeout(inner, dur).unwrap_or_else(PoisonError::into_inner);
        let meta = track::reacquire(meta);
        (TrackedMutexGuard { inner: Some(inner), meta }, timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A snapshot of the checker's counters (all zero when tracking is compiled
/// out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Whether tracking is compiled into this build.
    pub enabled: bool,
    /// Total tracked lock acquisitions since process start.
    pub tracked_acquisitions: u64,
    /// The deepest lock nesting any thread reached.
    pub max_held_depth: u64,
}

/// Returns the checker's counters: total tracked acquisitions and the
/// maximum held-locks depth observed by any thread.
pub fn report() -> CheckReport {
    let (tracked_acquisitions, max_held_depth) = track::stats();
    CheckReport { enabled: track::ENABLED, tracked_acquisitions, max_held_depth }
}

/// Arms schedule perturbation: every tracked acquisition injects a
/// deterministic (seed- and thread-local-counter-derived) burst of 0–3
/// [`std::thread::yield_now`] calls before taking the lock. `0` disables
/// injection. No-op in builds without tracking.
pub fn set_yield_seed(seed: u64) {
    track::set_seed(seed);
}

/// The currently armed yield seed (`0` when disabled or untracked).
pub fn yield_seed() -> u64 {
    track::seed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ranks_are_strictly_increasing_and_names_unique() {
        for pair in LockClass::ALL.windows(2) {
            assert!(
                pair[0].rank() < pair[1].rank(),
                "{} must rank strictly below {}",
                pair[0],
                pair[1]
            );
        }
        let mut names: Vec<_> = LockClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LockClass::ALL.len());
    }

    #[test]
    fn nesting_in_rank_order_is_clean_and_counted() {
        let outer = TrackedMutex::new(LockClass::CacheShard, 1);
        let inner = TrackedMutex::new(LockClass::PagePool, 2);
        let before = report();
        {
            let a = outer.lock();
            let b = inner.lock();
            assert_eq!(*a + *b, 3);
        }
        // Re-acquire after release: same order, no complaints.
        drop(outer.lock());
        let after = report();
        if after.enabled {
            assert!(after.tracked_acquisitions >= before.tracked_acquisitions + 3);
            assert!(after.max_held_depth >= 2);
        } else {
            assert_eq!(after, CheckReport::default());
        }
    }

    #[test]
    fn rwlock_read_then_higher_rank_is_clean() {
        let engine = TrackedRwLock::new(LockClass::Engine, 7u32);
        let pool = TrackedMutex::new(LockClass::PoolQueue, ());
        let g = engine.read();
        let _p = pool.lock();
        assert_eq!(*g, 7);
        drop(_p);
        drop(g);
        let mut w = engine.write();
        *w = 8;
        drop(w);
        assert_eq!(*engine.read(), 8);
    }

    #[cfg(any(debug_assertions, feature = "lock-check"))]
    #[test]
    fn inverted_acquisition_panics_with_both_witness_stacks() {
        let engine = Arc::new(TrackedRwLock::new(LockClass::Engine, ()));
        let subs = Arc::new(TrackedMutex::new(LockClass::SubscriptionRegistry, ()));

        // Thread "planner" establishes the legal engine -> registry order,
        // becoming the recorded witness.
        {
            let engine = Arc::clone(&engine);
            let subs = Arc::clone(&subs);
            thread::Builder::new()
                .name("planner".into())
                .spawn(move || {
                    let _e = engine.write();
                    let _s = subs.lock();
                })
                .expect("spawn")
                .join()
                .expect("legal order must not panic");
        }

        // Thread "inverter" contradicts it: registry -> engine.
        let handle = {
            let engine = Arc::clone(&engine);
            let subs = Arc::clone(&subs);
            thread::Builder::new()
                .name("inverter".into())
                .spawn(move || {
                    let _s = subs.lock();
                    let _e = engine.read();
                })
                .expect("spawn")
        };
        let err = handle.join().expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(msg.contains("lock-order inversion"), "unexpected message: {msg}");
        assert!(msg.contains("Engine") && msg.contains("SubscriptionRegistry"));
        assert!(msg.contains("inverter"), "offending thread named: {msg}");
        assert!(msg.contains("planner"), "witness thread quoted: {msg}");
    }

    #[cfg(any(debug_assertions, feature = "lock-check"))]
    #[test]
    fn same_class_nesting_panics() {
        let a = Arc::new(TrackedMutex::new(LockClass::MonitorCache, ()));
        let b = Arc::new(TrackedMutex::new(LockClass::MonitorCache, ()));
        let handle = thread::spawn(move || {
            let _x = a.lock();
            let _y = b.lock();
        });
        assert!(handle.join().is_err(), "intra-class nesting is an inversion");
    }

    #[test]
    fn condvar_wait_pops_and_reacquires_the_class() {
        let slot =
            Arc::new((TrackedMutex::new(LockClass::ServeQueue, false), TrackedCondvar::new()));
        let waiter = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let (lock, cv) = &*slot;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
                // The class is held again after wake: a lower-rank
                // acquisition now would panic, a higher-rank one is fine.
                let cache = TrackedMutex::new(LockClass::CacheShard, ());
                drop(cache.lock());
            })
        };
        {
            let (lock, cv) = &*slot;
            let mut ready = lock.lock();
            *ready = true;
            drop(ready);
            cv.notify_all();
        }
        waiter.join().expect("wait/reacquire must be clean");
    }

    #[test]
    fn yield_seed_roundtrips_and_perturbed_run_is_clean() {
        set_yield_seed(0xD1CE);
        if report().enabled {
            assert_eq!(yield_seed(), 0xD1CE);
        }
        let m = Arc::new(TrackedMutex::new(LockClass::PoolQueue, 0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("perturbed counting must not deadlock");
        }
        set_yield_seed(0);
        assert_eq!(*m.lock(), 400);
    }
}
