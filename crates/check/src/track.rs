//! The checked-build tracking engine: per-thread held-sets, the global
//! lock-order graph with witnesses, rank-inversion panics, and seeded
//! schedule perturbation.

use super::LockClass;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Tracking is compiled into this build.
pub(crate) const ENABLED: bool = true;

/// Per-guard metadata: which class it holds and a unique token so releases
/// out of LIFO order (guards dropped in arbitrary order) pop the right
/// entry.
#[derive(Clone, Copy)]
pub(crate) struct Meta {
    class: LockClass,
    token: u64,
}

thread_local! {
    /// The classes this thread currently holds, oldest first.
    static HELD: RefCell<Vec<(LockClass, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread counter feeding the yield-injection hash.
    static YIELD_CTR: Cell<u64> = const { Cell::new(0) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static MAX_DEPTH: AtomicU64 = AtomicU64::new(0);
static YIELD_SEED: AtomicU64 = AtomicU64::new(0);

/// Who first established a lock-order edge, and what they held doing it.
struct Witness {
    thread: String,
    stack: Vec<LockClass>,
}

/// The global lock-order graph: `(from, to)` means some thread acquired
/// `to` while holding `from`. Guarded by a *raw* mutex — the checker's own
/// bookkeeping must not recurse into the checker.
fn edges() -> &'static Mutex<HashMap<(LockClass, LockClass), Witness>> {
    static EDGES: OnceLock<Mutex<HashMap<(LockClass, LockClass), Witness>>> = OnceLock::new();
    EDGES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn thread_name() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", current.id()),
    }
}

fn fmt_stack(stack: &[LockClass]) -> String {
    if stack.is_empty() {
        return "(nothing)".to_string();
    }
    stack.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" -> ")
}

/// Registers an acquisition: yield perturbation, rank check (panics on
/// inversion with both threads' stacks), edge recording, counters.
pub(crate) fn acquire(class: LockClass) -> Meta {
    maybe_yield(class);
    let stack: Vec<LockClass> = HELD.with(|h| h.borrow().iter().map(|&(c, _)| c).collect());
    if let Some(&blocking) = stack.iter().find(|c| c.rank() >= class.rank()) {
        panic!("{}", inversion_report(class, blocking, &stack));
    }
    record_edges(class, &stack);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let depth = HELD.with(|h| {
        let mut held = h.borrow_mut();
        held.push((class, token));
        held.len() as u64
    });
    MAX_DEPTH.fetch_max(depth, Ordering::Relaxed);
    Meta { class, token }
}

/// Re-registers a class after a condvar wait (the wait released it).
pub(crate) fn reacquire(meta: Meta) -> Meta {
    acquire(meta.class)
}

/// Pops one acquisition off the thread's held-set.
pub(crate) fn release(meta: Meta) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(_, token)| token == meta.token) {
            held.remove(pos);
        }
    });
}

/// Records `held -> class` edges, quoting this thread as the witness for
/// any edge seen for the first time. Every recorded edge goes strictly
/// rank-upward (the rank check ran first), so the graph stays acyclic by
/// construction — a contradiction is caught *before* it can enter the
/// graph, with the recorded witness for the opposite direction quoted in
/// the panic.
fn record_edges(class: LockClass, stack: &[LockClass]) {
    if stack.is_empty() {
        return;
    }
    let mut graph = edges().lock().unwrap_or_else(PoisonError::into_inner);
    for &from in stack {
        graph.entry((from, class)).or_insert_with(|| {
            let mut witness_stack = stack.to_vec();
            witness_stack.push(class);
            Witness { thread: thread_name(), stack: witness_stack }
        });
    }
}

/// Builds the inversion panic message: the offending thread's stack, the
/// witness cycle, and — when another thread already established the
/// opposite order — that thread's recorded stack.
fn inversion_report(class: LockClass, blocking: LockClass, stack: &[LockClass]) -> String {
    let mut msg = format!(
        "lock-order inversion: thread \"{}\" acquiring {} while holding {}\n  held here: {}",
        thread_name(),
        class,
        blocking,
        fmt_stack(stack),
    );
    if class == blocking {
        msg.push_str("\n  same-class nesting: two locks of one class are never held together");
        return msg;
    }
    msg.push_str(&format!(
        "\n  witness cycle: {} -> {} (this thread) vs {} -> {} (recorded order)",
        blocking.name(),
        class.name(),
        class.name(),
        blocking.name(),
    ));
    let graph = edges().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(witness) = graph.get(&(class, blocking)) {
        msg.push_str(&format!(
            "\n  order {} -> {} first established by thread \"{}\" holding: {}",
            class.name(),
            blocking.name(),
            witness.thread,
            fmt_stack(&witness.stack),
        ));
    }
    msg
}

/// Seeded schedule perturbation: a splitmix-style hash of (seed, per-thread
/// acquisition counter, class rank) picks 0–3 yields, so a given seed
/// replays the same perturbation pattern per thread.
fn maybe_yield(class: LockClass) {
    let seed = YIELD_SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return;
    }
    let n = YIELD_CTR.with(|c| {
        let v = c.get().wrapping_add(1);
        c.set(v);
        v
    });
    let mut x = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((class.rank() as u64) << 32);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    for _ in 0..(x & 3) {
        std::thread::yield_now();
    }
}

pub(crate) fn set_seed(seed: u64) {
    YIELD_SEED.store(seed, Ordering::Relaxed);
}

pub(crate) fn seed() -> u64 {
    YIELD_SEED.load(Ordering::Relaxed)
}

/// `(total acquisitions, max held depth)` counters for [`super::report`].
pub(crate) fn stats() -> (u64, u64) {
    (ACQUISITIONS.load(Ordering::Relaxed), MAX_DEPTH.load(Ordering::Relaxed))
}
