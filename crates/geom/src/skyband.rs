//! k-skyband computation and durable k-skyband durations.
//!
//! The k-skyband of a set contains every point dominated by at most `k − 1`
//! other points in the set (footnote 4 of the paper); the skyline is the
//! 1-skyband. The *durable k-skyband duration* `τ_p` of a record is the
//! longest look-back window length for which `p` remains in the k-skyband of
//! `P([p.t − τ, p.t])`. Because the `k` highest scores under any monotone
//! scoring function lie in the k-skyband, `τ_p >= τ` is a necessary
//! condition for `p` to be τ-durable — this is the pruning the S-Band index
//! exploits.

use crate::domcount::past_dominator_counts;
use crate::dominance::dominates;
use durable_topk_temporal::{Dataset, RecordId};

/// Sentinel duration for records that stay in the k-skyband for every window
/// length (fewer than `k` past dominators exist at all).
pub const DURATION_UNBOUNDED: u32 = u32::MAX;

/// Computes the k-skyband of the records `ids`: those dominated by at most
/// `k − 1` others in the set.
///
/// Runs the quadratic candidate-vs-all scan with early exit at `k`
/// dominators; intended for moderate set sizes (tests, per-window checks).
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_skyband(ds: &Dataset, ids: &[RecordId], k: usize) -> Vec<RecordId> {
    assert!(k > 0, "k must be positive");
    let mut out = Vec::new();
    for &p in ids {
        let row = ds.row(p);
        let mut dominators = 0usize;
        for &q in ids {
            if q != p && dominates(ds.row(q), row) {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            out.push(p);
        }
    }
    out
}

/// Computes, for every record, its durable k-skyband duration `τ_p`.
///
/// `τ_p` is the largest `τ` such that fewer than `k` records in
/// `[p.t − τ, p.t]` dominate `p`; equivalently `p.t − t_k − 1` where `t_k`
/// is the arrival time of the k-th most recent past dominator, or
/// [`DURATION_UNBOUNDED`] when fewer than `k` past dominators exist.
///
/// Strategy (see DESIGN.md): for `d == 2` an `O(n log² n)` offline
/// dominator-count pass first identifies the unbounded records so that the
/// exact backward scan runs only on records guaranteed to find their k-th
/// dominator; for other dimensionalities the backward scan runs directly
/// with per-pair early exit.
///
/// # Panics
/// Panics if `k == 0`.
pub fn skyband_durations(ds: &Dataset, k: usize) -> Vec<u32> {
    assert!(k > 0, "k must be positive");
    let n = ds.len();
    if ds.dim() == 2 {
        let counts = past_dominator_counts(ds);
        let mut out = vec![DURATION_UNBOUNDED; n];
        for i in 0..n {
            if (counts[i] as usize) >= k {
                out[i] = kth_recent_dominator_duration(ds, i as RecordId, k)
                    .expect("count pass guarantees k dominators exist");
            }
        }
        out
    } else {
        (0..n as RecordId)
            .map(|i| kth_recent_dominator_duration(ds, i, k).unwrap_or(DURATION_UNBOUNDED))
            .collect()
    }
}

/// Computes durable skyband durations for several `k` values in one pass.
///
/// Equivalent to calling [`skyband_durations`] per level but sharing the
/// dominator scans: each record is scanned backwards once, up to the largest
/// level that can be satisfied, recording the duration at every requested
/// level along the way. This is how the S-Band index builds its logarithmic
/// family of levels (`k = 1, 2, 4, …`) without multiplying the build cost.
///
/// Returns one duration vector per entry of `ks`, in order.
///
/// # Panics
/// Panics if `ks` is empty, unsorted, or contains zero or duplicates.
pub fn skyband_durations_multi(ds: &Dataset, ks: &[usize]) -> Vec<Vec<u32>> {
    assert!(!ks.is_empty(), "at least one k level required");
    assert!(ks[0] > 0, "k must be positive");
    assert!(ks.windows(2).all(|w| w[0] < w[1]), "ks must be strictly ascending");
    let n = ds.len();
    let mut out = vec![vec![DURATION_UNBOUNDED; n]; ks.len()];
    // For d == 2, the count pass tells us exactly how deep each record's
    // scan must go; in higher dimensions we scan until the largest level or
    // exhaustion.
    let counts = (ds.dim() == 2).then(|| past_dominator_counts(ds));
    let k_max = *ks.last().expect("non-empty");
    for i in 0..n {
        let target = match &counts {
            Some(c) => {
                // Deepest satisfiable level for this record.
                let avail = c[i] as usize;
                match ks.iter().rev().find(|&&k| k <= avail) {
                    Some(&k) => k,
                    None => continue, // all levels unbounded
                }
            }
            None => k_max,
        };
        let row = ds.row(i as RecordId);
        let mut found = 0usize;
        let mut level = 0usize;
        for j in (0..i).rev() {
            if dominates(ds.row(j as RecordId), row) {
                found += 1;
                while level < ks.len() && ks[level] == found {
                    out[level][i] = (i - j - 1) as u32;
                    level += 1;
                }
                if found == target {
                    break;
                }
            }
        }
    }
    out
}

/// Scans backwards from `p` for its k-th most recent dominator; returns the
/// corresponding duration, or `None` if fewer than `k` dominators exist.
fn kth_recent_dominator_duration(ds: &Dataset, p: RecordId, k: usize) -> Option<u32> {
    let row = ds.row(p);
    let mut found = 0usize;
    for j in (0..p).rev() {
        if dominates(ds.row(j), row) {
            found += 1;
            if found == k {
                return Some(p - j - 1);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_durations(ds: &Dataset, k: usize) -> Vec<u32> {
        // Reference: for each p, the largest τ with fewer than k dominators
        // in [p.t - τ, p.t], found by trying every τ.
        let n = ds.len();
        (0..n as RecordId)
            .map(|p| {
                let mut best: u32 = DURATION_UNBOUNDED;
                for tau in 0..n as u32 {
                    let lo = p.saturating_sub(tau);
                    let doms = (lo..p).filter(|&j| dominates(ds.row(j), ds.row(p))).count();
                    if doms >= k {
                        best = tau - 1;
                        break;
                    }
                }
                best
            })
            .collect()
    }

    #[test]
    fn skyband_contains_skyline() {
        let ds = Dataset::from_rows(2, [[1.0, 5.0], [5.0, 1.0], [3.0, 3.0], [2.0, 2.0]]);
        let ids: Vec<RecordId> = (0..4).collect();
        let sky1 = k_skyband(&ds, &ids, 1);
        let sky2 = k_skyband(&ds, &ids, 2);
        assert!(sky1.iter().all(|p| sky2.contains(p)));
        assert_eq!(sky1, vec![0, 1, 2]);
        assert_eq!(sky2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skyband_of_chain() {
        // Decreasing chain: each point dominated by all previous ones.
        let ds = Dataset::from_rows(2, [[4.0, 4.0], [3.0, 3.0], [2.0, 2.0], [1.0, 1.0]]);
        let ids: Vec<RecordId> = (0..4).collect();
        assert_eq!(k_skyband(&ds, &ids, 1), vec![0]);
        assert_eq!(k_skyband(&ds, &ids, 2), vec![0, 1]);
        assert_eq!(k_skyband(&ds, &ids, 3), vec![0, 1, 2]);
    }

    #[test]
    fn durations_on_known_sequence() {
        // t0 (5,5)   t1 (4,4)   t2 (6,6)   t3 (3,3)
        let ds = Dataset::from_rows(2, [[5.0, 5.0], [4.0, 4.0], [6.0, 6.0], [3.0, 3.0]]);
        let d1 = skyband_durations(&ds, 1);
        // t0: no dominators. t1: dominated by t0 (gap 0). t2: none.
        // t3: most recent dominator t2 -> τ = 0.
        assert_eq!(d1, vec![DURATION_UNBOUNDED, 0, DURATION_UNBOUNDED, 0]);
        let d2 = skyband_durations(&ds, 2);
        // t3's 2nd most recent dominator is t1 -> τ = 3 - 1 - 1 = 1.
        assert_eq!(d2, vec![DURATION_UNBOUNDED, DURATION_UNBOUNDED, DURATION_UNBOUNDED, 1]);
    }

    #[test]
    fn durations_match_brute_force_2d() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let n = rng.random_range(1..80);
            let rows: Vec<[f64; 2]> = (0..n)
                .map(|_| [rng.random_range(0..10) as f64, rng.random_range(0..10) as f64])
                .collect();
            let ds = Dataset::from_rows(2, rows);
            for k in [1usize, 2, 3, 5] {
                assert_eq!(skyband_durations(&ds, k), brute_durations(&ds, k), "k={k}");
            }
        }
    }

    #[test]
    fn durations_match_brute_force_3d() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..6 {
            let n = rng.random_range(1..60);
            let rows: Vec<[f64; 3]> = (0..n)
                .map(|_| {
                    [
                        rng.random_range(0..6) as f64,
                        rng.random_range(0..6) as f64,
                        rng.random_range(0..6) as f64,
                    ]
                })
                .collect();
            let ds = Dataset::from_rows(3, rows);
            for k in [1usize, 2, 4] {
                assert_eq!(skyband_durations(&ds, k), brute_durations(&ds, k), "k={k}");
            }
        }
    }

    #[test]
    fn multi_level_matches_single_level() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for d in [2usize, 3] {
            let n = 120;
            let rows: Vec<Vec<f64>> =
                (0..n).map(|_| (0..d).map(|_| rng.random_range(0..9) as f64).collect()).collect();
            let ds = Dataset::from_rows(d, rows);
            let ks = [1usize, 2, 4, 8];
            let multi = skyband_durations_multi(&ds, &ks);
            for (level, &k) in ks.iter().enumerate() {
                assert_eq!(multi[level], skyband_durations(&ds, k), "d={d} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn multi_level_rejects_unsorted() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0]]);
        skyband_durations_multi(&ds, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0]]);
        skyband_durations(&ds, 0);
    }
}
