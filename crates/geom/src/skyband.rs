//! k-skyband computation and durable k-skyband durations.
//!
//! The k-skyband of a set contains every point dominated by at most `k − 1`
//! other points in the set (footnote 4 of the paper); the skyline is the
//! 1-skyband. The *durable k-skyband duration* `τ_p` of a record is the
//! longest look-back window length for which `p` remains in the k-skyband of
//! `P([p.t − τ, p.t])`. Because the `k` highest scores under any monotone
//! scoring function lie in the k-skyband, `τ_p >= τ` is a necessary
//! condition for `p` to be τ-durable — this is the pruning the S-Band index
//! exploits.

use crate::domcount::past_dominator_counts;
use crate::dominance::dominates;
use durable_topk_temporal::{Dataset, RecordId};

/// Sentinel duration for records that stay in the k-skyband for every window
/// length (fewer than `k` past dominators exist at all).
pub const DURATION_UNBOUNDED: u32 = u32::MAX;

/// Computes the k-skyband of the records `ids`: those dominated by at most
/// `k − 1` others in the set.
///
/// Runs the quadratic candidate-vs-all scan with early exit at `k`
/// dominators; intended for moderate set sizes (tests, per-window checks).
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_skyband(ds: &Dataset, ids: &[RecordId], k: usize) -> Vec<RecordId> {
    assert!(k > 0, "k must be positive");
    let mut out = Vec::new();
    for &p in ids {
        let row = ds.row(p);
        let mut dominators = 0usize;
        for &q in ids {
            if q != p && dominates(ds.row(q), row) {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            out.push(p);
        }
    }
    out
}

/// Computes, for every record, its durable k-skyband duration `τ_p`.
///
/// `τ_p` is the largest `τ` such that fewer than `k` records in
/// `[p.t − τ, p.t]` dominate `p`; equivalently `p.t − t_k − 1` where `t_k`
/// is the arrival time of the k-th most recent past dominator, or
/// [`DURATION_UNBOUNDED`] when fewer than `k` past dominators exist.
///
/// Strategy (see DESIGN.md): for `d == 2` an `O(n log² n)` offline
/// dominator-count pass first identifies the unbounded records so that the
/// exact backward scan runs only on records guaranteed to find their k-th
/// dominator; for other dimensionalities the backward scan runs directly
/// with per-pair early exit.
///
/// # Panics
/// Panics if `k == 0`.
pub fn skyband_durations(ds: &Dataset, k: usize) -> Vec<u32> {
    assert!(k > 0, "k must be positive");
    let n = ds.len();
    if ds.dim() == 2 {
        let counts = past_dominator_counts(ds);
        let mut out = vec![DURATION_UNBOUNDED; n];
        for i in 0..n {
            if (counts[i] as usize) >= k {
                out[i] = kth_recent_dominator_duration(ds, i as RecordId, k)
                    .expect("count pass guarantees k dominators exist");
            }
        }
        out
    } else {
        (0..n as RecordId)
            .map(|i| kth_recent_dominator_duration(ds, i, k).unwrap_or(DURATION_UNBOUNDED))
            .collect()
    }
}

/// Computes durable skyband durations for several `k` values in one pass.
///
/// Equivalent to calling [`skyband_durations`] per level but sharing the
/// dominator scans: each record is scanned backwards once, up to the largest
/// level that can be satisfied, recording the duration at every requested
/// level along the way. This is how the S-Band index builds its logarithmic
/// family of levels (`k = 1, 2, 4, …`) without multiplying the build cost.
///
/// Returns one duration vector per entry of `ks`, in order.
///
/// # Panics
/// Panics if `ks` is empty, unsorted, or contains zero or duplicates.
pub fn skyband_durations_multi(ds: &Dataset, ks: &[usize]) -> Vec<Vec<u32>> {
    assert!(!ks.is_empty(), "at least one k level required");
    assert!(ks[0] > 0, "k must be positive");
    assert!(ks.windows(2).all(|w| w[0] < w[1]), "ks must be strictly ascending");
    let n = ds.len();
    let mut out = vec![vec![DURATION_UNBOUNDED; n]; ks.len()];
    // For d == 2, the count pass tells us exactly how deep each record's
    // scan must go; in higher dimensions we scan until the largest level or
    // exhaustion.
    let counts = (ds.dim() == 2).then(|| past_dominator_counts(ds));
    let k_max = *ks.last().expect("non-empty");
    for i in 0..n {
        let target = match &counts {
            Some(c) => {
                // Deepest satisfiable level for this record.
                let avail = c[i] as usize;
                match ks.iter().rev().find(|&&k| k <= avail) {
                    Some(&k) => k,
                    None => continue, // all levels unbounded
                }
            }
            None => k_max,
        };
        let row = ds.row(i as RecordId);
        let mut found = 0usize;
        let mut level = 0usize;
        for j in (0..i).rev() {
            if dominates(ds.row(j as RecordId), row) {
                found += 1;
                while level < ks.len() && ks[level] == found {
                    out[level][i] = (i - j - 1) as u32;
                    level += 1;
                }
                if found == target {
                    break;
                }
            }
        }
    }
    out
}

/// The logarithmic family of skyband levels serving queries with
/// `k <= k_max`: `1, 2, 4, …` up to the first power of two at or above
/// `k_max`. Shared by the static index build and the incremental
/// maintainer so both produce structurally identical level sets.
///
/// # Panics
/// Panics if `k_max == 0`.
pub fn level_ks(k_max: usize) -> Vec<usize> {
    assert!(k_max > 0, "k_max must be positive");
    let mut ks = vec![1usize];
    while *ks.last().expect("non-empty") < k_max {
        ks.push(ks.last().expect("non-empty") * 2);
    }
    ks
}

/// A record still worth scanning when classifying future arrivals, plus
/// how many *later* records dominate it so far.
#[derive(Debug, Clone, Copy)]
struct ActiveRecord {
    id: RecordId,
    later_dominators: u32,
}

/// Incrementally maintains durable k-skyband durations under append-only
/// arrivals.
///
/// `τ_p` looks only backwards — it is the distance to `p`'s k-th most
/// recent *past* dominator — so a later arrival never changes an existing
/// record's duration: appending is pure insertion. The maintainer computes
/// the newcomer's duration at every level of [`level_ks`] with one backward
/// pass over an *active list*, applying two classical streaming-skyband
/// ideas:
///
/// * **Dominance-count updates on insert.** Each active record carries the
///   number of later arrivals dominating it; the newcomer's pass both
///   collects its own most-recent dominators and bumps these counts for
///   every active record it dominates.
/// * **Lazy eviction past `k_max`.** Once a record has `k_max` later
///   dominators it can never again be among the `k_max` most recent
///   dominators of any future arrival: dominance is transitive, so all
///   `k_max` of its later dominators also dominate that arrival and are
///   more recent. Such records are tombstoned (their counter stops the
///   scan from testing them) and compacted away once they outnumber the
///   live half of the list.
///
/// Per-append cost is `O(|active|)` dominance tests; the active list is
/// the "k_max-skyband with respect to later arrivals", which stays near
/// `O(k_max · skyline)` on well-behaved data and degrades to `O(n)` only
/// when the stream is one large anti-chain — exactly the regime where the
/// offline build pays the same quadratic cost.
///
/// Durations produced are bit-identical to [`skyband_durations_multi`]
/// over the same prefix (property-tested below), so an index sealed from
/// the maintainer equals one built from scratch.
#[derive(Debug, Clone)]
pub struct SkybandMaintainer {
    ks: Vec<usize>,
    /// Per level, per record: the durable skyband duration.
    durs: Vec<Vec<u32>>,
    n: usize,
    active: Vec<ActiveRecord>,
    /// Tombstoned entries awaiting compaction.
    evicted: usize,
}

impl SkybandMaintainer {
    /// An empty maintainer covering levels `1, 2, 4, … >= k_max`.
    ///
    /// # Panics
    /// Panics if `k_max == 0`.
    pub fn new(k_max: usize) -> Self {
        let ks = level_ks(k_max);
        let durs = vec![Vec::new(); ks.len()];
        Self { ks, durs, n: 0, active: Vec::new(), evicted: 0 }
    }

    /// Builds the maintainer over existing history by replaying appends —
    /// the same code path live ingestion uses, so grown and bootstrapped
    /// states are indistinguishable.
    pub fn build(ds: &Dataset, k_max: usize) -> Self {
        let mut m = Self::new(k_max);
        for _ in 0..ds.len() {
            // Replay against growing prefixes: `append` only reads rows
            // `<= self.n`, so handing the full dataset each time is sound.
            m.append(ds);
        }
        m
    }

    /// Records covered so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no record was appended yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The maintained levels, strictly ascending powers of two.
    pub fn levels(&self) -> &[usize] {
        &self.ks
    }

    /// The largest `k` the maintained durations can serve.
    pub fn k_max(&self) -> usize {
        *self.ks.last().expect("levels are never empty")
    }

    /// Durations of level `self.levels()[level]`, indexed by record id.
    pub fn durations(&self, level: usize) -> &[u32] {
        &self.durs[level]
    }

    /// Live (non-tombstoned) entries of the active list — instrumentation
    /// for tests and benches.
    pub fn active_len(&self) -> usize {
        self.active.len() - self.evicted
    }

    /// Ingests record `self.len()` of `ds` — the next one in arrival
    /// order — computing its duration at every level and updating the
    /// active list. `ds` may already hold further records (that is how
    /// [`build`](SkybandMaintainer::build) replays a whole history); only
    /// rows up to `self.len()` are read, so durations are identical
    /// either way.
    ///
    /// # Panics
    /// Panics if `ds` holds no record at index `self.len()`.
    pub fn append(&mut self, ds: &Dataset) {
        assert!(ds.len() > self.n, "append expects the new record to be present in the dataset");
        let p = self.n as RecordId;
        let row = ds.row(p);
        let k_max = self.k_max() as u32;
        for level in &mut self.durs {
            level.push(DURATION_UNBOUNDED);
        }
        let mut found = 0u32;
        let mut level = 0usize;
        // One backward pass, most recent first: collect the newcomer's
        // dominators (recording a duration whenever a level's k is hit)
        // and charge the newcomer against every active record it
        // dominates.
        for entry in self.active.iter_mut().rev() {
            if entry.later_dominators >= k_max {
                continue; // tombstoned
            }
            let other = ds.row(entry.id);
            if found < k_max && dominates(other, row) {
                found += 1;
                while level < self.ks.len() && self.ks[level] as u32 == found {
                    self.durs[level][p as usize] = p - entry.id - 1;
                    level += 1;
                }
            } else if dominates(row, other) {
                entry.later_dominators += 1;
                if entry.later_dominators == k_max {
                    self.evicted += 1;
                }
            }
        }
        self.active.push(ActiveRecord { id: p, later_dominators: 0 });
        self.n += 1;
        // Compact once tombstones dominate: O(live) work amortized O(1).
        if self.evicted * 2 > self.active.len() {
            self.active.retain(|e| e.later_dominators < k_max);
            self.evicted = 0;
        }
    }
}

/// Scans backwards from `p` for its k-th most recent dominator; returns the
/// corresponding duration, or `None` if fewer than `k` dominators exist.
fn kth_recent_dominator_duration(ds: &Dataset, p: RecordId, k: usize) -> Option<u32> {
    let row = ds.row(p);
    let mut found = 0usize;
    for j in (0..p).rev() {
        if dominates(ds.row(j), row) {
            found += 1;
            if found == k {
                return Some(p - j - 1);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_durations(ds: &Dataset, k: usize) -> Vec<u32> {
        // Reference: for each p, the largest τ with fewer than k dominators
        // in [p.t - τ, p.t], found by trying every τ.
        let n = ds.len();
        (0..n as RecordId)
            .map(|p| {
                let mut best: u32 = DURATION_UNBOUNDED;
                for tau in 0..n as u32 {
                    let lo = p.saturating_sub(tau);
                    let doms = (lo..p).filter(|&j| dominates(ds.row(j), ds.row(p))).count();
                    if doms >= k {
                        best = tau - 1;
                        break;
                    }
                }
                best
            })
            .collect()
    }

    #[test]
    fn skyband_contains_skyline() {
        let ds = Dataset::from_rows(2, [[1.0, 5.0], [5.0, 1.0], [3.0, 3.0], [2.0, 2.0]]);
        let ids: Vec<RecordId> = (0..4).collect();
        let sky1 = k_skyband(&ds, &ids, 1);
        let sky2 = k_skyband(&ds, &ids, 2);
        assert!(sky1.iter().all(|p| sky2.contains(p)));
        assert_eq!(sky1, vec![0, 1, 2]);
        assert_eq!(sky2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skyband_of_chain() {
        // Decreasing chain: each point dominated by all previous ones.
        let ds = Dataset::from_rows(2, [[4.0, 4.0], [3.0, 3.0], [2.0, 2.0], [1.0, 1.0]]);
        let ids: Vec<RecordId> = (0..4).collect();
        assert_eq!(k_skyband(&ds, &ids, 1), vec![0]);
        assert_eq!(k_skyband(&ds, &ids, 2), vec![0, 1]);
        assert_eq!(k_skyband(&ds, &ids, 3), vec![0, 1, 2]);
    }

    #[test]
    fn durations_on_known_sequence() {
        // t0 (5,5)   t1 (4,4)   t2 (6,6)   t3 (3,3)
        let ds = Dataset::from_rows(2, [[5.0, 5.0], [4.0, 4.0], [6.0, 6.0], [3.0, 3.0]]);
        let d1 = skyband_durations(&ds, 1);
        // t0: no dominators. t1: dominated by t0 (gap 0). t2: none.
        // t3: most recent dominator t2 -> τ = 0.
        assert_eq!(d1, vec![DURATION_UNBOUNDED, 0, DURATION_UNBOUNDED, 0]);
        let d2 = skyband_durations(&ds, 2);
        // t3's 2nd most recent dominator is t1 -> τ = 3 - 1 - 1 = 1.
        assert_eq!(d2, vec![DURATION_UNBOUNDED, DURATION_UNBOUNDED, DURATION_UNBOUNDED, 1]);
    }

    #[test]
    fn durations_match_brute_force_2d() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let n = rng.random_range(1..80);
            let rows: Vec<[f64; 2]> = (0..n)
                .map(|_| [rng.random_range(0..10) as f64, rng.random_range(0..10) as f64])
                .collect();
            let ds = Dataset::from_rows(2, rows);
            for k in [1usize, 2, 3, 5] {
                assert_eq!(skyband_durations(&ds, k), brute_durations(&ds, k), "k={k}");
            }
        }
    }

    #[test]
    fn durations_match_brute_force_3d() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..6 {
            let n = rng.random_range(1..60);
            let rows: Vec<[f64; 3]> = (0..n)
                .map(|_| {
                    [
                        rng.random_range(0..6) as f64,
                        rng.random_range(0..6) as f64,
                        rng.random_range(0..6) as f64,
                    ]
                })
                .collect();
            let ds = Dataset::from_rows(3, rows);
            for k in [1usize, 2, 4] {
                assert_eq!(skyband_durations(&ds, k), brute_durations(&ds, k), "k={k}");
            }
        }
    }

    #[test]
    fn multi_level_matches_single_level() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for d in [2usize, 3] {
            let n = 120;
            let rows: Vec<Vec<f64>> =
                (0..n).map(|_| (0..d).map(|_| rng.random_range(0..9) as f64).collect()).collect();
            let ds = Dataset::from_rows(d, rows);
            let ks = [1usize, 2, 4, 8];
            let multi = skyband_durations_multi(&ds, &ks);
            for (level, &k) in ks.iter().enumerate() {
                assert_eq!(multi[level], skyband_durations(&ds, k), "d={d} k={k}");
            }
        }
    }

    #[test]
    fn maintainer_matches_offline_build_under_appends() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        for d in [2usize, 3] {
            for k_max in [1usize, 3, 8] {
                let mut ds = Dataset::new(d);
                let mut m = SkybandMaintainer::new(k_max);
                assert_eq!(m.levels(), level_ks(k_max).as_slice());
                for step in 0..150usize {
                    let row: Vec<f64> = (0..d).map(|_| rng.random_range(0..7) as f64).collect();
                    ds.push(&row);
                    m.append(&ds);
                    if step % 29 == 11 {
                        let offline = skyband_durations_multi(&ds, m.levels());
                        for (level, durs) in offline.iter().enumerate() {
                            assert_eq!(
                                m.durations(level),
                                durs.as_slice(),
                                "d={d} k_max={k_max} step={step} level={level}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn maintainer_build_equals_replay() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(29);
        let rows: Vec<[f64; 2]> = (0..120)
            .map(|_| [rng.random_range(0..9) as f64, rng.random_range(0..9) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let built = SkybandMaintainer::build(&ds, 4);
        let mut grown = SkybandMaintainer::new(4);
        let mut prefix = Dataset::new(2);
        for i in 0..ds.len() {
            prefix.push(ds.row(i as RecordId));
            grown.append(&prefix);
        }
        assert_eq!(built.len(), grown.len());
        for level in 0..built.levels().len() {
            assert_eq!(built.durations(level), grown.durations(level));
        }
    }

    #[test]
    fn eviction_bounds_the_active_list_on_dominated_chains() {
        // Strictly increasing chain: every newcomer dominates all previous
        // records, so each record accrues later-dominators fast and the
        // active list must stay near k_max instead of growing linearly.
        let mut ds = Dataset::new(2);
        let mut m = SkybandMaintainer::new(2);
        for i in 0..500usize {
            ds.push(&[i as f64, i as f64]);
            m.append(&ds);
        }
        assert!(
            m.active_len() <= 8,
            "dominated records must be evicted, active={}",
            m.active_len()
        );
        // Every record's level-1 duration is still exact: its most recent
        // dominator is its immediate successor-free past neighbour... i.e.
        // the previous record dominates nothing *backwards*; here nobody
        // has past dominators, so all durations stay unbounded.
        assert!(m.durations(0).iter().all(|&d| d == DURATION_UNBOUNDED));
    }

    #[test]
    fn level_ks_rounds_up_to_powers_of_two() {
        assert_eq!(level_ks(1), vec![1]);
        assert_eq!(level_ks(2), vec![1, 2]);
        assert_eq!(level_ks(5), vec![1, 2, 4, 8]);
        assert_eq!(level_ks(8), vec![1, 2, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn multi_level_rejects_unsorted() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0]]);
        skyband_durations_multi(&ds, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0]]);
        skyband_durations(&ds, 0);
    }
}
