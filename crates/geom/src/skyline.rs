//! Skyline (maxima) computation.
//!
//! The segment-tree top-k index stores, per node, the skyline of the records
//! in the node's time interval: for any monotone scoring function, the
//! maximum score over the node is attained on the skyline, which is what
//! makes skylines exact score upper bounds (paper Appendix A).

use crate::dominance::dominates;
use durable_topk_temporal::{Dataset, RecordId};

/// Computes the skyline of the records `ids` (indices into `ds`).
///
/// Returns the ids of records not strictly dominated by any other record in
/// the set. Duplicated attribute vectors all survive (none dominates the
/// other), matching the strict-dominance semantics used throughout.
///
/// Complexity: `O(m log m)` for `d == 2` via a sort-and-sweep; `O(m · s)`
/// for general `d` via sort-by-sum filtering, where `s` is the skyline size.
pub fn skyline_indices(ds: &Dataset, ids: &[RecordId]) -> Vec<RecordId> {
    match ds.dim() {
        2 => skyline_2d(ds, ids),
        _ => skyline_general(ds, ids),
    }
}

/// Merges two skylines into the skyline of the union of their underlying
/// sets.
///
/// Valid because the skyline of a union is a subset of the union of the
/// skylines; used bottom-up when building (and appending to) the segment
/// tree.
pub fn skyline_merge(ds: &Dataset, a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut all = Vec::with_capacity(a.len() + b.len());
    all.extend_from_slice(a);
    all.extend_from_slice(b);
    skyline_indices(ds, &all)
}

fn skyline_2d(ds: &Dataset, ids: &[RecordId]) -> Vec<RecordId> {
    let mut sorted: Vec<RecordId> = ids.to_vec();
    // Sort by x descending; for equal x, by y descending so the sweep sees
    // the best y first and equal points are kept together.
    sorted.sort_unstable_by(|&p, &q| {
        let (px, py) = (ds.value(p, 0), ds.value(p, 1));
        let (qx, qy) = (ds.value(q, 0), ds.value(q, 1));
        qx.partial_cmp(&px)
            .expect("attribute values must not be NaN")
            .then(qy.partial_cmp(&py).expect("attribute values must not be NaN"))
    });
    let mut out: Vec<RecordId> = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    let mut i = 0;
    while i < sorted.len() {
        // Process a run of equal (x, y) points together: duplicates of a
        // skyline point are all skyline points.
        let x = ds.value(sorted[i], 0);
        let y = ds.value(sorted[i], 1);
        let mut j = i;
        while j < sorted.len() && ds.value(sorted[j], 0) == x && ds.value(sorted[j], 1) == y {
            j += 1;
        }
        if y > best_y {
            out.extend_from_slice(&sorted[i..j]);
            best_y = y;
        } else if y == best_y {
            // Same y as a previously accepted point with larger-or-equal x:
            // dominated unless x also equal, in which case that run already
            // handled it. Points with equal y but strictly smaller x are
            // dominated (larger x, equal y dominates).
        }
        i = j;
    }
    out
}

fn skyline_general(ds: &Dataset, ids: &[RecordId]) -> Vec<RecordId> {
    let mut sorted: Vec<RecordId> = ids.to_vec();
    // Sorting by coordinate sum descending guarantees no later point can
    // dominate an earlier one (dominance implies a strictly larger sum), so
    // one filtering pass against the accepted skyline suffices.
    sorted.sort_unstable_by(|&p, &q| {
        let sp: f64 = ds.row(p).iter().sum();
        let sq: f64 = ds.row(q).iter().sum();
        sq.partial_cmp(&sp).expect("attribute values must not be NaN")
    });
    let mut out: Vec<RecordId> = Vec::new();
    'cand: for &c in &sorted {
        let row = ds.row(c);
        for &s in &out {
            if dominates(ds.row(s), row) {
                continue 'cand;
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_skyline(ds: &Dataset, ids: &[RecordId]) -> Vec<RecordId> {
        let mut out: Vec<RecordId> = ids
            .iter()
            .copied()
            .filter(|&p| !ids.iter().any(|&q| q != p && dominates(ds.row(q), ds.row(p))))
            .collect();
        out.sort_unstable();
        out
    }

    fn all_ids(ds: &Dataset) -> Vec<RecordId> {
        (0..ds.len() as RecordId).collect()
    }

    #[test]
    fn skyline_2d_matches_brute_force() {
        let ds = Dataset::from_rows(
            2,
            [
                [1.0, 9.0],
                [2.0, 8.0],
                [3.0, 3.0],
                [2.0, 8.0], // duplicate survives
                [9.0, 1.0],
                [5.0, 5.0],
                [4.0, 5.0], // dominated by (5,5)
                [5.0, 4.0], // dominated by (5,5)
            ],
        );
        let ids = all_ids(&ds);
        let mut got = skyline_indices(&ds, &ids);
        got.sort_unstable();
        assert_eq!(got, brute_skyline(&ds, &ids));
        assert!(got.contains(&1) && got.contains(&3), "duplicates both kept");
    }

    #[test]
    fn skyline_general_matches_brute_force() {
        let ds = Dataset::from_rows(
            3,
            [
                [1.0, 1.0, 9.0],
                [9.0, 1.0, 1.0],
                [1.0, 9.0, 1.0],
                [5.0, 5.0, 5.0],
                [4.0, 4.0, 4.0],
                [5.0, 5.0, 4.0],
            ],
        );
        let ids = all_ids(&ds);
        let mut got = skyline_indices(&ds, &ids);
        got.sort_unstable();
        assert_eq!(got, brute_skyline(&ds, &ids));
    }

    #[test]
    fn skyline_of_chain_is_top_point() {
        let ds = Dataset::from_rows(2, [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]);
        assert_eq!(skyline_indices(&ds, &all_ids(&ds)), vec![2]);
    }

    #[test]
    fn skyline_of_anti_chain_is_everything() {
        let ds = Dataset::from_rows(2, [[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]]);
        let mut got = skyline_indices(&ds, &all_ids(&ds));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn merge_equals_skyline_of_union() {
        let ds = Dataset::from_rows(
            2,
            [[1.0, 5.0], [5.0, 1.0], [3.0, 3.0], [2.0, 6.0], [6.0, 0.5], [0.5, 0.5]],
        );
        let a = skyline_indices(&ds, &[0, 1, 2]);
        let b = skyline_indices(&ds, &[3, 4, 5]);
        let mut merged = skyline_merge(&ds, &a, &b);
        merged.sort_unstable();
        assert_eq!(merged, brute_skyline(&ds, &all_ids(&ds)));
    }

    #[test]
    fn randomized_skyline_agreement() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for d in [2usize, 3, 4] {
            for _ in 0..20 {
                let n = rng.random_range(1..60);
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..d).map(|_| (rng.random_range(0..8)) as f64).collect())
                    .collect();
                let ds = Dataset::from_rows(d, rows);
                let ids = all_ids(&ds);
                let mut got = skyline_indices(&ds, &ids);
                got.sort_unstable();
                assert_eq!(got, brute_skyline(&ds, &ids), "d={d}");
            }
        }
    }
}
