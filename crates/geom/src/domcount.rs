//! Offline past-dominator counting.
//!
//! For every record `p_i`, counts how many earlier records (`j < i`) strictly
//! dominate it. The durable k-skyband construction uses these counts to
//! short-circuit records that never accumulate `k` dominators (their skyband
//! duration is unbounded), which is what makes the S-Band index build
//! tractable on anti-correlated data where most records stay in the skyband
//! forever.
//!
//! * `d == 2`: CDQ divide-and-conquer on time with a Fenwick sweep on the
//!   y-rank — `O(n log² n)`.
//! * `d != 2`: per-record backward scan with per-pair early exit —
//!   `O(n²)` worst case (documented in DESIGN.md; used only at the reduced
//!   sizes the high-dimensional experiments run at).

use crate::dominance::dominates;
use durable_topk_temporal::Dataset;
use std::collections::HashMap;

/// A minimal Fenwick (binary indexed) tree over `u64` counts.
///
/// Exposed publicly because the blocking-interval mechanism in the index
/// crate builds on it.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a Fenwick tree over positions `0..len`.
    pub fn new(len: usize) -> Self {
        Self { tree: vec![0; len + 1] }
    }

    /// Number of addressable positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree addresses no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears all counts and re-sizes the tree to address `0..len`,
    /// reusing the existing allocation when the capacity suffices.
    pub fn reset(&mut self, len: usize) {
        self.tree.clear();
        self.tree.resize(len + 1, 0);
    }

    /// Adds `delta` at position `i` (0-based).
    #[inline]
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    #[inline]
    pub fn prefix(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let hi_sum = self.prefix(hi);
        if lo == 0 {
            hi_sum
        } else {
            hi_sum.wrapping_sub(self.prefix(lo - 1))
        }
    }
}

/// Counts, for each record, the number of strictly earlier records that
/// strictly dominate it.
pub fn past_dominator_counts(ds: &Dataset) -> Vec<u32> {
    match ds.dim() {
        2 => counts_2d(ds),
        _ => counts_scan(ds),
    }
}

fn counts_scan(ds: &Dataset) -> Vec<u32> {
    let n = ds.len();
    let mut counts = vec![0u32; n];
    for (i, count) in counts.iter_mut().enumerate().skip(1) {
        let row = ds.row(i as u32);
        let mut c = 0u32;
        for j in 0..i {
            if dominates(ds.row(j as u32), row) {
                c += 1;
            }
        }
        *count = c;
    }
    counts
}

fn counts_2d(ds: &Dataset) -> Vec<u32> {
    let n = ds.len();
    if n == 0 {
        return Vec::new();
    }
    // Weak-dominance counts via CDQ, then subtract exact duplicates to get
    // strict dominance (weak dominator that is not an identical point).
    let xs: Vec<f64> = (0..n).map(|i| ds.value(i as u32, 0)).collect();
    let ys: Vec<f64> = (0..n).map(|i| ds.value(i as u32, 1)).collect();

    // Global y-rank compression.
    let mut y_sorted: Vec<f64> = ys.clone();
    y_sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN attributes"));
    y_sorted.dedup();
    let y_rank = |y: f64| -> usize {
        y_sorted.partition_point(|&v| v < y) // rank of first value >= y
    };
    let ranks: Vec<usize> = ys.iter().map(|&y| y_rank(y)).collect();

    let mut weak = vec![0u64; n];
    let mut fenwick = Fenwick::new(y_sorted.len());
    // Iterative CDQ: process ranges [lo, hi) with explicit stack, counting
    // cross contributions left-half -> right-half at every merge level.
    let mut stack = vec![(0usize, n)];
    let mut order: Vec<(usize, usize, usize)> = Vec::new(); // (lo, mid, hi)
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo <= 1 {
            continue;
        }
        let mid = lo + (hi - lo) / 2;
        order.push((lo, mid, hi));
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
    let mut left_ids: Vec<u32> = Vec::new();
    let mut right_ids: Vec<u32> = Vec::new();
    for (lo, mid, hi) in order {
        left_ids.clear();
        left_ids.extend(lo as u32..mid as u32);
        right_ids.clear();
        right_ids.extend(mid as u32..hi as u32);
        // Sort both halves by x descending; sweep targets, inserting every
        // source with x_src >= x_tgt, then count inserted y_src >= y_tgt.
        let sort_desc = |ids: &mut Vec<u32>| {
            ids.sort_unstable_by(|&a, &b| {
                xs[b as usize].partial_cmp(&xs[a as usize]).expect("no NaN attributes")
            })
        };
        sort_desc(&mut left_ids);
        sort_desc(&mut right_ids);
        let mut li = 0;
        let total_ranks = y_sorted.len();
        let mut inserted = 0u64;
        for &tgt in right_ids.iter() {
            while li < left_ids.len() && xs[left_ids[li] as usize] >= xs[tgt as usize] {
                fenwick.add(ranks[left_ids[li] as usize], 1);
                inserted += 1;
                li += 1;
            }
            let r = ranks[tgt as usize];
            let below = if r == 0 { 0 } else { fenwick.prefix(r - 1) };
            weak[tgt as usize] += inserted - below;
        }
        // Roll back this merge's insertions.
        for &src in &left_ids[..li] {
            fenwick.add(ranks[src as usize], -1);
        }
        let _ = total_ranks;
    }

    // Subtract exact duplicates (weakly dominate but not strictly).
    let mut dup: HashMap<(u64, u64), u32> = HashMap::new();
    let mut counts = vec![0u32; n];
    for i in 0..n {
        let key = (xs[i].to_bits(), ys[i].to_bits());
        let eq_before = dup.get(&key).copied().unwrap_or(0);
        counts[i] = (weak[i] - eq_before as u64) as u32;
        *dup.entry(key).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_prefix_and_range() {
        let mut f = Fenwick::new(10);
        f.add(0, 3);
        f.add(4, 2);
        f.add(9, 1);
        assert_eq!(f.prefix(0), 3);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(4), 5);
        assert_eq!(f.prefix(9), 6);
        assert_eq!(f.range(1, 4), 2);
        assert_eq!(f.range(5, 9), 1);
        assert_eq!(f.range(7, 3), 0);
        f.add(4, -2);
        assert_eq!(f.prefix(9), 4);
    }

    #[test]
    fn counts_on_known_sequence() {
        // times:    0         1         2         3
        let ds = Dataset::from_rows(2, [[5.0, 5.0], [3.0, 3.0], [4.0, 6.0], [1.0, 1.0]]);
        // record1 dominated by record0; record2 by nobody; record3 by all.
        assert_eq!(past_dominator_counts(&ds), vec![0, 1, 0, 3]);
    }

    #[test]
    fn duplicates_do_not_dominate() {
        let ds = Dataset::from_rows(2, [[2.0, 2.0], [2.0, 2.0], [2.0, 1.0]]);
        assert_eq!(past_dominator_counts(&ds), vec![0, 0, 2]);
    }

    #[test]
    fn cdq_matches_scan_randomized() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..15 {
            let n = rng.random_range(1..200);
            let rows: Vec<[f64; 2]> = (0..n)
                .map(|_| [rng.random_range(0..12) as f64, rng.random_range(0..12) as f64])
                .collect();
            let ds = Dataset::from_rows(2, rows);
            let fast = counts_2d(&ds);
            let slow = counts_scan(&ds);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn high_dim_scan_counts() {
        let ds = Dataset::from_rows(
            3,
            [[3.0, 3.0, 3.0], [2.0, 2.0, 2.0], [3.0, 2.0, 4.0], [1.0, 1.0, 1.0]],
        );
        assert_eq!(past_dominator_counts(&ds), vec![0, 1, 0, 3]);
    }
}
