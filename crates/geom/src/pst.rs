//! Static priority search tree for 3-sided range reporting.
//!
//! The durable k-skyband index (paper Section IV-B, Fig. 4) maps each record
//! `p` to the point `(p.t, τ_p)` in the "arrival time – duration" plane and
//! answers the 3-sided query `I × [τ, +∞)` to retrieve the candidate set
//! `C`. This module provides the classical McCreight priority search tree:
//! a binary search tree on `x` that is simultaneously a max-heap on `y`,
//! built in `O(n log n)` and queried in `O(log n + |out|)`.

/// One indexed point: `x` (arrival time), `y` (duration), and a payload id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PstPoint {
    /// Key coordinate (arrival time).
    pub x: u32,
    /// Heap coordinate (duration).
    pub y: u32,
    /// Caller payload (record id).
    pub id: u32,
}

#[derive(Debug, Clone)]
struct Node {
    point: PstPoint,
    left: i32,
    right: i32,
    min_x: u32,
    max_x: u32,
}

/// A static priority search tree over points `(x, y)`.
#[derive(Debug, Clone, Default)]
pub struct PrioritySearchTree {
    nodes: Vec<Node>,
    root: i32,
}

impl PrioritySearchTree {
    /// Builds the tree from a set of points.
    pub fn build(mut points: Vec<PstPoint>) -> Self {
        points.sort_unstable_by_key(|p| (p.x, p.y, p.id));
        let mut tree = Self { nodes: Vec::with_capacity(points.len()), root: -1 };
        tree.root = tree.build_rec(points);
        tree
    }

    fn build_rec(&mut self, mut pts: Vec<PstPoint>) -> i32 {
        if pts.is_empty() {
            return -1;
        }
        let min_x = pts[0].x;
        let max_x = pts[pts.len() - 1].x;
        // The subtree root is the max-y point; remaining points split at the
        // x-median. `Vec::remove` is linear, but summed over a level it is
        // O(n), giving O(n log n) total.
        let best =
            pts.iter().enumerate().max_by_key(|(_, p)| p.y).map(|(i, _)| i).expect("non-empty");
        let point = pts.remove(best);
        let idx = self.nodes.len() as i32;
        self.nodes.push(Node { point, left: -1, right: -1, min_x, max_x });
        if !pts.is_empty() {
            let mid = pts.len() / 2;
            let right_pts = pts.split_off(mid);
            let left = self.build_rec(pts);
            let right = self.build_rec(right_pts);
            self.nodes[idx as usize].left = left;
            self.nodes[idx as usize].right = right;
        }
        idx
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reports every point with `x ∈ [x1, x2]` and `y >= y_min`.
    ///
    /// Output order is unspecified.
    pub fn query(&self, x1: u32, x2: u32, y_min: u32) -> Vec<PstPoint> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y_min, &mut out);
        out
    }

    /// Like [`PrioritySearchTree::query`], reusing an output buffer.
    pub fn query_into(&self, x1: u32, x2: u32, y_min: u32, out: &mut Vec<PstPoint>) {
        if self.root >= 0 && x1 <= x2 {
            self.query_rec(self.root, x1, x2, y_min, out);
        }
    }

    fn query_rec(&self, idx: i32, x1: u32, x2: u32, y_min: u32, out: &mut Vec<PstPoint>) {
        let node = &self.nodes[idx as usize];
        // Heap property: every descendant has y <= node.y.
        if node.point.y < y_min {
            return;
        }
        // Subtree x-extent pruning.
        if node.max_x < x1 || node.min_x > x2 {
            return;
        }
        if x1 <= node.point.x && node.point.x <= x2 {
            out.push(node.point);
        }
        if node.left >= 0 {
            self.query_rec(node.left, x1, x2, y_min, out);
        }
        if node.right >= 0 {
            self.query_rec(node.right, x1, x2, y_min, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(points: &[PstPoint], x1: u32, x2: u32, y_min: u32) -> Vec<u32> {
        let mut ids: Vec<u32> = points
            .iter()
            .filter(|p| x1 <= p.x && p.x <= x2 && p.y >= y_min)
            .map(|p| p.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let t = PrioritySearchTree::build(Vec::new());
        assert!(t.is_empty());
        assert!(t.query(0, 100, 0).is_empty());
    }

    #[test]
    fn three_sided_query_small() {
        let pts = vec![
            PstPoint { x: 1, y: 5, id: 0 },
            PstPoint { x: 3, y: 2, id: 1 },
            PstPoint { x: 5, y: 9, id: 2 },
            PstPoint { x: 7, y: 1, id: 3 },
            PstPoint { x: 9, y: 6, id: 4 },
        ];
        let t = PrioritySearchTree::build(pts.clone());
        assert_eq!(t.len(), 5);
        let mut got: Vec<u32> = t.query(2, 9, 3).iter().map(|p| p.id).collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 4]);
        assert_eq!(brute(&pts, 2, 9, 3), got);
    }

    #[test]
    fn inverted_x_range_is_empty() {
        let pts = vec![PstPoint { x: 1, y: 1, id: 0 }];
        let t = PrioritySearchTree::build(pts);
        assert!(t.query(5, 2, 0).is_empty());
    }

    #[test]
    fn randomized_against_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let n = rng.random_range(1..300);
            let pts: Vec<PstPoint> = (0..n)
                .map(|i| PstPoint {
                    x: rng.random_range(0..100),
                    y: rng.random_range(0..50),
                    id: i,
                })
                .collect();
            let t = PrioritySearchTree::build(pts.clone());
            for _ in 0..20 {
                let a = rng.random_range(0..100);
                let b = rng.random_range(0..100);
                let (x1, x2) = (a.min(b), a.max(b));
                let y_min = rng.random_range(0..60);
                let mut got: Vec<u32> = t.query(x1, x2, y_min).iter().map(|p| p.id).collect();
                got.sort_unstable();
                assert_eq!(got, brute(&pts, x1, x2, y_min));
            }
        }
    }

    #[test]
    fn duplicate_x_values_supported() {
        let pts = vec![
            PstPoint { x: 4, y: 1, id: 0 },
            PstPoint { x: 4, y: 7, id: 1 },
            PstPoint { x: 4, y: 3, id: 2 },
        ];
        let t = PrioritySearchTree::build(pts.clone());
        let mut got: Vec<u32> = t.query(4, 4, 2).iter().map(|p| p.id).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
