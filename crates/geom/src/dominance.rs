//! Pareto dominance tests.

/// Whether `a` dominates `b`: `a` is no worse than `b` in every dimension and
/// strictly better in at least one (the paper's footnote-4 definition, with
/// "better" meaning larger).
///
/// Equal points do not dominate each other. The loop exits on the first
/// dimension where `a` is worse, which makes random pairs cheap to reject —
/// the property the high-dimensional skyband build relies on.
///
/// # Panics
/// Debug-asserts equal arity.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

/// Whether `a` weakly dominates `b`: no worse in every dimension (equal
/// points weakly dominate each other).
#[inline]
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x >= y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_requires_one_strict_dim() {
        assert!(dominates(&[2.0, 3.0], &[2.0, 2.0]));
        assert!(dominates(&[3.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[3.0, 1.0], &[2.0, 2.0]));
    }

    #[test]
    fn weak_dominance_allows_equality() {
        assert!(weakly_dominates(&[2.0, 2.0], &[2.0, 2.0]));
        assert!(weakly_dominates(&[2.5, 2.0], &[2.0, 2.0]));
        assert!(!weakly_dominates(&[2.5, 1.9], &[2.0, 2.0]));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = [1.0, 5.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn dominance_is_transitive_on_samples() {
        let pts = [[3.0, 3.0], [2.0, 2.5], [1.0, 2.0]];
        assert!(dominates(&pts[0], &pts[1]));
        assert!(dominates(&pts[1], &pts[2]));
        assert!(dominates(&pts[0], &pts[2]));
    }
}
