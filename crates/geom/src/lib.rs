//! Computational-geometry substrates for durable top-k queries.
//!
//! The paper's S-Band algorithm (Section IV-B) and its analysis (Section V-B)
//! rest on classical multidimensional maxima machinery. This crate implements
//! those substrates from scratch:
//!
//! * [`dominance`] — Pareto-dominance tests with early exit.
//! * [`skyline`] — skyline (maxima) computation: a sort-sweep algorithm for
//!   d = 2 and a sort-filter algorithm for general d, plus skyline merging
//!   used by the segment-tree index.
//! * [`skyband`] — k-skyband computation and the per-record *durable
//!   k-skyband duration* `τ_p` (the longest look-back window in which a
//!   record stays in the k-skyband), the quantity indexed by S-Band.
//! * [`domcount`] — offline past-dominator counting: an `O(n log² n)`
//!   CDQ divide-and-conquer with a Fenwick sweep for d = 2, and a blocked
//!   early-exit scan for general d.
//! * [`pst`] — a static priority search tree answering the 3-sided range
//!   queries `I × [τ, +∞)` of the durable k-skyband index (paper Fig. 4).

pub mod domcount;
pub mod dominance;
pub mod pst;
pub mod skyband;
pub mod skyline;

pub use domcount::{past_dominator_counts, Fenwick};
pub use dominance::{dominates, weakly_dominates};
pub use pst::{PrioritySearchTree, PstPoint};
pub use skyband::{
    k_skyband, level_ks, skyband_durations, skyband_durations_multi, SkybandMaintainer,
    DURATION_UNBOUNDED,
};
pub use skyline::{skyline_indices, skyline_merge};
