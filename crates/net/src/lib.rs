//! Scatter-gather multi-node serving for durable top-k queries.
//!
//! This crate lifts the workspace's single-process serving stack onto a
//! cluster of engines, each hosting a contiguous slice of one global
//! timeline:
//!
//! - [`wire`] — the versioned, dependency-free binary codec every
//!   connection speaks (length-prefixed frames, little-endian fields,
//!   typed decode errors, never panics on malformed input).
//! - [`Node`] — one cluster member: query in local coordinates, report
//!   serving stats, describe the owned range. [`LocalNode`] wraps an
//!   in-process [`ServeEngine`](durable_topk::ServeEngine);
//!   [`RemoteNode`] reaches a peer over TCP with connect/read timeouts
//!   and bounded transport retries.
//! - [`NodeServer`] — hosts one engine behind a `std::net::TcpListener`
//!   (no HTTP, no async runtime) so remote peers can query it.
//! - [`Coordinator`] — routes `I ∩ owned-range` pieces to their nodes,
//!   scatters on the shared worker pool, and merges per-node answers into
//!   the exact single-engine result (see the exactness note on
//!   [`Coordinator`]).
//!
//! Every lock the layer takes carries a
//! [`LockClass`](durable_topk::check::LockClass) rank above the engine
//! stack's, and no lock is ever held across a socket operation that the
//! engine side could be waiting on.

pub mod coordinator;
pub mod error;
pub mod node;
pub mod remote;
pub mod server;
pub mod wire;

pub use coordinator::{Coordinator, CoordinatorStats, NodePerf};
pub use error::NetError;
pub use node::{LocalNode, Node, NodeAnswer, NodeIdentity, NodeRanges};
pub use remote::{RemoteNode, RemoteOptions};
pub use server::{NodeServer, NodeServerOptions};
pub use wire::{
    decode_message, encode_message, read_message, write_message, Message, WireError, WIRE_VERSION,
};

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use durable_topk::{
        Algorithm, DurableQuery, FallbackReason, QueryError, QueryStats, ScorerSpec, ServeError,
        ServeRequest, ServeResponse, ServeStats, Window,
    };
    use proptest::prelude::*;

    use crate::node::NodeRanges;
    use crate::wire::{
        decode_message, encode_message, Message, WireError, HEADER_LEN, WIRE_VERSION,
    };

    fn roundtrip(msg: &Message) -> Message {
        let bytes = encode_message(msg).expect("encodable message");
        let (decoded, used) = decode_message(&bytes).expect("decodable frame");
        assert_eq!(used, bytes.len(), "frame self-describes its length");
        decoded
    }

    fn sample_request(alg: Algorithm, scorer: ScorerSpec) -> ServeRequest {
        ServeRequest {
            alg,
            query: DurableQuery { k: 7, tau: 19, interval: Window::new(3, 411) },
            scorer,
        }
    }

    #[test]
    fn request_roundtrips_every_algorithm_and_scorer() {
        let scorers = [
            ScorerSpec::Uniform,
            ScorerSpec::Linear(vec![0.25, -1.5, f64::NAN]),
            ScorerSpec::Cosine(vec![1.0, 0.0]),
        ];
        for alg in Algorithm::ALL {
            for scorer in &scorers {
                let req = sample_request(alg, scorer.clone());
                let Message::Query(out) = roundtrip(&Message::Query(req.clone())) else {
                    panic!("kind preserved");
                };
                assert_eq!(out.alg, req.alg);
                assert_eq!(out.query, req.query);
                match (&out.scorer, &req.scorer) {
                    (ScorerSpec::Uniform, ScorerSpec::Uniform) => {}
                    (ScorerSpec::Linear(a), ScorerSpec::Linear(b))
                    | (ScorerSpec::Cosine(a), ScorerSpec::Cosine(b)) => {
                        // NaN-safe bit-exact comparison.
                        let a: Vec<u64> = a.iter().map(|w| w.to_bits()).collect();
                        let b: Vec<u64> = b.iter().map(|w| w.to_bits()).collect();
                        assert_eq!(a, b);
                    }
                    _ => panic!("scorer variant preserved"),
                }
            }
        }
    }

    #[test]
    fn custom_scorer_is_rejected_at_encode() {
        use durable_topk::LinearScorer;
        let req = sample_request(
            Algorithm::SHop,
            ScorerSpec::Custom(std::sync::Arc::new(LinearScorer::uniform(2))),
        );
        match encode_message(&Message::Query(req)) {
            Err(WireError::OpaqueScorer) => {}
            other => panic!("expected OpaqueScorer, got {other:?}"),
        }
    }

    #[test]
    fn response_and_errors_roundtrip() {
        let resp = ServeResponse {
            records: vec![0, 5, 17, 4096],
            stats: QueryStats {
                durability_checks: 11,
                refill_queries: 3,
                candidates: 400,
                blocked_skips: 2,
                cold_page_hits: 1,
                cache_hits: 9,
                cache_misses: 4,
                fallback: Some(FallbackReason::SkybandBoundExceeded),
            },
            queued: Duration::from_micros(15),
            service: Duration::from_millis(3),
        };
        let Message::QueryOk(out) = roundtrip(&Message::QueryOk(resp.clone())) else {
            panic!("kind preserved");
        };
        assert_eq!(out, resp);

        let errors = [
            ServeError::QueueFull,
            ServeError::ShuttingDown,
            ServeError::Query(QueryError::ZeroK),
            ServeError::Query(QueryError::IntervalOutOfRange { start: 9, last: 4 }),
            ServeError::Query(QueryError::TauExceedsOverlap { tau: 99, max_tau: 64 }),
            ServeError::Query(QueryError::Arity { expected: 4, got: 2 }),
            ServeError::Panicked("boom — unicode: τ".to_string()),
        ];
        for err in errors {
            let Message::QueryErr(out) = roundtrip(&Message::QueryErr(err.clone())) else {
                panic!("kind preserved");
            };
            assert_eq!(out, err);
        }
    }

    #[test]
    fn stats_and_ranges_roundtrip() {
        let stats = ServeStats {
            enqueued: 100,
            completed: 90,
            rejected: 4,
            failed: 6,
            depth: 3,
            max_depth: 17,
            total_queued: Duration::from_millis(120),
            total_service: Duration::from_secs(2),
            cold_page_hits: 8,
            subscriptions: 2,
            refreshes: 40,
            fast_path_skips: 33,
            full_recomputes: 5,
            max_refresh_inflight: 2,
            cache_hits: 12,
            cache_misses: 7,
            cache_evictions: 1,
            cache_bytes: 65_536,
        };
        let Message::Stats(out) = roundtrip(&Message::Stats(stats)) else {
            panic!("kind preserved");
        };
        assert_eq!(out, stats);

        let ranges = NodeRanges {
            ext_lo: 936,
            lo: 1000,
            hi: 1999,
            max_tau: 64,
            dim: 2,
            shards: vec![(936, 1499), (1500, 1999)],
        };
        let Message::Ranges(out) = roundtrip(&Message::Ranges(ranges.clone())) else {
            panic!("kind preserved");
        };
        assert_eq!(out, ranges);

        for msg in [Message::StatsRequest, Message::RangesRequest] {
            let out = roundtrip(&msg);
            assert_eq!(out.kind_name(), msg.kind_name());
        }
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let req = sample_request(Algorithm::SBand, ScorerSpec::Linear(vec![0.5, 0.5]));
        let frame = encode_message(&Message::Query(req)).expect("encodable");
        for len in 0..frame.len() {
            match decode_message(&frame[..len]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {len} bytes decoded as a full frame"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = encode_message(&Message::StatsRequest).expect("encodable");
        frame[4] = (WIRE_VERSION as u8).wrapping_add(1);
        match decode_message(&frame) {
            Err(WireError::UnsupportedVersion { got }) => {
                assert_eq!(got, WIRE_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_unknown_kind_and_trailing_bytes_are_rejected() {
        let mut frame = encode_message(&Message::RangesRequest).expect("encodable");
        frame[0] = b'X';
        assert!(matches!(decode_message(&frame), Err(WireError::BadMagic)));

        let mut frame = encode_message(&Message::RangesRequest).expect("encodable");
        frame[6] = 250;
        assert!(matches!(decode_message(&frame), Err(WireError::UnknownKind(250))));

        // Declare one more payload byte than the message needs.
        let mut frame = encode_message(&Message::StatsRequest).expect("encodable");
        frame[8] = 1;
        frame.push(0);
        assert!(matches!(decode_message(&frame), Err(WireError::TrailingBytes)));
    }

    #[test]
    fn inverted_window_is_rejected() {
        let req = sample_request(Algorithm::TBase, ScorerSpec::Uniform);
        let mut frame = encode_message(&Message::Query(req)).expect("encodable");
        // Payload layout: alg u8, k u64, tau u32, start u32, end u32.
        // Overwrite `end` (offset 12 + 1 + 8 + 4 + 4) with start − 1.
        let end_at = HEADER_LEN + 1 + 8 + 4 + 4;
        frame[end_at..end_at + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(decode_message(&frame), Err(WireError::InvalidField(_))));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate_or_panic() {
        // A scorer length prefix far beyond the actual payload.
        let req = sample_request(Algorithm::SHop, ScorerSpec::Linear(vec![1.0]));
        let mut frame = encode_message(&Message::Query(req)).expect("encodable");
        let scorer_len_at = HEADER_LEN + 1 + 8 + 4 + 4 + 4 + 1;
        frame[scorer_len_at..scorer_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_message(&frame).is_err());

        // A frame header declaring more than MAX_PAYLOAD.
        let mut frame = encode_message(&Message::StatsRequest).expect("encodable");
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_message(&frame), Err(WireError::LengthOverflow(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn random_requests_roundtrip(
            alg_tag in 0usize..6,
            k in 1usize..10_000,
            tau in 1u32..100_000,
            start in 0u32..1_000_000,
            span in 0u32..1_000_000,
            scorer_tag in 0usize..3,
            weights in prop::collection::vec((-2_000_000i64..2_000_000).prop_map(|m| m as f64 / 1_000.0), 0..6),
        ) {
            let scorer = match scorer_tag {
                0 => ScorerSpec::Uniform,
                1 => ScorerSpec::Linear(weights.clone()),
                _ => ScorerSpec::Cosine(weights.clone()),
            };
            let req = ServeRequest {
                alg: Algorithm::ALL[alg_tag],
                query: DurableQuery {
                    k,
                    tau,
                    interval: Window::new(start, start.saturating_add(span)),
                },
                scorer,
            };
            let bytes = encode_message(&Message::Query(req.clone())).expect("encodable");
            let (decoded, used) = decode_message(&bytes).expect("decodable");
            prop_assert_eq!(used, bytes.len());
            let Message::Query(out) = decoded else { panic!("kind preserved") };
            prop_assert_eq!(out.alg, req.alg);
            prop_assert_eq!(out.query, req.query);
            let out_bits: Vec<u64> = match &out.scorer {
                ScorerSpec::Uniform => Vec::new(),
                ScorerSpec::Linear(w) | ScorerSpec::Cosine(w) => {
                    w.iter().map(|x| x.to_bits()).collect()
                }
                ScorerSpec::Custom(_) => panic!("custom cannot decode"),
            };
            let want_bits: Vec<u64> = if scorer_tag == 0 {
                Vec::new()
            } else {
                weights.iter().map(|x| x.to_bits()).collect()
            };
            prop_assert_eq!(out_bits, want_bits);
        }

        #[test]
        fn random_byte_soup_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
            // Any outcome is fine; the decoder just must not panic.
            let _ = decode_message(&bytes);
        }

        #[test]
        fn corrupted_real_frames_never_panic(
            flip_at in 0usize..64,
            flip_to in 0u8..=255,
            cut in 0usize..64,
        ) {
            let req = sample_request(Algorithm::SHopTop1, ScorerSpec::Cosine(vec![0.5, 0.5]));
            let mut frame = encode_message(&Message::Query(req)).expect("encodable");
            let at = flip_at % frame.len();
            frame[at] = flip_to;
            let keep = frame.len().saturating_sub(cut % frame.len());
            let _ = decode_message(&frame[..keep]);
        }
    }
}
