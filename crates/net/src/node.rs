//! The [`Node`] abstraction: one engine's worth of the global timeline,
//! queryable in its own local coordinates, plus the in-process
//! [`LocalNode`] implementation.
//!
//! # Coordinates
//!
//! A node hosts a contiguous *owned* slice `[lo, hi]` of the global
//! timeline. Its engine's dataset additionally starts `max_tau` records
//! early (at `ext_lo = lo − max_tau`, clamped at 0) so every τ-durability
//! window that ends inside the owned slice is fully covered — the same
//! left-context overlap [`ShardedEngine`] gives each sealed shard, lifted
//! one level up. Record `g` of the global timeline is record `g − ext_lo`
//! of the node's engine; [`Node::query`] takes and returns *node-local*
//! ids, and the coordinator does the translation in both directions.

use std::time::{Duration, Instant};

use durable_topk::{
    execute_request, QueryStats, RecordId, ServeEngine, ServeError, ServeRequest, ServeStats,
    ShardedEngine, Time,
};

use crate::error::NetError;

/// Where a node's engine sits on the global timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeIdentity {
    /// Global id of the engine's local record 0 (`ext_lo`): owned start
    /// minus the left-context overlap.
    pub base: Time,
    /// First globally-owned record; records in `[base, owned_lo)` are
    /// context only and are answered by the preceding node.
    pub owned_lo: Time,
}

/// A node's self-description: the routing-table row the coordinator
/// scatters by ([`Node::shard_ranges`], wire kind
/// [`Ranges`](crate::wire::Message::Ranges)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRanges {
    /// Global id of the engine's local record 0 (owned start minus left
    /// context).
    pub ext_lo: Time,
    /// First globally-owned record.
    pub lo: Time,
    /// Last record currently hosted (inclusive); grows as a live node
    /// ingests.
    pub hi: Time,
    /// The engine's exactness bound: queries with `τ` beyond it are
    /// rejected, and `lo − ext_lo` context records back it up.
    pub max_tau: Time,
    /// Attribute count of the node's dataset (must agree across the
    /// cluster).
    pub dim: usize,
    /// The engine's internal shard layout in *global* coordinates
    /// (diagnostics; routing only needs `[lo, hi]`).
    pub shards: Vec<(Time, Time)>,
}

/// A node's answer to one (node-local) query.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnswer {
    /// τ-durable records in increasing arrival order, *node-local* ids.
    pub records: Vec<RecordId>,
    /// Execution instrumentation.
    pub stats: QueryStats,
    /// Wall-clock execution time on the node.
    pub service: Duration,
}

/// One member of a scatter-gather cluster: a queryable host of a
/// contiguous timeline slice.
///
/// Implementations must be shareable across the coordinator's fan-out
/// threads (`Send + Sync`). The two shipped implementations are
/// [`LocalNode`] (in-process engine) and
/// [`RemoteNode`](crate::RemoteNode) (TCP peer speaking the
/// [`wire`](crate::wire) codec).
pub trait Node: Send + Sync {
    /// Executes one query in the node's local coordinates.
    fn query(&self, req: &ServeRequest) -> Result<NodeAnswer, NetError>;

    /// The node's serving counters.
    fn stats(&self) -> Result<ServeStats, NetError>;

    /// The node's current ownership descriptor (re-fetch to observe a live
    /// node's growth).
    fn shard_ranges(&self) -> Result<NodeRanges, NetError>;

    /// Transport-level retries performed so far (0 for in-process nodes).
    fn net_retries(&self) -> u64 {
        0
    }

    /// A short human-readable name for stats lines (an address, a tag).
    fn label(&self) -> String;
}

/// Builds a [`NodeRanges`] descriptor for an engine hosted at `identity`.
///
/// Shared by [`LocalNode`] and the TCP server so the two can never
/// disagree about what a descriptor means.
pub(crate) fn describe(engine: &ShardedEngine, identity: NodeIdentity) -> NodeRanges {
    let base = identity.base;
    let hi = base + (engine.len().saturating_sub(1)) as Time;
    NodeRanges {
        ext_lo: base,
        lo: identity.owned_lo,
        hi,
        max_tau: engine.max_tau(),
        dim: engine.dim(),
        shards: engine.shard_ranges().into_iter().map(|(lo, hi)| (lo + base, hi + base)).collect(),
    }
}

/// An in-process cluster member wrapping a [`ServeEngine`].
///
/// Queries execute directly on the calling thread via
/// [`execute_request`] under the engine's read lock — they do *not* go
/// through the serve queue. The coordinator fans out on the shared
/// [`WorkerPool`](durable_topk::WorkerPool), so parking a fan-out job
/// behind a queue served by that same pool could deadlock on a
/// single-worker host; direct execution keeps the fan-out self-contained.
/// The wrapped queue (and its subscriptions) remains fully usable for
/// other clients of the same engine.
pub struct LocalNode {
    serve: ServeEngine,
    identity: NodeIdentity,
    label: String,
}

impl LocalNode {
    /// Wraps a serving engine hosted at `identity` on the global timeline.
    pub fn new(serve: ServeEngine, identity: NodeIdentity) -> Self {
        let label = format!("local@{}", identity.owned_lo);
        LocalNode { serve, identity, label }
    }

    /// The wrapped serving engine (for appends, subscriptions, shutdown).
    pub fn serve(&self) -> &ServeEngine {
        &self.serve
    }

    /// The node's placement on the global timeline.
    pub fn identity(&self) -> NodeIdentity {
        self.identity
    }
}

impl Node for LocalNode {
    fn query(&self, req: &ServeRequest) -> Result<NodeAnswer, NetError> {
        let start = Instant::now();
        let engine = self.serve.engine();
        match execute_request(&engine, req) {
            Ok((records, stats)) => Ok(NodeAnswer { records, stats, service: start.elapsed() }),
            Err(e) => Err(NetError::Serve(ServeError::Query(e))),
        }
    }

    fn stats(&self) -> Result<ServeStats, NetError> {
        Ok(self.serve.stats())
    }

    fn shard_ranges(&self) -> Result<NodeRanges, NetError> {
        Ok(describe(&self.serve.engine(), self.identity))
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}
