//! The versioned binary wire codec.
//!
//! Every frame on a node connection is `[header][payload]`:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"DTKN"` |
//! | 4      | 2    | wire version, little-endian u16 ([`WIRE_VERSION`]) |
//! | 6      | 1    | frame kind (one byte per [`Message`] variant) |
//! | 7      | 1    | reserved, must be written as `0` (ignored on decode) |
//! | 8      | 4    | payload length, little-endian u32 |
//! | 12     | n    | payload, layout fixed by the frame kind |
//!
//! All multi-byte integers are little-endian; `f64` weights travel as their
//! IEEE-754 bit patterns ([`f64::to_bits`]) so round-trips are bit-exact.
//! Decoding never panics: malformed input — truncated frames, bad magic,
//! unknown tags, inverted windows — surfaces as a typed [`WireError`].
//!
//! # Version policy
//!
//! There is exactly one version constant, [`WIRE_VERSION`], and no
//! negotiation: a decoder rejects any frame whose version field differs
//! from its own with [`WireError::UnsupportedVersion`]. Any change to a
//! payload layout — adding a field, reordering, changing a width — must
//! bump [`WIRE_VERSION`]. Mixed-version clusters are unsupported by
//! design; redeploy all nodes together.

use std::io::{Read, Write};
use std::time::Duration;

use durable_topk::{
    Algorithm, DurableQuery, FallbackReason, QueryError, QueryStats, ScorerSpec, ServeError,
    ServeRequest, ServeResponse, ServeStats, Window,
};

use crate::node::NodeRanges;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"DTKN";

/// The protocol version this build speaks (see the module docs for the
/// bump policy). Decoders reject every other value.
pub const WIRE_VERSION: u16 = 1;

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a payload's declared length; larger declarations are
/// rejected before any allocation so a corrupt length prefix cannot OOM
/// the receiver.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// One frame on a node connection: the request/response vocabulary of the
/// [`Node`](crate::Node) RPC surface.
#[derive(Debug, Clone)]
pub enum Message {
    /// A durable top-k query in the *receiving node's local coordinates*.
    Query(ServeRequest),
    /// Successful answer to a [`Message::Query`] (records are node-local).
    QueryOk(ServeResponse),
    /// The node could not execute the query.
    QueryErr(ServeError),
    /// Ask the node for its serving counters.
    StatsRequest,
    /// Answer to [`Message::StatsRequest`].
    Stats(ServeStats),
    /// Ask the node for its ownership descriptor.
    RangesRequest,
    /// Answer to [`Message::RangesRequest`].
    Ranges(NodeRanges),
}

impl Message {
    /// The human-readable frame-kind name (error messages, protocol
    /// mismatch reports).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Query(_) => "query",
            Message::QueryOk(_) => "query-ok",
            Message::QueryErr(_) => "query-err",
            Message::StatsRequest => "stats-request",
            Message::Stats(_) => "stats",
            Message::RangesRequest => "ranges-request",
            Message::Ranges(_) => "ranges",
        }
    }
}

/// Why encoding or decoding a frame failed. Decoders return these instead
/// of panicking, whatever the input bytes.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ends before the frame (or a field inside it) does.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version field the frame carried.
        got: u16,
    },
    /// The frame-kind byte maps to no [`Message`] variant.
    UnknownKind(u8),
    /// An enum tag inside a payload maps to no variant.
    UnknownTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A declared length exceeds [`MAX_PAYLOAD`] or the platform's
    /// addressable size.
    LengthOverflow(u64),
    /// A payload field holds a structurally impossible value (for example
    /// an inverted query window).
    InvalidField(&'static str),
    /// The payload is longer than its content (trailing bytes after the
    /// last field).
    TrailingBytes,
    /// A [`ScorerSpec::Custom`] trait object cannot be serialized; route
    /// opaque scorers to an in-process engine instead.
    OpaqueScorer,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// The underlying socket failed mid-frame.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (this build speaks {WIRE_VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::LengthOverflow(n) => write!(f, "declared length {n} overflows the cap"),
            WireError::InvalidField(what) => write!(f, "invalid {what} field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
            WireError::OpaqueScorer => {
                write!(f, "custom scorers are opaque and cannot cross the wire")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian primitives (crates/store/src/codec.rs idiom, writer side
// added since frames are built incrementally).

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_duration(out: &mut Vec<u8>, d: Duration) {
    push_u64(out, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

/// Bounds-checked cursor over a payload slice; every accessor returns
/// [`WireError::Truncated`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn duration(&mut self) -> Result<Duration, WireError> {
        Ok(Duration::from_nanos(self.u64()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn usize_from(v: u64) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::LengthOverflow(v))
}

// ---------------------------------------------------------------------------
// Per-type payload codecs.

fn alg_tag(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::TBase => 0,
        Algorithm::THop => 1,
        Algorithm::SBase => 2,
        Algorithm::SBand => 3,
        Algorithm::SHop => 4,
        Algorithm::SHopTop1 => 5,
    }
}

fn alg_from(tag: u8) -> Result<Algorithm, WireError> {
    Ok(match tag {
        0 => Algorithm::TBase,
        1 => Algorithm::THop,
        2 => Algorithm::SBase,
        3 => Algorithm::SBand,
        4 => Algorithm::SHop,
        5 => Algorithm::SHopTop1,
        _ => return Err(WireError::UnknownTag { what: "algorithm", tag }),
    })
}

fn encode_scorer(out: &mut Vec<u8>, scorer: &ScorerSpec) -> Result<(), WireError> {
    let weights = match scorer {
        ScorerSpec::Uniform => {
            out.push(0);
            return Ok(());
        }
        ScorerSpec::Linear(w) => {
            out.push(1);
            w
        }
        ScorerSpec::Cosine(w) => {
            out.push(2);
            w
        }
        ScorerSpec::Custom(_) => return Err(WireError::OpaqueScorer),
    };
    let len = u32::try_from(weights.len()).map_err(|_| WireError::LengthOverflow(u64::MAX))?;
    push_u32(out, len);
    for &w in weights {
        push_f64(out, w);
    }
    Ok(())
}

fn decode_scorer(r: &mut Reader<'_>) -> Result<ScorerSpec, WireError> {
    let tag = r.u8()?;
    if tag == 0 {
        return Ok(ScorerSpec::Uniform);
    }
    if tag > 2 {
        return Err(WireError::UnknownTag { what: "scorer", tag });
    }
    let len = r.u32()? as usize;
    // Each weight occupies 8 payload bytes, so a hostile length prefix is
    // caught by the cursor before the allocation grows past the payload.
    if len.checked_mul(8).map_or(true, |bytes| bytes > r.buf.len()) {
        return Err(WireError::Truncated);
    }
    let mut weights = Vec::with_capacity(len);
    for _ in 0..len {
        weights.push(r.f64()?);
    }
    Ok(if tag == 1 { ScorerSpec::Linear(weights) } else { ScorerSpec::Cosine(weights) })
}

fn encode_request(out: &mut Vec<u8>, req: &ServeRequest) -> Result<(), WireError> {
    out.push(alg_tag(req.alg));
    push_u64(out, req.query.k as u64);
    push_u32(out, req.query.tau);
    push_u32(out, req.query.interval.start());
    push_u32(out, req.query.interval.end());
    encode_scorer(out, &req.scorer)
}

fn decode_request(r: &mut Reader<'_>) -> Result<ServeRequest, WireError> {
    let alg = alg_from(r.u8()?)?;
    let k = usize_from(r.u64()?)?;
    let tau = r.u32()?;
    let start = r.u32()?;
    let end = r.u32()?;
    if start > end {
        return Err(WireError::InvalidField("query window"));
    }
    let scorer = decode_scorer(r)?;
    Ok(ServeRequest {
        alg,
        query: DurableQuery { k, tau, interval: Window::new(start, end) },
        scorer,
    })
}

fn fallback_tag(f: Option<FallbackReason>) -> u8 {
    match f {
        None => 0,
        Some(FallbackReason::MissingSkybandIndex) => 1,
        Some(FallbackReason::SkybandBoundExceeded) => 2,
        Some(FallbackReason::NonMonotoneScorer) => 3,
        Some(FallbackReason::TauBeyondOverlap) => 4,
    }
}

fn fallback_from(tag: u8) -> Result<Option<FallbackReason>, WireError> {
    Ok(match tag {
        0 => None,
        1 => Some(FallbackReason::MissingSkybandIndex),
        2 => Some(FallbackReason::SkybandBoundExceeded),
        3 => Some(FallbackReason::NonMonotoneScorer),
        4 => Some(FallbackReason::TauBeyondOverlap),
        _ => return Err(WireError::UnknownTag { what: "fallback", tag }),
    })
}

fn encode_query_stats(out: &mut Vec<u8>, s: &QueryStats) {
    push_u64(out, s.durability_checks);
    push_u64(out, s.refill_queries);
    push_u64(out, s.candidates);
    push_u64(out, s.blocked_skips);
    push_u64(out, s.cold_page_hits);
    push_u64(out, s.cache_hits);
    push_u64(out, s.cache_misses);
    out.push(fallback_tag(s.fallback));
}

fn decode_query_stats(r: &mut Reader<'_>) -> Result<QueryStats, WireError> {
    Ok(QueryStats {
        durability_checks: r.u64()?,
        refill_queries: r.u64()?,
        candidates: r.u64()?,
        blocked_skips: r.u64()?,
        cold_page_hits: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        fallback: fallback_from(r.u8()?)?,
    })
}

fn encode_response(out: &mut Vec<u8>, resp: &ServeResponse) -> Result<(), WireError> {
    let count =
        u32::try_from(resp.records.len()).map_err(|_| WireError::LengthOverflow(u64::MAX))?;
    push_u32(out, count);
    for &id in &resp.records {
        push_u32(out, id);
    }
    encode_query_stats(out, &resp.stats);
    push_duration(out, resp.queued);
    push_duration(out, resp.service);
    Ok(())
}

fn decode_response(r: &mut Reader<'_>) -> Result<ServeResponse, WireError> {
    let count = r.u32()? as usize;
    if count.checked_mul(4).map_or(true, |bytes| bytes > r.buf.len()) {
        return Err(WireError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(r.u32()?);
    }
    let stats = decode_query_stats(r)?;
    let queued = r.duration()?;
    let service = r.duration()?;
    Ok(ServeResponse { records, stats, queued, service })
}

fn encode_query_error(out: &mut Vec<u8>, e: &QueryError) {
    match e {
        QueryError::ZeroK => out.push(0),
        QueryError::ZeroTau => out.push(1),
        QueryError::EmptyDataset => out.push(2),
        QueryError::IntervalOutOfRange { start, last } => {
            out.push(3);
            push_u32(out, *start);
            push_u32(out, *last);
        }
        QueryError::TauExceedsOverlap { tau, max_tau } => {
            out.push(4);
            push_u32(out, *tau);
            push_u32(out, *max_tau);
        }
        QueryError::Arity { expected, got } => {
            out.push(5);
            push_u64(out, *expected as u64);
            push_u64(out, *got as u64);
        }
    }
}

fn decode_query_error(r: &mut Reader<'_>) -> Result<QueryError, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => QueryError::ZeroK,
        1 => QueryError::ZeroTau,
        2 => QueryError::EmptyDataset,
        3 => QueryError::IntervalOutOfRange { start: r.u32()?, last: r.u32()? },
        4 => QueryError::TauExceedsOverlap { tau: r.u32()?, max_tau: r.u32()? },
        5 => QueryError::Arity { expected: usize_from(r.u64()?)?, got: usize_from(r.u64()?)? },
        _ => return Err(WireError::UnknownTag { what: "query error", tag }),
    })
}

fn encode_serve_error(out: &mut Vec<u8>, e: &ServeError) -> Result<(), WireError> {
    match e {
        ServeError::QueueFull => out.push(0),
        ServeError::ShuttingDown => out.push(1),
        ServeError::Query(qe) => {
            out.push(2);
            encode_query_error(out, qe);
        }
        ServeError::Panicked(msg) => {
            out.push(3);
            let len = u32::try_from(msg.len()).map_err(|_| WireError::LengthOverflow(u64::MAX))?;
            push_u32(out, len);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    Ok(())
}

fn decode_serve_error(r: &mut Reader<'_>) -> Result<ServeError, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => ServeError::QueueFull,
        1 => ServeError::ShuttingDown,
        2 => ServeError::Query(decode_query_error(r)?),
        3 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let msg = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            ServeError::Panicked(msg.to_string())
        }
        _ => return Err(WireError::UnknownTag { what: "serve error", tag }),
    })
}

fn encode_serve_stats(out: &mut Vec<u8>, s: &ServeStats) {
    push_u64(out, s.enqueued);
    push_u64(out, s.completed);
    push_u64(out, s.rejected);
    push_u64(out, s.failed);
    push_u64(out, s.depth as u64);
    push_u64(out, s.max_depth);
    push_duration(out, s.total_queued);
    push_duration(out, s.total_service);
    push_u64(out, s.cold_page_hits);
    push_u64(out, s.subscriptions as u64);
    push_u64(out, s.refreshes);
    push_u64(out, s.fast_path_skips);
    push_u64(out, s.full_recomputes);
    push_u64(out, s.max_refresh_inflight);
    push_u64(out, s.cache_hits);
    push_u64(out, s.cache_misses);
    push_u64(out, s.cache_evictions);
    push_u64(out, s.cache_bytes);
}

fn decode_serve_stats(r: &mut Reader<'_>) -> Result<ServeStats, WireError> {
    Ok(ServeStats {
        enqueued: r.u64()?,
        completed: r.u64()?,
        rejected: r.u64()?,
        failed: r.u64()?,
        depth: usize_from(r.u64()?)?,
        max_depth: r.u64()?,
        total_queued: r.duration()?,
        total_service: r.duration()?,
        cold_page_hits: r.u64()?,
        subscriptions: usize_from(r.u64()?)?,
        refreshes: r.u64()?,
        fast_path_skips: r.u64()?,
        full_recomputes: r.u64()?,
        max_refresh_inflight: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        cache_evictions: r.u64()?,
        cache_bytes: r.u64()?,
    })
}

fn encode_ranges(out: &mut Vec<u8>, ranges: &NodeRanges) -> Result<(), WireError> {
    push_u32(out, ranges.ext_lo);
    push_u32(out, ranges.lo);
    push_u32(out, ranges.hi);
    push_u32(out, ranges.max_tau);
    push_u64(out, ranges.dim as u64);
    let count =
        u32::try_from(ranges.shards.len()).map_err(|_| WireError::LengthOverflow(u64::MAX))?;
    push_u32(out, count);
    for &(lo, hi) in &ranges.shards {
        push_u32(out, lo);
        push_u32(out, hi);
    }
    Ok(())
}

fn decode_ranges(r: &mut Reader<'_>) -> Result<NodeRanges, WireError> {
    let ext_lo = r.u32()?;
    let lo = r.u32()?;
    let hi = r.u32()?;
    let max_tau = r.u32()?;
    let dim = usize_from(r.u64()?)?;
    let count = r.u32()? as usize;
    if count.checked_mul(8).map_or(true, |bytes| bytes > r.buf.len()) {
        return Err(WireError::Truncated);
    }
    let mut shards = Vec::with_capacity(count);
    for _ in 0..count {
        shards.push((r.u32()?, r.u32()?));
    }
    Ok(NodeRanges { ext_lo, lo, hi, max_tau, dim, shards })
}

// ---------------------------------------------------------------------------
// Frame assembly.

fn kind_byte(msg: &Message) -> u8 {
    match msg {
        Message::Query(_) => 1,
        Message::QueryOk(_) => 2,
        Message::QueryErr(_) => 3,
        Message::StatsRequest => 4,
        Message::Stats(_) => 5,
        Message::RangesRequest => 6,
        Message::Ranges(_) => 7,
    }
}

/// Encodes `msg` into one complete frame (header plus payload).
///
/// The only encodable input that fails is a [`ScorerSpec::Custom`] query —
/// opaque trait objects cannot cross the wire, by design
/// ([`WireError::OpaqueScorer`]).
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    match msg {
        Message::Query(req) => encode_request(&mut payload, req)?,
        Message::QueryOk(resp) => encode_response(&mut payload, resp)?,
        Message::QueryErr(e) => encode_serve_error(&mut payload, e)?,
        Message::StatsRequest | Message::RangesRequest => {}
        Message::Stats(s) => encode_serve_stats(&mut payload, s),
        Message::Ranges(ranges) => encode_ranges(&mut payload, ranges)?,
    }
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(WireError::LengthOverflow(payload.len() as u64));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    push_u16(&mut frame, WIRE_VERSION);
    frame.push(kind_byte(msg));
    frame.push(0); // reserved
    push_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Parses a 12-byte header, returning `(kind, payload_len)`.
fn parse_header(header: &[u8]) -> Result<(u8, usize), WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let kind = header[6];
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::LengthOverflow(len as u64));
    }
    Ok((kind, len as usize))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        1 => Message::Query(decode_request(&mut r)?),
        2 => Message::QueryOk(decode_response(&mut r)?),
        3 => Message::QueryErr(decode_serve_error(&mut r)?),
        4 => Message::StatsRequest,
        5 => Message::Stats(decode_serve_stats(&mut r)?),
        6 => Message::RangesRequest,
        7 => Message::Ranges(decode_ranges(&mut r)?),
        _ => return Err(WireError::UnknownKind(kind)),
    };
    r.done()?;
    Ok(msg)
}

/// Decodes one frame from the front of `bytes`, returning the message and
/// the number of bytes consumed. Never panics on malformed input.
pub fn decode_message(bytes: &[u8]) -> Result<(Message, usize), WireError> {
    let (kind, len) = parse_header(bytes)?;
    let total = HEADER_LEN + len;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let msg = decode_payload(kind, &bytes[HEADER_LEN..total])?;
    Ok((msg, total))
}

/// Writes one frame to `w`, flushing it.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    let frame = encode_message(msg)?;
    w.write_all(&frame).map_err(WireError::Io)?;
    w.flush().map_err(WireError::Io)
}

/// Reads exactly one frame from `r` (blocking until the header and the
/// declared payload arrive, or the stream errors).
pub fn read_message<R: Read>(r: &mut R) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(WireError::Io)?;
    let (kind, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(WireError::Io)?;
    decode_payload(kind, &payload)
}
