//! The network layer's error vocabulary.

use durable_topk::ServeError;

use crate::wire::WireError;

/// Why a [`Node`](crate::Node) RPC or a [`Coordinator`](crate::Coordinator)
/// operation failed.
#[derive(Debug)]
pub enum NetError {
    /// Encoding or decoding a frame failed (includes socket errors caught
    /// mid-frame — see [`WireError::Io`]).
    Wire(WireError),
    /// The connection could not be established or kept alive after the
    /// configured number of retries.
    Io {
        /// The peer address the node was dialing.
        addr: String,
        /// The last socket error observed.
        source: std::io::Error,
    },
    /// The peer answered with a frame the protocol does not allow in this
    /// position (for example [`Stats`](crate::wire::Message::Stats) in
    /// reply to a query).
    UnexpectedReply {
        /// The frame kind the caller was waiting for.
        expected: &'static str,
        /// The frame kind that actually arrived.
        got: &'static str,
    },
    /// The node executed the request and reported a serving error.
    Serve(ServeError),
    /// The cluster's node descriptors do not form a valid contiguous
    /// timeline (gaps, overlaps, dimension mismatch, or too little left
    /// context for the advertised `max_tau`).
    Topology(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io { addr, source } => write!(f, "connection to {addr} failed: {source}"),
            NetError::UnexpectedReply { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            NetError::Serve(e) => write!(f, "node error: {e}"),
            NetError::Topology(msg) => write!(f, "invalid cluster topology: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            NetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}
