//! The TCP client side: a [`RemoteNode`] speaks the [`wire`](crate::wire)
//! codec to a [`NodeServer`](crate::NodeServer) and presents it as a
//! [`Node`].

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use durable_topk::check::{LockClass, TrackedMutex};
use durable_topk::{ServeRequest, ServeStats};

use crate::error::NetError;
use crate::node::{Node, NodeAnswer, NodeRanges};
use crate::wire::{read_message, write_message, Message, WireError};

/// Tunables for [`RemoteNode::connect`].
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Timeout for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Timeout for each read of a reply frame.
    pub read_timeout: Duration,
    /// Transport retries per RPC beyond the first attempt. Each retry
    /// reconnects from scratch; decode errors and node-reported errors are
    /// never retried (the node answered — retrying would double-execute).
    pub max_retries: u32,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            max_retries: 2,
        }
    }
}

/// A cluster member reached over TCP: one lazily-established connection,
/// re-dialed on socket failure with bounded retries.
///
/// The connection is serialized under a
/// [`LockClass::NetConnection`]-ranked mutex held only for the duration of
/// one request/response exchange; the coordinator's fan-out sends at most
/// one in-flight request per node, so serialization costs nothing there.
pub struct RemoteNode {
    addr: String,
    opts: RemoteOptions,
    conn: TrackedMutex<Option<TcpStream>>,
    retries: AtomicU64,
}

impl RemoteNode {
    /// Creates a client for the node at `addr` (e.g. `"127.0.0.1:7471"`).
    /// Dialing is lazy — the first RPC connects; construction never
    /// touches the network.
    pub fn connect(addr: impl Into<String>, opts: RemoteOptions) -> Self {
        RemoteNode {
            addr: addr.into(),
            opts,
            conn: TrackedMutex::new(LockClass::NetConnection, None),
            retries: AtomicU64::new(0),
        }
    }

    /// Resolves the configured address (fresh each dial, so DNS changes
    /// are picked up across reconnects).
    fn resolve(&self) -> Result<SocketAddr, NetError> {
        let mut last: Option<std::io::Error> = None;
        match self.addr.to_socket_addrs() {
            Ok(mut addrs) => {
                if let Some(addr) = addrs.next() {
                    return Ok(addr);
                }
            }
            Err(e) => last = Some(e),
        }
        Err(NetError::Io {
            addr: self.addr.clone(),
            source: last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
            }),
        })
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let addr = self.resolve()?;
        let stream = TcpStream::connect_timeout(&addr, self.opts.connect_timeout)
            .map_err(|e| NetError::Io { addr: self.addr.clone(), source: e })?;
        let _ = stream.set_read_timeout(Some(self.opts.read_timeout));
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// One request/response exchange with transport-level retry: a socket
    /// failure drops the connection and re-dials (up to `max_retries`
    /// times); any decoded reply — including error replies — returns
    /// without retrying.
    fn rpc(&self, msg: &Message) -> Result<Message, NetError> {
        let mut conn = self.conn.lock();
        let mut attempt = 0u32;
        loop {
            if conn.is_none() {
                match self.dial() {
                    Ok(stream) => *conn = Some(stream),
                    Err(e) => {
                        if attempt >= self.opts.max_retries {
                            return Err(e);
                        }
                        attempt += 1;
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            // The `is_none` arm above just filled the slot; this borrow
            // cannot fail, but stay panic-free per the crate invariant.
            let Some(stream) = conn.as_mut() else { continue };
            let sent = write_message(stream, msg).and_then(|()| read_message(stream));
            match sent {
                Ok(reply) => return Ok(reply),
                Err(WireError::Io(e)) => {
                    *conn = None; // stream state is unknown; reconnect
                    if attempt >= self.opts.max_retries {
                        return Err(NetError::Io { addr: self.addr.clone(), source: e });
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                // A decode failure is not transient: the peer speaks a
                // different protocol (or the stream is corrupt). Drop the
                // connection and report.
                Err(e) => {
                    *conn = None;
                    return Err(NetError::Wire(e));
                }
            }
        }
    }
}

impl Node for RemoteNode {
    fn query(&self, req: &ServeRequest) -> Result<NodeAnswer, NetError> {
        match self.rpc(&Message::Query(req.clone()))? {
            Message::QueryOk(resp) => {
                Ok(NodeAnswer { records: resp.records, stats: resp.stats, service: resp.service })
            }
            Message::QueryErr(e) => Err(NetError::Serve(e)),
            other => {
                Err(NetError::UnexpectedReply { expected: "query-ok", got: other.kind_name() })
            }
        }
    }

    fn stats(&self) -> Result<ServeStats, NetError> {
        match self.rpc(&Message::StatsRequest)? {
            Message::Stats(stats) => Ok(stats),
            other => Err(NetError::UnexpectedReply { expected: "stats", got: other.kind_name() }),
        }
    }

    fn shard_ranges(&self) -> Result<NodeRanges, NetError> {
        match self.rpc(&Message::RangesRequest)? {
            Message::Ranges(ranges) => Ok(ranges),
            other => Err(NetError::UnexpectedReply { expected: "ranges", got: other.kind_name() }),
        }
    }

    fn net_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn label(&self) -> String {
        self.addr.clone()
    }
}
