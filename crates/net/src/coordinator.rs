//! The scatter-gather [`Coordinator`]: routes a global query to the nodes
//! whose owned ranges intersect it, fans the per-node pieces out on the
//! shared worker pool, and merges the answers exactly as
//! [`ShardedEngine`](durable_topk::ShardedEngine) merges its own shards —
//! so a cluster answer is bit-identical to the single-node answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use durable_topk::check::{LockClass, TrackedMutex};
use durable_topk::{
    DurableQuery, QueryError, QueryStats, RecordId, ServeError, ServeRequest, ServeResponse,
    ServeStats, Time, Window, WorkerPool,
};

use crate::error::NetError;
use crate::node::{Node, NodeRanges};

/// Samples kept per node for the latency percentiles in
/// [`NodePerf`]; older samples are overwritten ring-buffer style.
const LATENCY_SAMPLES: usize = 4096;

/// A bounded reservoir of RPC latencies (ring overwrite beyond
/// [`LATENCY_SAMPLES`]).
struct LatencyRing {
    samples: Vec<Duration>,
    next: usize,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing { samples: Vec::new(), next: 0 }
    }

    fn record(&mut self, d: Duration) {
        if self.samples.len() < LATENCY_SAMPLES {
            self.samples.push(d);
        } else {
            self.samples[self.next] = d;
            self.next = (self.next + 1) % LATENCY_SAMPLES;
        }
    }

    /// The `p`-th percentile (0.0–1.0) of the retained samples, by the
    /// nearest-rank method; zero when nothing has been recorded.
    fn percentile(&self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// One cluster member plus its per-node observability counters.
struct Member {
    node: Arc<dyn Node>,
    requests: AtomicU64,
    errors: AtomicU64,
    latency: TrackedMutex<LatencyRing>,
}

/// The validated cluster layout: one descriptor per member, in member
/// order (ascending `lo`), plus the derived cluster-wide bounds.
#[derive(Debug, Clone)]
struct Topology {
    descs: Vec<NodeRanges>,
    total_len: usize,
    cluster_max_tau: Time,
    dim: usize,
}

/// Per-node serving counters surfaced through
/// [`Coordinator::stats`].
#[derive(Debug, Clone)]
pub struct NodePerf {
    /// The node's [`label`](Node::label) (an address for TCP members).
    pub label: String,
    /// Queries routed to this node.
    pub requests: u64,
    /// Queries that came back with any error.
    pub errors: u64,
    /// Transport retries the node's client performed.
    pub net_retries: u64,
    /// Median RPC latency over the retained sample window.
    pub p50: Duration,
    /// 99th-percentile RPC latency over the retained sample window.
    pub p99: Duration,
}

/// A cluster-level stats snapshot ([`Coordinator::stats`]).
#[derive(Debug, Clone)]
pub struct CoordinatorStats {
    /// Per-node counters, in member (timeline) order.
    pub nodes: Vec<NodePerf>,
    /// Records covered by the cluster at the last topology refresh.
    pub total_len: usize,
    /// The cluster's exactness bound: the largest `τ` every member can
    /// answer exactly for the pieces it may be routed.
    pub cluster_max_tau: Time,
}

/// Routes durable top-k queries across a set of [`Node`]s hosting
/// contiguous slices of one global timeline.
///
/// # Exactness
///
/// Routing sends node `i` the piece `I ∩ [lo_i, hi_i]` of the query
/// interval, translated into the node's local coordinates. Each node
/// carries `max_tau` records of left context below its owned range, so
/// every durability window `[t − τ, t]` with `t` owned by the node is
/// evaluated against the full global history it needs — the same overlap
/// argument [`ShardedEngine`](durable_topk::ShardedEngine) makes for its
/// sealed shards, one level up. Answers come back as node-local ids, are
/// translated to global ids, and are concatenated in timeline order —
/// owned ranges are disjoint and increasing, so the concatenation is
/// sorted and equals the single-engine answer record for record.
///
/// # Concurrency
///
/// The topology snapshot is taken (and the lock released) before any
/// network traffic; per-node counters are atomics and a
/// [`LockClass::NetStats`]-ranked latency reservoir recorded after each
/// RPC returns with nothing else held.
pub struct Coordinator {
    members: Vec<Member>,
    topology: TrackedMutex<Topology>,
}

impl Coordinator {
    /// Builds a coordinator over `nodes`, fetching every member's
    /// descriptor and validating that together they tile a contiguous
    /// global timeline (sorted by owned start, gap-free, dimension-equal,
    /// each owning at least one record, context backing its `max_tau`).
    pub fn new(nodes: Vec<Arc<dyn Node>>) -> Result<Coordinator, NetError> {
        if nodes.is_empty() {
            return Err(NetError::Topology("a cluster needs at least one node".to_string()));
        }
        let mut described: Vec<(Arc<dyn Node>, NodeRanges)> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let desc = node.shard_ranges()?;
            described.push((node, desc));
        }
        described.sort_by_key(|(_, d)| d.lo);
        let topology = validate(described.iter().map(|(_, d)| d.clone()).collect())?;
        let members = described
            .into_iter()
            .map(|(node, _)| Member {
                node,
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency: TrackedMutex::new(LockClass::NetStats, LatencyRing::new()),
            })
            .collect();
        Ok(Coordinator { members, topology: TrackedMutex::new(LockClass::NetTopology, topology) })
    }

    /// Re-fetches every member's descriptor (live nodes grow as they
    /// ingest) and re-validates the cluster layout.
    pub fn refresh_ranges(&self) -> Result<(), NetError> {
        let mut descs = Vec::with_capacity(self.members.len());
        for member in &self.members {
            descs.push(member.node.shard_ranges()?);
        }
        // Members were sorted at construction and owned ranges only grow
        // at the live end, so member order is stable; validate re-checks.
        let topology = validate(descs)?;
        *self.topology.lock() = topology;
        Ok(())
    }

    /// Answers one global-coordinate query by scatter-gather.
    ///
    /// Validation mirrors a single engine: `k`/`τ`/interval checks against
    /// the cluster's total length, and `τ` beyond the cluster bound is
    /// [`QueryError::TauExceedsOverlap`]. The fan-out runs on the shared
    /// [`WorkerPool`], one job per owning node.
    pub fn query(&self, req: &ServeRequest) -> Result<ServeResponse, NetError> {
        let start = Instant::now();
        let topo = self.topology.lock().clone();
        if req.query.tau > topo.cluster_max_tau {
            return Err(NetError::Serve(ServeError::Query(QueryError::TauExceedsOverlap {
                tau: req.query.tau,
                max_tau: topo.cluster_max_tau,
            })));
        }
        let interval =
            req.query.check(topo.total_len).map_err(|e| NetError::Serve(ServeError::Query(e)))?;

        // One job per node whose owned range intersects the interval, in
        // timeline order, each with the piece translated to node-local
        // coordinates.
        let mut jobs: Vec<(usize, Time, ServeRequest)> = Vec::new();
        for (idx, desc) in topo.descs.iter().enumerate() {
            let owned = Window::new(desc.lo, desc.hi);
            let Some(piece) = interval.intersect(owned) else { continue };
            let local = Window::new(piece.start() - desc.ext_lo, piece.end() - desc.ext_lo);
            jobs.push((
                idx,
                desc.ext_lo,
                ServeRequest {
                    alg: req.alg,
                    query: DurableQuery { k: req.query.k, tau: req.query.tau, interval: local },
                    scorer: req.scorer.clone(),
                },
            ));
        }

        let answers = WorkerPool::global().run_jobs(jobs.len(), jobs.len(), |i, _ctx| {
            let (idx, _, local_req) = &jobs[i];
            let member = &self.members[*idx];
            let rpc_start = Instant::now();
            let outcome = member.node.query(local_req);
            let elapsed = rpc_start.elapsed();
            member.requests.fetch_add(1, Ordering::Relaxed);
            if outcome.is_err() {
                member.errors.fetch_add(1, Ordering::Relaxed);
            }
            member.latency.lock().record(elapsed);
            outcome
        });

        // Merge in timeline order: translate node-local ids back to global
        // and concatenate — disjoint increasing owned ranges keep the
        // result sorted, mirroring ShardedEngine's shard merge.
        let mut records: Vec<RecordId> = Vec::new();
        let mut stats = QueryStats::default();
        for ((_, ext_lo, _), answer) in jobs.iter().zip(answers) {
            let answer = answer?;
            records.extend(answer.records.iter().map(|&id| id + ext_lo));
            stats.absorb(&answer.stats);
        }
        Ok(ServeResponse { records, stats, queued: Duration::ZERO, service: start.elapsed() })
    }

    /// Per-node request/error/retry counters and latency percentiles, in
    /// timeline order.
    pub fn stats(&self) -> CoordinatorStats {
        let topo = self.topology.lock().clone();
        let nodes = self
            .members
            .iter()
            .map(|m| {
                let latency = m.latency.lock();
                NodePerf {
                    label: m.node.label(),
                    requests: m.requests.load(Ordering::Relaxed),
                    errors: m.errors.load(Ordering::Relaxed),
                    net_retries: m.node.net_retries(),
                    p50: latency.percentile(0.50),
                    p99: latency.percentile(0.99),
                }
            })
            .collect();
        CoordinatorStats { nodes, total_len: topo.total_len, cluster_max_tau: topo.cluster_max_tau }
    }

    /// Fetches every member's own [`ServeStats`] (a live RPC per node),
    /// in timeline order.
    pub fn cluster_stats(&self) -> Vec<Result<ServeStats, NetError>> {
        self.members.iter().map(|m| m.node.stats()).collect()
    }

    /// The attribute count the cluster agreed on at validation.
    pub fn dim(&self) -> usize {
        self.topology.lock().dim
    }

    /// Records covered by the cluster at the last topology refresh.
    pub fn total_len(&self) -> usize {
        self.topology.lock().total_len
    }

    /// The largest `τ` the cluster answers exactly.
    pub fn cluster_max_tau(&self) -> Time {
        self.topology.lock().cluster_max_tau
    }
}

/// Checks that sorted descriptors tile a contiguous timeline and derives
/// the cluster-wide bounds.
fn validate(descs: Vec<NodeRanges>) -> Result<Topology, NetError> {
    let first = &descs[0];
    if first.lo != 0 || first.ext_lo != 0 {
        return Err(NetError::Topology(format!(
            "first node must own the timeline start (owns [{}, {}], context from {})",
            first.lo, first.hi, first.ext_lo
        )));
    }
    let dim = first.dim;
    let mut cluster_max_tau = Time::MAX;
    for (i, desc) in descs.iter().enumerate() {
        if desc.hi < desc.lo {
            return Err(NetError::Topology(format!(
                "node {i} owns no records (lo {} > hi {})",
                desc.lo, desc.hi
            )));
        }
        if desc.dim != dim {
            return Err(NetError::Topology(format!(
                "node {i} has {} attributes, node 0 has {dim}",
                desc.dim
            )));
        }
        if i > 0 {
            let prev = &descs[i - 1];
            if desc.lo != prev.hi + 1 {
                return Err(NetError::Topology(format!(
                    "node {} ends at {} but node {i} starts at {} (timeline must be contiguous)",
                    i - 1,
                    prev.hi,
                    desc.lo
                )));
            }
            if desc.ext_lo > desc.lo {
                return Err(NetError::Topology(format!(
                    "node {i} context starts at {} after its owned start {}",
                    desc.ext_lo, desc.lo
                )));
            }
            // An interior node answers windows reaching up to τ before its
            // owned start; its context depth bounds the τ it can serve.
            cluster_max_tau = cluster_max_tau.min(desc.lo - desc.ext_lo);
        }
        cluster_max_tau = cluster_max_tau.min(desc.max_tau);
    }
    let last = &descs[descs.len() - 1];
    Ok(Topology { total_len: last.hi as usize + 1, cluster_max_tau, dim, descs })
}
