//! The TCP node server: hosts one engine behind the [`wire`](crate::wire)
//! codec so a [`RemoteNode`](crate::RemoteNode) on another machine can
//! treat it as a cluster member.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use durable_topk::check::{LockClass, TrackedMutex};
use durable_topk::{execute_request, ServeEngine, ServeError, ServeResponse};

use crate::node::{describe, NodeIdentity};
use crate::wire::{read_message, write_message, Message, WireError};

/// Tunables for [`NodeServer::spawn`].
#[derive(Debug, Clone)]
pub struct NodeServerOptions {
    /// Per-read socket timeout on connection handlers. Doubles as the
    /// shutdown poll interval: a handler notices the stop flag at most one
    /// timeout after it is raised.
    pub read_timeout: Duration,
    /// Concurrent connections accepted; further dials are closed
    /// immediately.
    pub max_connections: usize,
}

impl Default for NodeServerOptions {
    fn default() -> Self {
        NodeServerOptions { read_timeout: Duration::from_millis(200), max_connections: 64 }
    }
}

/// Shared state between the acceptor, the connection handlers, and the
/// owning [`NodeServer`] handle.
struct ServerShared {
    serve: ServeEngine,
    identity: NodeIdentity,
    opts: NodeServerOptions,
    stop: AtomicBool,
    /// Live connection-handler count (admission control).
    live: AtomicUsize,
    /// Query frames answered successfully / with an error, folded into the
    /// Stats RPC so remote observers see network traffic that bypasses the
    /// serve queue.
    served: AtomicU64,
    failed: AtomicU64,
    /// Join handles of spawned connection handlers.
    handlers: TrackedMutex<Vec<JoinHandle<()>>>,
}

/// A running TCP node: an acceptor thread plus one handler thread per
/// connection, each executing decoded query frames directly via
/// [`execute_request`] under the engine's read lock.
///
/// Handlers deliberately bypass the [`ServeEngine`] queue: the queue is
/// drained by the shared worker pool, and a coordinator's fan-out jobs run
/// *on* that pool — if every worker were blocked waiting on queued network
/// requests the cluster would deadlock on a single-worker host. Dedicated
/// I/O threads keep the node's service path independent of pool capacity.
///
/// Dropping the handle shuts the server down (idempotent with
/// [`shutdown`](NodeServer::shutdown)).
pub struct NodeServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Starts serving `engine` (hosted at `identity` on the global
    /// timeline) on `listener`, which may be bound to port 0 — the
    /// resolved address is available via [`addr`](NodeServer::addr).
    pub fn spawn(
        listener: TcpListener,
        serve: ServeEngine,
        identity: NodeIdentity,
        opts: NodeServerOptions,
    ) -> std::io::Result<NodeServer> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            serve,
            identity,
            opts,
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            handlers: TrackedMutex::new(LockClass::NetServer, Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        // lint: allow(spawn) — the worker pool owns compute threads, but a
        // TCP acceptor must block in `accept` indefinitely; parking a pool
        // worker there would steal a query-execution slot forever. One
        // dedicated I/O thread per server, joined on shutdown.
        let acceptor = std::thread::Builder::new()
            .name("dtk-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NodeServer { addr, shared, acceptor: Some(acceptor) })
    }

    /// The resolved listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Query frames answered successfully so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Query frames that failed (bad input or panicked execution).
    pub fn failed(&self) -> u64 {
        self.shared.failed.load(Ordering::Relaxed)
    }

    /// Stops accepting, wakes the acceptor, and joins every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway self-connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.shared.handlers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until the stop flag is raised, spawning one handler
/// thread per connection (up to the configured cap).
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let conn = listener.accept();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        if shared.live.load(Ordering::SeqCst) >= shared.opts.max_connections {
            drop(stream); // admission control: refuse by closing
            continue;
        }
        shared.live.fetch_add(1, Ordering::SeqCst);
        let handler_shared = Arc::clone(&shared);
        // lint: allow(spawn) — connection handlers block in socket reads
        // between requests; see the NodeServer docs for why they must not
        // occupy worker-pool slots. Bounded by `max_connections`, joined
        // on shutdown.
        let spawned = std::thread::Builder::new()
            .name("dtk-net-conn".to_string())
            .spawn(move || handle_connection(stream, handler_shared));
        match spawned {
            Ok(handle) => {
                let mut handlers = shared.handlers.lock();
                // Opportunistically reap exited handlers so the registry
                // stays proportional to live connections.
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(_) => {
                shared.live.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Serves one connection: a loop of read-frame → execute → write-reply.
/// Any protocol violation or unrecoverable socket error closes the
/// connection; the node itself keeps serving.
fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let msg = match read_message(&mut reader) {
            Ok(msg) => msg,
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle; re-check the stop flag
            }
            Err(_) => break, // EOF, socket error, or malformed frame
        };
        let reply = match msg {
            Message::Query(req) => answer_query(&shared, &req),
            Message::StatsRequest => {
                let mut stats = shared.serve.stats();
                // Fold in traffic served on connection threads (which
                // bypasses the queue) so remote observers see it.
                let served = shared.served.load(Ordering::Relaxed);
                let failed = shared.failed.load(Ordering::Relaxed);
                stats.enqueued += served + failed;
                stats.completed += served;
                stats.failed += failed;
                Message::Stats(stats)
            }
            Message::RangesRequest => {
                Message::Ranges(describe(&shared.serve.engine(), shared.identity))
            }
            // Reply kinds are not valid requests: protocol violation.
            Message::QueryOk(_) | Message::QueryErr(_) | Message::Stats(_) | Message::Ranges(_) => {
                break
            }
        };
        if write_message(&mut writer, &reply).is_err() {
            break;
        }
    }
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

/// Executes one query frame on the handler thread, isolating panics to
/// this request (mirroring the serve queue's per-request isolation).
fn answer_query(shared: &ServerShared, req: &durable_topk::ServeRequest) -> Message {
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let engine = shared.serve.engine();
        execute_request(&engine, req)
    }));
    match outcome {
        Ok(Ok((records, stats))) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            Message::QueryOk(ServeResponse {
                records,
                stats,
                queued: Duration::ZERO,
                service: start.elapsed(),
            })
        }
        Ok(Err(e)) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            Message::QueryErr(ServeError::Query(e))
        }
        Err(payload) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Message::QueryErr(ServeError::Panicked(msg))
        }
    }
}
