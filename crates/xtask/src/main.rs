//! Workspace automation. The one subcommand, `lint`, is a repo-specific
//! static-analysis pass over `crates/*/src` — plain line rules, no parser,
//! no dependencies — enforcing the concurrency conventions that
//! `durable_topk_check` enforces dynamically:
//!
//! * no raw `std::sync::{Mutex, RwLock}` outside `crates/check` (everything
//!   else must use the tracked, ranked wrappers);
//! * no `thread::spawn` outside `crates/core/src/pool.rs` (the worker pool
//!   owns every thread; the query path never spawns);
//! * no `.unwrap()` / `.expect(` in non-test `crates/core` / `crates/store`
//!   code (typed errors, or a safety comment plus an explicit
//!   `// lint: allow(expect)` marker);
//! * no `panic!` / `unreachable!` reachable from the query path (the crates
//!   a query traverses: temporal, geom, index, store, core) without a
//!   `// lint: allow(panic)` marker documenting why it is unreachable or
//!   part of a documented-panic API;
//! * every `LockClass` variant has an explicit rank (no wildcard arm in
//!   `LockClass::rank`).
//!
//! A finding is suppressed by putting `lint: allow(<rule>)` in a comment on
//! the same line or anywhere in the contiguous comment block directly
//! above (so the safety justification can wrap). Test code — everything
//! from the first `#[cfg(test)]` line to the end of the file, per the
//! repo's tests-at-the-bottom convention — is exempt from all line rules.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation: file, 1-based line, rule id, and the offending text.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.text.trim())
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!("usage: cargo run -p xtask -- lint");
            if let Some(cmd) = other {
                eprintln!("unknown subcommand: {cmd}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Workspace root, derived from this crate's manifest dir (crates/xtask).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let Ok(source) = fs::read_to_string(file) else {
            findings.push(Finding {
                file: file.clone(),
                line: 0,
                rule: "io",
                text: "unreadable source file".into(),
            });
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        scan_file(rel, &source, &mut findings);
    }
    findings.extend(check_rank_completeness(&root));

    if findings.is_empty() {
        println!("xtask lint: clean ({} files scanned)", files.len());
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!("xtask lint: {} finding(s) in {} files scanned", findings.len(), files.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Only crate sources: crates/<name>/src/** (skips target/,
            // fixtures, and anything else a crate dir may grow).
            let under_src = path.components().any(|c| c.as_os_str() == "src");
            let is_crate_root = path.parent().map(|p| p.ends_with("crates")).unwrap_or(false);
            if under_src || is_crate_root || path.ends_with("src") {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.components().any(|c| c.as_os_str() == "src")
        {
            out.push(path);
        }
    }
}

/// Rules that apply to a file, keyed off its workspace-relative path.
struct FileRules {
    raw_locks: bool,
    spawn: bool,
    unwrap_expect: bool,
    panics: bool,
}

fn rules_for(rel: &Path) -> FileRules {
    let path = rel.to_string_lossy().replace('\\', "/");
    let in_crate = |name: &str| path.starts_with(&format!("crates/{name}/"));
    FileRules {
        // The checker itself wraps the raw primitives; xtask scans sources.
        raw_locks: !in_crate("check") && !in_crate("xtask"),
        // The worker pool owns every thread in the workspace. The linter
        // itself names the pattern in string literals.
        spawn: path != "crates/core/src/pool.rs" && !in_crate("xtask"),
        unwrap_expect: in_crate("core") || in_crate("store") || in_crate("net"),
        // Crates a query traverses; panics there would escape to callers
        // (the pool isolates job panics, but the invariant is no-panic).
        // The net crate decodes hostile bytes, so it holds the same bar.
        panics: in_crate("temporal")
            || in_crate("geom")
            || in_crate("index")
            || in_crate("store")
            || in_crate("core")
            || in_crate("net"),
    }
}

fn scan_file(rel: &Path, source: &str, findings: &mut Vec<Finding>) {
    let rules = rules_for(rel);
    // Allow markers seen in the contiguous comment block above the current
    // code line (cleared by the next code line), so safety comments can
    // wrap across lines.
    let mut block: Vec<&str> = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            // Repo convention: the test module sits at the bottom of the
            // file; everything below is exempt.
            break;
        }
        if trimmed.starts_with("//") {
            block.push(line);
            continue;
        }
        let allowed = |rule: &str| {
            has_allow_marker(line, rule) || block.iter().any(|l| has_allow_marker(l, rule))
        };
        let lineno = idx + 1;
        let mut hit = |rule: &'static str| {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule,
                text: line.to_string(),
            })
        };
        if rules.raw_locks
            && (contains_word(line, "Mutex") || contains_word(line, "RwLock"))
            && !allowed("lock")
        {
            hit("raw-lock");
        }
        if rules.spawn
            && (line.contains("thread::spawn") || line.contains("thread::Builder"))
            && !allowed("spawn")
        {
            hit("spawn");
        }
        if rules.unwrap_expect {
            if line.contains(".unwrap()") && !allowed("unwrap") {
                hit("unwrap");
            }
            if line.contains(".expect(") && !allowed("expect") {
                hit("expect");
            }
        }
        if rules.panics
            && (line.contains("panic!(") || line.contains("unreachable!("))
            && !allowed("panic")
        {
            hit("panic");
        }
        block.clear();
    }
}

/// `lint: allow(<rule>)` inside a comment on the given line.
fn has_allow_marker(line: &str, rule: &str) -> bool {
    let Some(comment) = line.find("//").map(|i| &line[i..]) else { return false };
    let Some(start) = comment.find("lint: allow(") else { return false };
    let args = &comment[start + "lint: allow(".len()..];
    let Some(end) = args.find(')') else { return false };
    args[..end].split(',').any(|r| r.trim() == rule)
}

/// `Mutex` must match as its own identifier start (so `TrackedMutex` does
/// not), but `MutexGuard` should still match — raw guard types are as raw
/// as the lock.
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let boundary_before =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if boundary_before {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Rule 5: every `LockClass` variant carries an explicit rank — no
/// wildcard arm hiding an unranked class.
fn check_rank_completeness(root: &Path) -> Vec<Finding> {
    let rel = PathBuf::from("crates/check/src/lib.rs");
    let path = root.join(&rel);
    let Ok(source) = fs::read_to_string(&path) else {
        return vec![Finding {
            file: rel,
            line: 0,
            rule: "rank",
            text: "cannot read the LockClass declaration".into(),
        }];
    };

    let mut variants: Vec<(usize, String)> = Vec::new();
    let mut in_enum = false;
    let mut rank_body = Vec::new();
    let mut in_rank = false;
    let mut depth = 0i32;
    for (idx, line) in source.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("pub enum LockClass") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if trimmed == "}" {
                in_enum = false;
                continue;
            }
            if let Some(name) = trimmed.strip_suffix(',') {
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    variants.push((idx + 1, name.to_string()));
                }
            }
            continue;
        }
        if trimmed.contains("fn rank(self)") {
            in_rank = true;
            depth = 0;
        }
        if in_rank {
            depth += line.matches('{').count() as i32 - line.matches('}').count() as i32;
            rank_body.push((idx + 1, line.to_string()));
            if depth <= 0 && line.contains('}') {
                in_rank = false;
            }
        }
    }

    let mut findings = Vec::new();
    if variants.is_empty() || rank_body.is_empty() {
        findings.push(Finding {
            file: rel.clone(),
            line: 0,
            rule: "rank",
            text: "LockClass enum or rank() not found — update the xtask parser".into(),
        });
        return findings;
    }
    for (line, variant) in &variants {
        let arm = format!("LockClass::{variant} =>");
        if !rank_body.iter().any(|(_, l)| l.contains(&arm)) {
            findings.push(Finding {
                file: rel.clone(),
                line: *line,
                rule: "rank",
                text: format!("LockClass::{variant} has no explicit rank arm"),
            });
        }
    }
    for (line, text) in &rank_body {
        if text.trim_start().starts_with("_ =>") {
            findings.push(Finding {
                file: rel.clone(),
                line: *line,
                rule: "rank",
                text: "wildcard arm in LockClass::rank hides unranked classes".into(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_marker_matches_rule_names() {
        assert!(has_allow_marker(
            "let x = y.expect(\"ok\"); // lint: allow(expect) — safe",
            "expect"
        ));
        assert!(has_allow_marker("// lint: allow(panic, expect)", "panic"));
        assert!(!has_allow_marker("let x = y.expect(\"ok\");", "expect"));
        assert!(!has_allow_marker("// lint: allow(panic)", "expect"));
        assert!(!has_allow_marker("lint: allow(expect) outside a comment", "expect"));
    }

    #[test]
    fn word_boundaries_spare_the_tracked_wrappers() {
        assert!(contains_word("use std::sync::Mutex;", "Mutex"));
        assert!(contains_word("state: Mutex<QueueState>,", "Mutex"));
        assert!(contains_word("fn f(g: MutexGuard<'_, T>)", "Mutex"));
        assert!(!contains_word("state: TrackedMutex<QueueState>,", "Mutex"));
        assert!(!contains_word("TrackedRwLock::new", "RwLock"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let mut findings = Vec::new();
        scan_file(Path::new("crates/core/src/foo.rs"), src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn allow_markers_span_comment_blocks() {
        let src = "// lint: allow(expect) — justification that wraps\n\
                   // across a second comment line.\n\
                   a.expect(\"covered\");\n\
                   b.expect(\"uncovered\");\n";
        let mut findings = Vec::new();
        scan_file(Path::new("crates/core/src/foo.rs"), src, &mut findings);
        assert_eq!(findings.len(), 1, "the block covers only the next code line");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn rank_rule_finds_the_real_declaration() {
        let findings = check_rank_completeness(&workspace_root());
        assert!(
            findings.is_empty(),
            "rank completeness should hold in-tree: {:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }
}
