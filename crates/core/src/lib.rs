//! Durable top-k queries over instant-stamped temporal records.
//!
//! This crate is the primary contribution of *"Durable Top-K Instant-Stamped
//! Temporal Records with User-Specified Scoring Functions"* (ICDE 2021):
//! given a dataset `P` of records ordered by arrival time, a query-time
//! scoring function `f_u`, a rank threshold `k`, a durability `τ` and a
//! query interval `I`, the query `DurTop(k, I, τ)` returns every record
//! `p ∈ P(I)` whose score is beaten by fewer than `k` records within the
//! durability window anchored at `p.t`.
//!
//! Five algorithms are provided, exactly mirroring the paper:
//!
//! | Algorithm | Section | Strategy |
//! |---|---|---|
//! | [`t_base`](algorithms::t_base) | III-A | backward sliding window with incremental top-k maintenance |
//! | [`t_hop`](algorithms::t_hop) | III-B | time-prioritized with hops over provably non-durable stretches |
//! | [`s_base`](algorithms::s_base) | IV-A | full sort + blocking intervals (no oracle calls) |
//! | [`s_band`](algorithms::s_band) | IV-B | durable k-skyband candidates + blocking (monotone `f` only) |
//! | [`s_hop`](algorithms::s_hop) | IV-C | score-prioritized heap over τ-subinterval top-k sets |
//!
//! # Quickstart
//!
//! ```
//! use durable_topk::{Algorithm, DurableQuery, DurableTopKEngine};
//! use durable_topk_temporal::{Dataset, LinearScorer, Window};
//!
//! // Ten records, two attributes, arriving in order.
//! let ds = Dataset::from_rows(2, (0..10).map(|i| {
//!     let x = ((i * 37) % 11) as f64;
//!     [x, 10.0 - x]
//! }));
//! let engine = DurableTopKEngine::new(ds);
//! let query = DurableQuery { k: 2, tau: 4, interval: Window::new(0, 9) };
//! let scorer = LinearScorer::new(vec![0.8, 0.2]);
//! let result = engine.query(Algorithm::SHop, &scorer, &query);
//! // Every algorithm returns the same answer set.
//! let check = engine.query(Algorithm::TBase, &scorer, &query);
//! assert_eq!(result.records, check.records);
//! ```

pub mod algorithms;
pub mod alternatives;
pub mod batch;
pub mod config;
pub mod context;
pub mod duration;
pub mod engine;
pub mod error;
pub mod oracle;
pub mod pool;
pub mod query;
pub mod result_cache;
pub mod serve;
pub mod sharded;
pub mod storage;
pub mod streaming;
pub mod subscribe;
mod sync;

/// Ranked lock tracking: the concurrency-invariant checker every internal
/// lock is declared against (re-exported so binaries and tests can arm
/// schedule perturbation via [`check::set_yield_seed`] and read
/// [`check::report`]).
pub use durable_topk_check as check;

pub use batch::{batch_query, BatchExecutor};
pub use config::EngineConfig;
pub use context::QueryContext;
pub use engine::{Algorithm, DurableTopKEngine};
pub use error::{BuildError, QueryError};
pub use oracle::{ForestOracle, ScanOracle, SegTreeOracle, TopKOracle};
pub use pool::WorkerPool;
pub use query::{DurableQuery, FallbackReason, QueryResult, QueryStats};
pub use result_cache::{ResultCacheStats, ShardResultCache};
pub use serve::{
    execute_request, Backpressure, ResponseHandle, ScorerSpec, ServeEngine, ServeError,
    ServeRequest, ServeResponse, ServeStats,
};
pub use sharded::{SealMode, ShardedEngine};
pub use storage::{ChunkId, MemoryStorage, PagedStorage, ShardStorage, StorageStats};
pub use streaming::StreamingMonitor;
pub use subscribe::{SubscriptionId, SubscriptionSnapshot, SubscriptionTotals};

// Re-export the vocabulary types callers need.
pub use durable_topk_index::{
    IncrementalSkybandIndex, OracleScorer, OracleScratch, SkybandCandidates, TopKResult,
};
pub use durable_topk_temporal::{
    Anchor, CosineScorer, Dataset, LinearScorer, MonotoneCombinationScorer, MonotoneTransform,
    RecordId, Scorer, SingleAttributeScorer, Time, Window,
};
