//! S-Band: score-prioritized search over durable k-skyband candidates
//! (Section IV-B, Algorithm 2). Monotone scoring functions only.
//!
//! The durable k-skyband index yields a candidate superset `C ⊇ S` with one
//! 3-sided range query; the candidates are then sorted by descending score
//! and verified with the blocking mechanism plus durability checks. Unlike
//! S-Base, a blocking count below `k` does **not** prove durability —
//! higher-scoring records outside `C` may never have been visited — so each
//! unblocked candidate still pays one top-k query, whose `π≤k` members are
//! recruited as additional blockers (lines 10–11 of Algorithm 2, the
//! "missing records" of Fig. 5).

use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, FallbackReason, QueryResult, QueryStats};
use durable_topk_index::{OracleScorer, SkybandCandidates};
use durable_topk_temporal::{Dataset, Window};

/// Classifies why an S-Band request cannot be served natively by the given
/// candidate source, or `None` when it can. One derivation shared by every
/// dispatch site (sealed engine, head forest), so the same request can
/// never be classified differently depending on which substrate serves it.
pub(crate) fn sband_fallback_reason<C, S>(
    index: Option<&C>,
    scorer: &S,
    k: usize,
) -> Option<FallbackReason>
where
    C: SkybandCandidates + ?Sized,
    S: OracleScorer + ?Sized,
{
    match index {
        None => Some(FallbackReason::MissingSkybandIndex),
        Some(_) if !scorer.is_monotone() => Some(FallbackReason::NonMonotoneScorer),
        Some(idx) if k > idx.max_k() => Some(FallbackReason::SkybandBoundExceeded),
        Some(_) => None,
    }
}

/// Runs S-Band. See the module docs.
///
/// Generic over the candidate source: the static
/// [`DurableSkybandIndex`](durable_topk_index::DurableSkybandIndex) of a
/// sealed shard, or the
/// [`IncrementalSkybandIndex`](durable_topk_index::IncrementalSkybandIndex)
/// riding a still-growing head shard's forest.
///
/// # Panics
/// Panics on invalid query parameters, if the scorer is not monotone (the
/// k-skyband pruning argument requires monotonicity), or if `query.k`
/// exceeds the index's largest level. The engine front-end
/// ([`DurableTopKEngine::query`](crate::DurableTopKEngine::query)) degrades
/// to S-Hop instead of panicking on the latter two.
pub fn s_band<O: TopKOracle + ?Sized, C: SkybandCandidates + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    index: &C,
    scorer: &S,
    query: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult {
    assert!(
        scorer.is_monotone(),
        "S-Band requires a monotone scoring function (use T-Hop or S-Hop instead)"
    );
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let mut stats = QueryStats::default();
    ctx.answers.clear();

    let (mut candidates, _k_bar) = index.candidates(interval, tau, k);
    stats.candidates = candidates.len() as u64;
    let scored = &mut ctx.scored;
    scored.clear();
    scored.extend(candidates.drain(..).map(|id| (id, scorer.score(ds.row(id)))));
    scored.sort_unstable_by(|a, b| {
        // lint: allow(expect) — documented scorer contract: scores are
        // total-ordered (no NaN); see OracleScorer.
        b.1.partial_cmp(&a.1).expect("scores must not be NaN").then(a.0.cmp(&b.0))
    });

    ctx.blocking.reset(ds.len(), tau);
    ctx.has_interval.reset(ds.len());

    for i in 0..ctx.scored.len() {
        let (id, score) = ctx.scored[i];
        if ctx.blocking.coverage_above(id, score) < k {
            stats.durability_checks += 1;
            oracle.top_k_into(
                ds,
                scorer,
                k,
                Window::lookback(id, tau),
                &mut ctx.oracle,
                &mut ctx.pi,
            );
            if ctx.pi.admits_score(score) {
                ctx.answers.push(id);
            } else {
                // Recruit the strictly better records as blockers; they were
                // not in C (or not yet visited) but shadow lower-scored
                // candidates.
                for &(q, qs) in &ctx.pi.items {
                    if ctx.has_interval.insert(q) {
                        ctx.blocking.insert(q, qs);
                    }
                }
            }
        } else {
            stats.blocked_skips += 1;
        }
        if ctx.has_interval.insert(id) {
            ctx.blocking.insert(id, score);
        }
    }

    QueryResult::new(ctx.take_answers(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_index::DurableSkybandIndex;
    use durable_topk_temporal::{Dataset, LinearScorer};

    fn setup(n: usize) -> (Dataset, ScanOracle, DurableSkybandIndex) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.random_range(0..25) as f64, rng.random_range(0..25) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let idx = DurableSkybandIndex::build(&ds, 8);
        (ds, ScanOracle::new(), idx)
    }

    #[test]
    fn candidate_count_appears_in_stats() {
        let (ds, oracle, idx) = setup(300);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let q = DurableQuery { k: 4, tau: 40, interval: Window::new(60, 299) };
        let r = s_band(&ds, &oracle, &idx, &scorer, &q, &mut QueryContext::new());
        let direct = idx.candidate_count(q.interval, q.tau, q.k);
        assert_eq!(r.stats.candidates as usize, direct);
        assert!(r.records.len() <= direct, "S ⊆ C");
    }

    #[test]
    fn blocked_candidates_skip_durability_checks() {
        let (ds, oracle, idx) = setup(400);
        let scorer = LinearScorer::new(vec![0.9, 0.1]);
        let q = DurableQuery { k: 2, tau: 60, interval: Window::new(100, 399) };
        let r = s_band(&ds, &oracle, &idx, &scorer, &q, &mut QueryContext::new());
        assert_eq!(
            r.stats.durability_checks + r.stats.blocked_skips,
            r.stats.candidates,
            "every candidate is either checked or blocked"
        );
        assert!(r.stats.blocked_skips > 0, "blocking must prune something here");
    }

    #[test]
    fn recruited_blockers_improve_pruning() {
        // The Fig. 5 scenario: records outside C (non-durable but
        // high-scoring) must still block lower candidates once discovered
        // by a failed durability check. We verify indirectly: the number of
        // durability checks is at most |C|, and results stay exact.
        let (ds, oracle, idx) = setup(500);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let q = DurableQuery { k: 3, tau: 100, interval: Window::new(150, 499) };
        let mut ctx = QueryContext::new();
        let r = s_band(&ds, &oracle, &idx, &scorer, &q, &mut ctx);
        assert!(r.stats.durability_checks <= r.stats.candidates);
        // Exactness versus T-Hop, sharing the same context.
        let reference = crate::algorithms::t_hop(&ds, &oracle, &scorer, &q, &mut ctx);
        assert_eq!(r.records, reference.records);
    }
}
