//! T-Hop: the time-prioritized hop algorithm (Section III-B, Algorithm 1).
//!
//! Visits records backwards along the query interval. For the record at
//! `t_curr` it runs one top-k query over `[t_curr − τ, t_curr]`; if the
//! record is durable the traversal steps back by one, otherwise it *hops*
//! directly to the most recent arrival among the window's `π≤k` — no record
//! strictly between can be durable, because all `k` (or more) members of
//! `π≤k` fall inside that record's own durability window and outscore it.
//!
//! Lemma 1 bounds the number of top-k queries by `O(|S| + k⌈|I|/τ⌉)`.
//!
//! Tie note: the oracle returns `π≤k` *with* ties of the k-th score, so the
//! hop target is the most recent among all records that could render the
//! skipped region non-durable; this keeps the hop sound when scores collide.

use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::OracleScorer;
use durable_topk_temporal::{Dataset, Window};

/// Runs T-Hop. See the module docs.
///
/// # Panics
/// Panics on invalid query parameters (see [`DurableQuery::validate`]).
pub fn t_hop<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    query: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult {
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let mut stats = QueryStats::default();
    ctx.answers.clear();

    let mut t = interval.end();
    loop {
        stats.candidates += 1;
        stats.durability_checks += 1;
        oracle.top_k_into(ds, scorer, k, Window::lookback(t, tau), &mut ctx.oracle, &mut ctx.pi);
        if ctx.pi.admits_score(scorer.score(ds.row(t))) {
            ctx.answers.push(t);
            if t == interval.start() {
                break;
            }
            t -= 1;
        } else {
            // Hop: the most recent arrival in π≤k. It is strictly earlier
            // than t (t itself is not in π≤k), and every record in between
            // has at least k strictly-better records inside its own window.
            // lint: allow(expect) — a rejecting top-k set cannot be empty.
            let hop = ctx.pi.max_time().expect("non-durable implies non-empty top-k");
            debug_assert!(hop < t);
            if hop < interval.start() {
                break;
            }
            t = hop;
        }
    }

    QueryResult::new(ctx.take_answers(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::SingleAttributeScorer;

    #[test]
    fn hops_over_shadowed_stretches() {
        // One huge record at t=50 shadows everything for tau after it:
        // T-Hop should check far fewer than |I| records.
        let mut rows: Vec<[f64; 1]> = (0..200).map(|i| [(i % 5) as f64]).collect();
        rows[50] = [1000.0];
        let ds = Dataset::from_rows(1, rows);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 100, interval: Window::new(0, 199) };
        let r = t_hop(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        assert!(r.records.contains(&50));
        // Lemma 1: checks are O(|S| + k⌈|I|/τ⌉) — concretely at most one
        // type-1 false check per durable record plus O(k) type-2 checks per
        // τ-window — far below |I| = 200.
        let bound = 2 * r.records.len() as u64 + 2 * 2 + 8;
        assert!(
            r.stats.durability_checks <= bound,
            "checks {} vs bound {bound} (|S|={})",
            r.stats.durability_checks,
            r.records.len()
        );
    }

    #[test]
    fn hop_target_before_interval_terminates() {
        // Non-durable at I.start with all top-k members before I: loop must
        // terminate without underflow.
        let mut rows: Vec<[f64; 1]> = vec![[100.0], [99.0], [98.0]];
        rows.extend((0..20).map(|i| [(i % 3) as f64]));
        let ds = Dataset::from_rows(1, rows);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 3, tau: 23, interval: Window::new(3, 22) };
        let r = t_hop(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        assert!(r.records.is_empty());
        assert!(r.stats.durability_checks <= 5);
    }

    #[test]
    fn tie_at_kth_score_is_durable_and_hop_stays_sound() {
        // Records tying the k-th score are durable (paper: "tying for the
        // top record" counts).
        let ds = Dataset::from_rows(1, [[5.0], [5.0], [3.0], [5.0], [2.0]]);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 4, interval: Window::new(0, 4) };
        let r = t_hop(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        assert_eq!(r.records, vec![0, 1, 3]);
    }

    #[test]
    fn context_reuse_across_queries_is_clean() {
        // The same context answers consecutive queries with different
        // parameters; answers must match fresh-context runs exactly.
        let ds = Dataset::from_rows(1, (0..120).map(|i| [((i * 13) % 31) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let mut ctx = QueryContext::new();
        for (k, tau, lo, hi) in [(1, 5, 0, 119), (3, 40, 20, 90), (2, 200, 0, 50)] {
            let q = DurableQuery { k, tau, interval: Window::new(lo, hi) };
            let reused = t_hop(&ds, &oracle, &scorer, &q, &mut ctx);
            let fresh = t_hop(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
            assert_eq!(reused.records, fresh.records, "q={q:?}");
        }
    }
}
