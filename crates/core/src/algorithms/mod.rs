//! The five durable top-k query algorithms.
//!
//! All algorithms answer the same query and return identical answer sets;
//! they differ in how many building-block invocations they need:
//!
//! * time-prioritized: [`t_base`] (Section III-A), [`t_hop`] (III-B);
//! * score-prioritized: [`s_base`] (IV-A), [`s_band`] (IV-B),
//!   [`s_hop`] (IV-C).
//!
//! T-Hop and S-Hop both perform `O(|S| + k⌈|I|/τ⌉)` top-k queries
//! (Lemmas 1 and 3); under the random permutation model the expected answer
//! size is `k·|I|/(τ+1)` (Lemma 4), making their expected cost linear in the
//! output.
//!
//! Every algorithm is monomorphized over the oracle *and* the scoring
//! function, and draws all working memory from a
//! [`QueryContext`](crate::QueryContext): repeated queries through one
//! context perform no per-probe allocations.

mod sband;
mod sbase;
mod shop;
mod tbase;
mod thop;

pub use sband::s_band;
pub(crate) use sband::sband_fallback_reason;
pub use sbase::s_base;
pub(crate) use shop::ShopScratch;
pub use shop::{s_hop, RefillMode};
pub use tbase::t_base;
pub use thop::t_hop;
