//! S-Hop: the score-prioritized hop algorithm (Section IV-C, Algorithm 3).
//!
//! Finds durable records in descending score order *without* sorting the
//! whole interval: the query interval is partitioned into τ-length
//! subintervals, each contributing its top-k set `M_j`; a max-heap over the
//! exposed heads yields the globally next-highest unvisited record. A popped
//! record `p` that lies in `k` blocking intervals is skipped (an *auxiliary*
//! record — the hop in score space); otherwise one durability check decides
//! membership, recruiting `π≤k` as blockers on failure, and `M_j` is split
//! around `p.t` with two fresh top-k queries. Every popped record leaves a
//! blocking interval behind.
//!
//! Lemma 3 bounds the top-k queries by `O(|S| + k⌈|I|/τ⌉)` — the same bound
//! as T-Hop, but in practice S-Hop issues fewer durability checks because
//! blocking prunes candidates before they are ever checked.

use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::{BlockingSet, OracleScorer};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How S-Hop refills its per-subinterval candidate sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefillMode {
    /// Algorithm 3 as written: full top-k sets per subinterval; a blocked
    /// pop advances the set's cursor.
    #[default]
    TopK,
    /// The paper's footnote-5 practical variant: top-1 sets; every pop
    /// splits the subinterval. Cheaper per refill on most datasets.
    Top1,
}

/// Total-order wrapper so scores can key the max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A per-subinterval candidate set `M_j`.
struct MSet {
    lo: Time,
    hi: Time,
    items: Vec<(RecordId, f64)>,
    cursor: usize,
    /// Whether `items` came from a full top-k query (vs a top-1 refill).
    full: bool,
}

/// Runs S-Hop. See the module docs.
///
/// # Panics
/// Panics on invalid query parameters (see [`DurableQuery::validate`]).
pub fn s_hop<O: TopKOracle + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &dyn OracleScorer,
    query: &DurableQuery,
    refill: RefillMode,
) -> QueryResult {
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let refill_k = match refill {
        RefillMode::TopK => k,
        RefillMode::Top1 => 1,
    };
    let mut stats = QueryStats::default();

    let mut arena: Vec<MSet> = Vec::new();
    // Max-heap of exposed heads: (score, younger-id-last for determinism,
    // arena index).
    let mut heap: BinaryHeap<(OrdF64, Reverse<RecordId>, usize)> = BinaryHeap::new();
    let expose = |arena: &mut Vec<MSet>,
                  heap: &mut BinaryHeap<(OrdF64, Reverse<RecordId>, usize)>,
                  m: MSet| {
        if m.cursor < m.items.len() {
            let (id, s) = m.items[m.cursor];
            let j = arena.len();
            arena.push(m);
            heap.push((OrdF64(s), Reverse(id), j));
        }
    };

    for chunk in interval.chunks(tau) {
        stats.refill_queries += 1;
        let res = oracle.top_k(ds, scorer, refill_k, chunk);
        expose(
            &mut arena,
            &mut heap,
            MSet {
                lo: chunk.start(),
                hi: chunk.end(),
                items: res.items,
                cursor: 0,
                full: refill == RefillMode::TopK,
            },
        );
    }

    let mut blocking = BlockingSet::new(ds.len(), tau);
    let mut has_interval = vec![false; ds.len()];
    let mut processed = vec![false; ds.len()];
    let mut answers = Vec::new();

    while let Some((OrdF64(score), Reverse(id), j)) = heap.pop() {
        stats.candidates += 1;
        // A record can resurface after a split re-queries part of its old
        // subinterval (paper footnote 7); its blocking interval is already
        // placed, so treat it like a blocked pop.
        let already = processed[id as usize];
        let blocked = already || blocking.coverage_above(id, score) >= k;
        processed[id as usize] = true;

        if !blocked {
            stats.durability_checks += 1;
            let pi = oracle.top_k(ds, scorer, k, Window::lookback(id, tau));
            if pi.admits_score(score) {
                answers.push(id);
            } else {
                for &(q, qs) in &pi.items {
                    if !has_interval[q as usize] {
                        has_interval[q as usize] = true;
                        blocking.insert(q, qs);
                    }
                }
            }
            // Split M_j around id and expose the halves (the paper's text
            // applies the split to every unblocked pop).
            let (lo, hi) = (arena[j].lo, arena[j].hi);
            if lo < id {
                stats.refill_queries += 1;
                let res = oracle.top_k(ds, scorer, refill_k, Window::new(lo, id - 1));
                expose(
                    &mut arena,
                    &mut heap,
                    MSet {
                        lo,
                        hi: id - 1,
                        items: res.items,
                        cursor: 0,
                        full: refill == RefillMode::TopK,
                    },
                );
            }
            if id < hi {
                stats.refill_queries += 1;
                let res = oracle.top_k(ds, scorer, refill_k, Window::new(id + 1, hi));
                expose(
                    &mut arena,
                    &mut heap,
                    MSet {
                        lo: id + 1,
                        hi,
                        items: res.items,
                        cursor: 0,
                        full: refill == RefillMode::TopK,
                    },
                );
            }
        } else {
            if !already {
                stats.blocked_skips += 1;
            }
            // Blocked (auxiliary) pop: expose M_j's next-best record. A
            // top-1 set is first upgraded to the full top-k list; the
            // deterministic (score desc, id asc) order makes the upgraded
            // list a superset that begins with the already-popped prefix, so
            // the cursor carries over. Once the full list is exhausted the
            // subinterval is dropped — at that point at least k blocked
            // records left blocking intervals over it (Lemma 6).
            let m = &mut arena[j];
            if !m.full && m.cursor + 1 >= m.items.len() {
                stats.refill_queries += 1;
                let res = oracle.top_k(ds, scorer, k, Window::new(m.lo, m.hi));
                let popped = m.cursor + 1;
                m.items = res.items;
                m.cursor = popped - 1;
                m.full = true;
            }
            m.cursor += 1;
            if m.cursor < m.items.len() {
                let (nid, ns) = m.items[m.cursor];
                heap.push((OrdF64(ns), Reverse(nid), j));
            }
        }

        if !has_interval[id as usize] {
            has_interval[id as usize] = true;
            blocking.insert(id, score);
        }
    }

    QueryResult::new(answers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::{Dataset, SingleAttributeScorer};

    #[test]
    fn refill_modes_agree_on_answers() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..10 {
            let n = rng.random_range(10..300);
            let rows: Vec<[f64; 1]> = (0..n).map(|_| [rng.random_range(0..12) as f64]).collect();
            let ds = Dataset::from_rows(1, rows);
            let oracle = ScanOracle::new();
            let scorer = SingleAttributeScorer::new(0);
            let q = DurableQuery {
                k: rng.random_range(1..5),
                tau: rng.random_range(1..n as u32 + 1),
                interval: Window::new(0, (n - 1) as u32),
            };
            let a = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK);
            let b = s_hop(&ds, &oracle, &scorer, &q, RefillMode::Top1);
            assert_eq!(a.records, b.records, "q={q:?}");
        }
    }

    #[test]
    fn blocking_prunes_on_skewed_data() {
        // A few giants early in each chunk block the rest: S-Hop's
        // durability checks should be close to |S| + k per chunk, far below
        // the chunk populations.
        let rows: Vec<[f64; 1]> = (0..400)
            .map(|i| if i % 100 == 0 { [1000.0 + i as f64] } else { [(i % 7) as f64] })
            .collect();
        let ds = Dataset::from_rows(1, rows);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 100, interval: Window::new(0, 399) };
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK);
        assert!(
            r.stats.durability_checks <= (r.records.len() + 4 * 2 + 4) as u64,
            "checks {} vs |S|={}",
            r.stats.durability_checks,
            r.records.len()
        );
    }

    #[test]
    fn every_pop_is_counted_once_as_candidate() {
        let ds = Dataset::from_rows(1, (0..60).map(|i| [((i * 17) % 13) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 15, interval: Window::new(0, 59) };
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK);
        // candidates = total pops >= durability checks + blocked skips.
        assert!(r.stats.candidates >= r.stats.durability_checks + r.stats.blocked_skips);
    }

    #[test]
    fn single_chunk_when_tau_exceeds_interval() {
        let ds = Dataset::from_rows(1, (0..40).map(|i| [((i * 3) % 11) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 500, interval: Window::new(10, 39) };
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK);
        let reference = crate::algorithms::t_base(&ds, &oracle, &scorer, &q);
        assert_eq!(r.records, reference.records);
    }
}
