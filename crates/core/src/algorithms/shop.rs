//! S-Hop: the score-prioritized hop algorithm (Section IV-C, Algorithm 3).
//!
//! Finds durable records in descending score order *without* sorting the
//! whole interval: the query interval is partitioned into τ-length
//! subintervals, each contributing its top-k set `M_j`; a max-heap over the
//! exposed heads yields the globally next-highest unvisited record. A popped
//! record `p` that lies in `k` blocking intervals is skipped (an *auxiliary*
//! record — the hop in score space); otherwise one durability check decides
//! membership, recruiting `π≤k` as blockers on failure, and `M_j` is split
//! around `p.t` with two fresh top-k queries. Every popped record leaves a
//! blocking interval behind.
//!
//! Lemma 3 bounds the top-k queries by `O(|S| + k⌈|I|/τ⌉)` — the same bound
//! as T-Hop, but in practice S-Hop issues fewer durability checks because
//! blocking prunes candidates before they are ever checked.
//!
//! All working state — the subinterval arena, the exposure heap, and the
//! `M_j` item vectors (recycled through a pool) — lives in the
//! [`QueryContext`], so repeated queries allocate nothing on this path.

use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::OracleScorer;
use durable_topk_temporal::{Dataset, RecordId, Time, Window};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How S-Hop refills its per-subinterval candidate sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefillMode {
    /// Algorithm 3 as written: full top-k sets per subinterval; a blocked
    /// pop advances the set's cursor.
    #[default]
    TopK,
    /// The paper's footnote-5 practical variant: top-1 sets; every pop
    /// splits the subinterval. Cheaper per refill on most datasets.
    Top1,
}

/// Total-order wrapper so scores can key the max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An exposure-heap entry: (score, younger-id-last for determinism, arena
/// index of the owning subinterval set).
type HeapEntry = (OrdF64, Reverse<RecordId>, usize);

/// A per-subinterval candidate set `M_j`.
#[derive(Debug)]
pub(crate) struct MSet {
    lo: Time,
    hi: Time,
    items: Vec<(RecordId, f64)>,
    cursor: usize,
    /// Whether `items` came from a full top-k query (vs a top-1 refill).
    full: bool,
}

/// S-Hop's reusable working set, owned by [`QueryContext`].
#[derive(Debug, Default)]
pub(crate) struct ShopScratch {
    arena: Vec<MSet>,
    heap: BinaryHeap<HeapEntry>,
    /// Recycled `M_j` item vectors.
    pool: Vec<Vec<(RecordId, f64)>>,
}

impl ShopScratch {
    /// Empties arena and heap, recycling every item vector into the pool.
    fn begin(&mut self) {
        for mut m in self.arena.drain(..) {
            m.items.clear();
            self.pool.push(m.items);
        }
        self.heap.clear();
    }

    /// Takes a cleared vector from the pool (or a fresh one on cold start).
    fn take_vec(&mut self) -> Vec<(RecordId, f64)> {
        self.pool.pop().unwrap_or_default()
    }
}

/// Adds `m` to the arena and exposes its head on the heap (if any).
fn expose(
    arena: &mut Vec<MSet>,
    heap: &mut BinaryHeap<HeapEntry>,
    m: MSet,
    pool: &mut Vec<Vec<(RecordId, f64)>>,
) {
    if m.cursor < m.items.len() {
        let (id, s) = m.items[m.cursor];
        let j = arena.len();
        arena.push(m);
        heap.push((OrdF64(s), Reverse(id), j));
    } else {
        let mut items = m.items;
        items.clear();
        pool.push(items);
    }
}

/// Runs S-Hop. See the module docs.
///
/// # Panics
/// Panics on invalid query parameters (see [`DurableQuery::validate`]).
pub fn s_hop<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    query: &DurableQuery,
    refill: RefillMode,
    ctx: &mut QueryContext,
) -> QueryResult {
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let refill_k = match refill {
        RefillMode::TopK => k,
        RefillMode::Top1 => 1,
    };
    let mut stats = QueryStats::default();
    ctx.answers.clear();
    ctx.shop.begin();

    for chunk in interval.chunks(tau) {
        stats.refill_queries += 1;
        oracle.top_k_into(ds, scorer, refill_k, chunk, &mut ctx.oracle, &mut ctx.refill);
        let mut items = ctx.shop.take_vec();
        std::mem::swap(&mut items, &mut ctx.refill.items);
        expose(
            &mut ctx.shop.arena,
            &mut ctx.shop.heap,
            MSet {
                lo: chunk.start(),
                hi: chunk.end(),
                items,
                cursor: 0,
                full: refill == RefillMode::TopK,
            },
            &mut ctx.shop.pool,
        );
    }

    ctx.blocking.reset(ds.len(), tau);
    ctx.has_interval.reset(ds.len());
    ctx.processed.reset(ds.len());

    while let Some((OrdF64(score), Reverse(id), j)) = ctx.shop.heap.pop() {
        stats.candidates += 1;
        // A record can resurface after a split re-queries part of its old
        // subinterval (paper footnote 7); its blocking interval is already
        // placed, so treat it like a blocked pop.
        let already = ctx.processed.contains(id);
        let blocked = already || ctx.blocking.coverage_above(id, score) >= k;
        ctx.processed.insert(id);

        if !blocked {
            stats.durability_checks += 1;
            oracle.top_k_into(
                ds,
                scorer,
                k,
                Window::lookback(id, tau),
                &mut ctx.oracle,
                &mut ctx.pi,
            );
            if ctx.pi.admits_score(score) {
                ctx.answers.push(id);
            } else {
                for &(q, qs) in &ctx.pi.items {
                    if ctx.has_interval.insert(q) {
                        ctx.blocking.insert(q, qs);
                    }
                }
            }
            // Split M_j around id and expose the halves (the paper's text
            // applies the split to every unblocked pop).
            let (lo, hi) = (ctx.shop.arena[j].lo, ctx.shop.arena[j].hi);
            if lo < id {
                stats.refill_queries += 1;
                oracle.top_k_into(
                    ds,
                    scorer,
                    refill_k,
                    Window::new(lo, id - 1),
                    &mut ctx.oracle,
                    &mut ctx.refill,
                );
                let mut items = ctx.shop.take_vec();
                std::mem::swap(&mut items, &mut ctx.refill.items);
                expose(
                    &mut ctx.shop.arena,
                    &mut ctx.shop.heap,
                    MSet { lo, hi: id - 1, items, cursor: 0, full: refill == RefillMode::TopK },
                    &mut ctx.shop.pool,
                );
            }
            if id < hi {
                stats.refill_queries += 1;
                oracle.top_k_into(
                    ds,
                    scorer,
                    refill_k,
                    Window::new(id + 1, hi),
                    &mut ctx.oracle,
                    &mut ctx.refill,
                );
                let mut items = ctx.shop.take_vec();
                std::mem::swap(&mut items, &mut ctx.refill.items);
                expose(
                    &mut ctx.shop.arena,
                    &mut ctx.shop.heap,
                    MSet { lo: id + 1, hi, items, cursor: 0, full: refill == RefillMode::TopK },
                    &mut ctx.shop.pool,
                );
            }
        } else {
            if !already {
                stats.blocked_skips += 1;
            }
            // Blocked (auxiliary) pop: expose M_j's next-best record. A
            // top-1 set is first upgraded to the full top-k list; the
            // deterministic (score desc, id asc) order makes the upgraded
            // list a superset that begins with the already-popped prefix, so
            // the cursor carries over. Once the full list is exhausted the
            // subinterval is dropped — at that point at least k blocked
            // records left blocking intervals over it (Lemma 6).
            let needs_upgrade = {
                let m = &ctx.shop.arena[j];
                !m.full && m.cursor + 1 >= m.items.len()
            };
            if needs_upgrade {
                stats.refill_queries += 1;
                let (lo, hi) = (ctx.shop.arena[j].lo, ctx.shop.arena[j].hi);
                oracle.top_k_into(
                    ds,
                    scorer,
                    k,
                    Window::new(lo, hi),
                    &mut ctx.oracle,
                    &mut ctx.refill,
                );
                let m = &mut ctx.shop.arena[j];
                let popped = m.cursor + 1;
                std::mem::swap(&mut m.items, &mut ctx.refill.items);
                m.cursor = popped - 1;
                m.full = true;
            }
            let m = &mut ctx.shop.arena[j];
            m.cursor += 1;
            if m.cursor < m.items.len() {
                let (nid, ns) = m.items[m.cursor];
                ctx.shop.heap.push((OrdF64(ns), Reverse(nid), j));
            }
        }

        if ctx.has_interval.insert(id) {
            ctx.blocking.insert(id, score);
        }
    }

    ctx.shop.begin();
    QueryResult::new(ctx.take_answers(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::{Dataset, SingleAttributeScorer};

    #[test]
    fn refill_modes_agree_on_answers() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(61);
        let mut ctx = QueryContext::new();
        for _ in 0..10 {
            let n = rng.random_range(10..300);
            let rows: Vec<[f64; 1]> = (0..n).map(|_| [rng.random_range(0..12) as f64]).collect();
            let ds = Dataset::from_rows(1, rows);
            let oracle = ScanOracle::new();
            let scorer = SingleAttributeScorer::new(0);
            let q = DurableQuery {
                k: rng.random_range(1..5),
                tau: rng.random_range(1..n as u32 + 1),
                interval: Window::new(0, (n - 1) as u32),
            };
            let a = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut ctx);
            let b = s_hop(&ds, &oracle, &scorer, &q, RefillMode::Top1, &mut ctx);
            assert_eq!(a.records, b.records, "q={q:?}");
        }
    }

    #[test]
    fn blocking_prunes_on_skewed_data() {
        // A few giants early in each chunk block the rest: S-Hop's
        // durability checks should be close to |S| + k per chunk, far below
        // the chunk populations.
        let rows: Vec<[f64; 1]> = (0..400)
            .map(|i| if i % 100 == 0 { [1000.0 + i as f64] } else { [(i % 7) as f64] })
            .collect();
        let ds = Dataset::from_rows(1, rows);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 100, interval: Window::new(0, 399) };
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut QueryContext::new());
        assert!(
            r.stats.durability_checks <= (r.records.len() + 4 * 2 + 4) as u64,
            "checks {} vs |S|={}",
            r.stats.durability_checks,
            r.records.len()
        );
    }

    #[test]
    fn every_pop_is_counted_once_as_candidate() {
        let ds = Dataset::from_rows(1, (0..60).map(|i| [((i * 17) % 13) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 15, interval: Window::new(0, 59) };
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut QueryContext::new());
        // candidates = total pops >= durability checks + blocked skips.
        assert!(r.stats.candidates >= r.stats.durability_checks + r.stats.blocked_skips);
    }

    #[test]
    fn single_chunk_when_tau_exceeds_interval() {
        let ds = Dataset::from_rows(1, (0..40).map(|i| [((i * 3) % 11) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 500, interval: Window::new(10, 39) };
        let mut ctx = QueryContext::new();
        let r = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut ctx);
        let reference = crate::algorithms::t_base(&ds, &oracle, &scorer, &q, &mut ctx);
        assert_eq!(r.records, reference.records);
    }

    #[test]
    fn item_vectors_are_recycled_through_the_pool() {
        let ds = Dataset::from_rows(1, (0..200).map(|i| [((i * 31) % 23) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 20, interval: Window::new(0, 199) };
        let mut ctx = QueryContext::new();
        let first = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut ctx);
        assert!(!ctx.shop.pool.is_empty(), "finished query returns vectors to the pool");
        assert!(ctx.shop.arena.is_empty() && ctx.shop.heap.is_empty(), "scratch left clean");
        let pooled = ctx.shop.pool.len();
        let second = s_hop(&ds, &oracle, &scorer, &q, RefillMode::TopK, &mut ctx);
        assert_eq!(first.records, second.records);
        assert_eq!(ctx.shop.pool.len(), pooled, "steady state: no new vectors created");
    }
}
