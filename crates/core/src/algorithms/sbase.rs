//! S-Base: the score-prioritized baseline (Section IV-A).
//!
//! Sorts every record of `[I.start − τ, I.end]` by descending score and
//! processes them in order, maintaining blocking intervals. A record is
//! durable exactly when, at its turn, it lies in fewer than `k` blocking
//! intervals from strictly higher-scoring records: the blocking count is a
//! complete durability test here (unlike S-Band/S-Hop, where only a subset
//! of records is processed), because *every* potential blocker is processed
//! before the records it blocks. Consequently S-Base issues **zero** top-k
//! queries — its `O(n log n)` sort is what makes it slow.

use crate::context::QueryContext;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_temporal::{Dataset, Scorer};

/// Runs S-Base. See the module docs.
///
/// # Panics
/// Panics on invalid query parameters (see [`DurableQuery::validate`]).
pub fn s_base<S: Scorer + ?Sized>(
    ds: &Dataset,
    scorer: &S,
    query: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult {
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let mut stats = QueryStats::default();
    ctx.answers.clear();

    // All records that can either be answers or block answers.
    let lo = interval.start().saturating_sub(tau);
    let hi = interval.end();
    let order = &mut ctx.scored;
    order.clear();
    order.extend((lo..=hi).map(|id| (id, scorer.score(ds.row(id)))));
    order.sort_unstable_by(|a, b| {
        // lint: allow(expect) — documented scorer contract: scores are
        // total-ordered (no NaN); see OracleScorer.
        b.1.partial_cmp(&a.1).expect("scores must not be NaN").then(a.0.cmp(&b.0))
    });
    stats.candidates = order.len() as u64;

    ctx.blocking.reset(ds.len(), tau);
    for &(id, score) in ctx.scored.iter() {
        if interval.contains(id) {
            if ctx.blocking.coverage_above(id, score) < k {
                ctx.answers.push(id);
            } else {
                stats.blocked_skips += 1;
            }
        }
        ctx.blocking.insert(id, score);
    }

    QueryResult::new(ctx.take_answers(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::{Dataset, SingleAttributeScorer, Window};

    fn run(ds: &Dataset, scorer: &SingleAttributeScorer, q: &DurableQuery) -> QueryResult {
        s_base(ds, scorer, q, &mut QueryContext::new())
    }

    #[test]
    fn issues_zero_oracle_queries() {
        let ds = Dataset::from_rows(1, (0..80).map(|i| [((i * 11) % 31) as f64]));
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 3, tau: 12, interval: Window::new(20, 79) };
        let r = run(&ds, &scorer, &q);
        assert_eq!(r.stats.topk_queries(), 0);
        // Sorts [I.start - tau, I.end] = [8, 79].
        assert_eq!(r.stats.candidates, 72);
    }

    #[test]
    fn pre_interval_records_block_but_are_not_reported() {
        // A giant record just before I blocks the first tau instants of I.
        let mut rows: Vec<[f64; 1]> = (0..40).map(|_| [1.0]).collect();
        rows[9] = [100.0];
        let ds = Dataset::from_rows(1, rows);
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 10, interval: Window::new(10, 39) };
        let r = run(&ds, &scorer, &q);
        assert!(!r.records.contains(&9), "pre-interval record must not be reported");
        // Records 10..=19 are inside the blocker's interval and all tie at
        // 1.0 (strictly below 100): not durable. 20.. tie-dominate each
        // other only equally, so they are durable.
        assert_eq!(r.records, (20..40).collect::<Vec<u32>>());
    }

    #[test]
    fn equal_scores_do_not_block_each_other() {
        let ds = Dataset::from_rows(1, (0..20).map(|_| [7.0]));
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 1, tau: 5, interval: Window::new(0, 19) };
        let r = run(&ds, &scorer, &q);
        assert_eq!(r.records.len(), 20, "ties are co-durable");
        assert_eq!(r.stats.blocked_skips, 0);
    }

    #[test]
    fn shared_context_across_different_domains() {
        // Reuse one context across datasets of different sizes: the blocking
        // Fenwick and scored buffer must re-size cleanly.
        let scorer = SingleAttributeScorer::new(0);
        let big = Dataset::from_rows(1, (0..200).map(|i| [((i * 7) % 13) as f64]));
        let small = Dataset::from_rows(1, (0..30).map(|i| [((i * 5) % 11) as f64]));
        let mut ctx = QueryContext::new();
        for ds in [&big, &small, &big] {
            let n = ds.len() as u32;
            let q = DurableQuery { k: 2, tau: 9, interval: Window::new(0, n - 1) };
            let reused = s_base(ds, &scorer, &q, &mut ctx);
            let fresh = s_base(ds, &scorer, &q, &mut QueryContext::new());
            assert_eq!(reused.records, fresh.records);
        }
    }
}
