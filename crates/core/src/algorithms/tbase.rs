//! T-Base: the time-prioritized baseline (Section III-A).
//!
//! Slides a τ-length window backwards along the query interval, maintaining
//! the window's top-k incrementally in the spirit of continuous monitoring
//! over sliding windows (Mouratidis et al.): when the expiring record is not
//! a member of the current `π≤k`, the set is patched in `O(log k)` by
//! inserting the incoming record; otherwise it is recomputed from scratch
//! with one top-k query. Visits every record in `I` — linear time, the
//! baseline the hop algorithms beat.

use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::{OracleScorer, SkybandBuffer};
use durable_topk_temporal::{Dataset, Window};

/// Runs T-Base. See the module docs.
///
/// # Panics
/// Panics on invalid query parameters (see
/// [`DurableQuery::validate`]).
pub fn t_base<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    query: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult {
    let interval = query.validate(ds.len());
    let (k, tau) = (query.k, query.tau);
    let mut stats = QueryStats::default();
    ctx.answers.clear();

    let mut t = interval.end();
    let mut buffer = SkybandBuffer::new(k);
    stats.refill_queries += 1;
    oracle.top_k_into(ds, scorer, k, Window::lookback(t, tau), &mut ctx.oracle, &mut ctx.refill);
    buffer.refill(&ctx.refill);

    loop {
        stats.candidates += 1;
        if buffer.admits(scorer.score(ds.row(t))) {
            ctx.answers.push(t);
        }
        if t == interval.start() {
            break;
        }
        // Slide [t-τ, t] -> [t-1-τ, t-1]: the record at t expires; the
        // record at t-1-τ (if the window is not clamped at 0) enters.
        let expiring = t;
        t -= 1;
        if buffer.contains(expiring) {
            stats.refill_queries += 1;
            oracle.top_k_into(
                ds,
                scorer,
                k,
                Window::lookback(t, tau),
                &mut ctx.oracle,
                &mut ctx.refill,
            );
            buffer.refill(&ctx.refill);
        } else if t >= tau {
            let incoming = t - tau;
            buffer.insert(incoming, scorer.score(ds.row(incoming)));
        }
    }

    QueryResult::new(ctx.take_answers(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::SingleAttributeScorer;

    #[test]
    fn visits_every_record_in_interval() {
        let ds = Dataset::from_rows(1, (0..100).map(|i| [((i * 7) % 23) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(20, 79) };
        let r = t_base(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        assert_eq!(r.stats.candidates, 60);
    }

    #[test]
    fn recomputes_only_when_topk_member_expires() {
        // Decreasing data sliding backwards: the expiring (right) record is
        // always the worst in its window, so after the initial query only
        // expiries of top-k members force recomputation.
        let ds = Dataset::from_rows(1, (0..50).map(|i| [(50 - i) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 3, tau: 8, interval: Window::new(10, 49) };
        oracle.reset_counters();
        let r = t_base(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        // With strictly decreasing values every record IS in its window's
        // top-k... actually the top-k of [t-8, t] is the 3 oldest records,
        // and the expiring record t is never among them except in tiny
        // windows; durable records are exactly those within k of the window
        // start. The point under test: refills stay far below |I|.
        assert!(r.stats.refill_queries < 15, "refills {}", r.stats.refill_queries);
        assert_eq!(oracle.queries_issued(), r.stats.refill_queries);
    }

    #[test]
    fn clamped_left_boundary_has_no_incoming() {
        // tau bigger than the whole prefix: windows clamp at 0 and the
        // incremental path must not index negative positions.
        let ds = Dataset::from_rows(1, (0..30).map(|i| [((i * 13) % 7) as f64]));
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 100, interval: Window::new(0, 29) };
        let r = t_base(&ds, &oracle, &scorer, &q, &mut QueryContext::new());
        // Reference by definition.
        let expected: Vec<u32> = (0..30u32)
            .filter(|&t| {
                let my = ds.value(t, 0);
                (0..t).filter(|&u| ds.value(u, 0) > my).count() < 2
            })
            .collect();
        assert_eq!(r.records, expected);
    }
}
