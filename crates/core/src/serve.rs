//! A request-queue serving layer over the persistent worker pool.
//!
//! The offline engine answers one query per call, on the caller's thread.
//! A deployment serving many clients needs the opposite shape: requests
//! arrive faster and more concurrently than any one caller, and the
//! process must absorb bursts, bound its memory, fail bad requests
//! gracefully, and keep ingesting new records while it serves.
//! [`ServeEngine`] is that shape:
//!
//! * **Bounded MPMC queue** — any number of threads
//!   [`submit`](ServeEngine::submit) requests; the queue holds at most
//!   `capacity` of them. When full, [`Backpressure::Block`] parks the
//!   submitter until space frees, [`Backpressure::Reject`] fails fast with
//!   [`ServeError::QueueFull`].
//! * **Pool-executed** — each accepted request sends one wake token to the
//!   process-wide [`WorkerPool`]; whichever persistent worker pops it
//!   drains one request. No thread is ever spawned on the request path
//!   (guarded by [`WorkerPool::threads_spawned`]).
//! * **Completion handles** — `submit` returns a [`ResponseHandle`]
//!   immediately; the response (records, per-request [`QueryStats`], queue
//!   and service latency) arrives on it oneshot-style.
//! * **Graceful errors** — bad request input (`τ` beyond the engine's
//!   overlap, zero `k`, an interval past the history, wrong scorer arity)
//!   comes back as [`ServeError::Query`] on that request's handle; a panic
//!   during execution comes back as [`ServeError::Panicked`]. Either way
//!   the worker, the queue, and every other request keep going.
//! * **Live ingestion** — [`append`](ServeEngine::append) feeds the
//!   underlying [`ShardedEngine`] under a write lock; head seals run as
//!   background pool jobs, so appends stay short and queries served during
//!   a pending seal remain exact.
//! * **Standing queries** — [`subscribe`](ServeEngine::subscribe)
//!   registers a request once; the append path keeps its materialized
//!   answer set current incrementally (see [`crate::subscribe`]), with a
//!   zero-change fast path for arrivals the head skyband proves
//!   irrelevant. Refresh jobs ride the same pool as requests.
//! * **Graceful shutdown** — [`shutdown`](ServeEngine::shutdown) stops
//!   accepting, then drains: every already-queued request is still served
//!   and its handle fulfilled.

use crate::check::{LockClass, TrackedCondvar, TrackedMutex, TrackedReadGuard, TrackedRwLock};
use crate::context::QueryContext;
use crate::engine::Algorithm;
use crate::error::QueryError;
use crate::pool::WorkerPool;
use crate::query::{DurableQuery, QueryStats};
use crate::sharded::ShardedEngine;
use crate::subscribe::{
    with_scorer, RefreshPlan, SubscriptionId, SubscriptionRegistry, SubscriptionSnapshot,
    SubscriptionTotals,
};
use crate::sync::{lock, OnceSlot};
use durable_topk_index::{OracleScorer, TopKResult};
use durable_topk_temporal::RecordId;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The scoring function of one request, by value — serving requests are
/// data, so the scorer travels as parameters, not as a borrowed generic.
#[derive(Clone)]
pub enum ScorerSpec {
    /// Uniform linear weights over every attribute.
    Uniform,
    /// Linear scorer with explicit weights (arity-checked against the
    /// engine's dimension at execution time).
    Linear(Vec<f64>),
    /// Cosine similarity against a preference vector (non-monotone;
    /// served through admissible bounding-box bounds).
    Cosine(Vec<f64>),
    /// An arbitrary shared scorer — the escape hatch for embedding
    /// callers (and for fault-injection tests).
    Custom(Arc<dyn OracleScorer + Send + Sync>),
}

impl ScorerSpec {
    /// The structural fingerprint of the scorer this spec resolves to for
    /// a `dim`-attribute engine — what the sealed-shard result cache keys
    /// memoized answers on (see
    /// [`EngineConfig::result_cache`](crate::EngineConfig::result_cache)).
    ///
    /// `Uniform`, `Linear` and `Cosine` hash their resolved weight vectors
    /// bit-exactly; `Custom` reports whatever the trait object's
    /// [`fingerprint`](OracleScorer::fingerprint) returns — `None` by
    /// default, so opaque closures bypass the cache. Specs that would fail
    /// resolution (wrong arity, invalid weights) return `None` rather than
    /// panicking.
    pub fn fingerprint(&self, dim: usize) -> Option<u64> {
        use durable_topk_temporal::{CosineScorer, LinearScorer};
        match self {
            ScorerSpec::Uniform => LinearScorer::uniform(dim).fingerprint(),
            ScorerSpec::Linear(w)
                if w.len() == dim && w.iter().all(|x| x.is_finite() && *x >= 0.0) =>
            {
                LinearScorer::new(w.clone()).fingerprint()
            }
            ScorerSpec::Cosine(w)
                if w.len() == dim
                    && w.iter().all(|x| x.is_finite())
                    && w.iter().map(|x| x * x).sum::<f64>() > 0.0 =>
            {
                CosineScorer::new(w.clone()).fingerprint()
            }
            ScorerSpec::Custom(s) => s.fingerprint(),
            _ => None,
        }
    }
}

// Manual `Debug`: the custom trait object carries no `Debug` bound.
impl std::fmt::Debug for ScorerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScorerSpec::Uniform => write!(f, "Uniform"),
            ScorerSpec::Linear(w) => f.debug_tuple("Linear").field(w).finish(),
            ScorerSpec::Cosine(w) => f.debug_tuple("Cosine").field(w).finish(),
            ScorerSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// One durable top-k request: everything needed to execute
/// `DurTop(k, I, τ)` under a chosen algorithm and scoring function.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Which of the five algorithms serves the request.
    pub alg: Algorithm,
    /// The query parameters (`k`, `τ`, interval).
    pub query: DurableQuery,
    /// The scoring function, by value.
    pub scorer: ScorerSpec,
}

/// What happens when a request arrives and the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Park the submitting thread until a slot frees (latency absorbs the
    /// burst).
    Block,
    /// Fail the submission immediately with [`ServeError::QueueFull`]
    /// (load shedding; the client decides whether to retry).
    Reject,
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queue was full under [`Backpressure::Reject`].
    QueueFull,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request itself was invalid for the engine's current state.
    Query(QueryError),
    /// Execution panicked; only this request failed — the worker and the
    /// queue keep serving.
    Panicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "serving engine is shutting down"),
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Panicked(msg) => write!(f, "request execution panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A fulfilled request: the answer plus per-request instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// τ-durable records in increasing arrival order.
    pub records: Vec<RecordId>,
    /// Execution instrumentation of this request.
    pub stats: QueryStats,
    /// Time the request spent waiting in the queue.
    pub queued: Duration,
    /// Execution time on the worker (including the shard fan-out).
    pub service: Duration,
}

/// The oneshot slot a worker publishes a request's outcome into.
type ResponseSlot = OnceSlot<Result<ServeResponse, ServeError>>;

/// The caller's end of one request: blocks (or polls) until a worker
/// publishes the outcome.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.slot.take_blocking()
    }

    /// Takes the outcome if the request already completed (non-blocking).
    pub fn try_take(&self) -> Option<Result<ServeResponse, ServeError>> {
        self.slot.try_take()
    }
}

/// A queued request together with its completion slot and arrival stamp.
struct QueuedRequest {
    req: ServeRequest,
    slot: Arc<ResponseSlot>,
    enqueued: Instant,
}

/// Queue state guarded by one mutex.
struct QueueState {
    queue: VecDeque<QueuedRequest>,
    /// Requests accepted but not yet published (queued + executing) —
    /// what shutdown drains.
    outstanding: usize,
    accepting: bool,
}

/// Monotonic serving counters (lock-free reads).
#[derive(Debug, Default)]
struct Counters {
    enqueued: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    max_depth: AtomicU64,
    queue_ns: AtomicU64,
    service_ns: AtomicU64,
    cold_page_hits: AtomicU64,
    max_refresh_inflight: AtomicU64,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue since construction.
    pub enqueued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Submissions refused (queue full or shutting down).
    pub rejected: u64,
    /// Requests that completed with an error (bad input or panic).
    pub failed: u64,
    /// Requests currently waiting in the queue.
    pub depth: usize,
    /// High-water mark of the queue depth.
    pub max_depth: u64,
    /// Cumulative time completed requests spent queued.
    pub total_queued: Duration,
    /// Cumulative execution time of completed requests.
    pub total_service: Duration,
    /// Cumulative physical page reads completed requests paid to fault
    /// spilled record chunks back in (`0` under
    /// [`MemoryStorage`](crate::MemoryStorage) — the cold-tier cost of a
    /// [`PagedStorage`](crate::PagedStorage) deployment).
    pub cold_page_hits: u64,
    /// Standing subscriptions currently registered.
    pub subscriptions: usize,
    /// Bounded per-arrival subscription probes run so far.
    pub refreshes: u64,
    /// Appends (with subscriptions registered) that touched no
    /// subscription — the zero-change fast path.
    pub fast_path_skips: u64,
    /// Full `try_query` recomputes run for subscriptions (registrations
    /// plus seal-boundary verifications).
    pub full_recomputes: u64,
    /// High-water mark of concurrently in-flight refresh jobs — the
    /// saturation signal of the subscription workload, mirroring
    /// [`max_depth`](ServeStats::max_depth) for the request queue.
    pub max_refresh_inflight: u64,
    /// Sealed-shard result-cache hits across all traffic through the
    /// engine (requests, subscription seal-boundary recomputes) — each
    /// one skipped a per-shard probe *and* its `storage.fetch`. All four
    /// cache counters stay `0` when no cache is configured.
    pub cache_hits: u64,
    /// Cacheable per-shard probes that ran and memoized their answer.
    pub cache_misses: u64,
    /// Cache entries evicted to stay under the byte budget.
    pub cache_evictions: u64,
    /// Estimated bytes of memoized answers currently resident.
    pub cache_bytes: u64,
}

struct Shared {
    engine: TrackedRwLock<ShardedEngine>,
    state: TrackedMutex<QueueState>,
    /// Signalled when a queue slot frees (Block-mode submitters wait here)
    /// and on shutdown (so parked submitters observe `accepting = false`).
    space: TrackedCondvar,
    /// Signalled when `outstanding` reaches zero (shutdown drain).
    idle: TrackedCondvar,
    capacity: usize,
    backpressure: Backpressure,
    counters: Counters,
    /// Standing-query registry. Lock order: the engine lock (read or
    /// write) is always acquired *before* this mutex, never after —
    /// enforced by [`LockClass::Engine`] < [`LockClass::SubscriptionRegistry`].
    subs: TrackedMutex<SubscriptionRegistry>,
    /// Refresh jobs currently in flight (spawned but not finished).
    refreshing: TrackedMutex<usize>,
    /// Signalled when `refreshing` reaches zero
    /// ([`subscription_sync`](ServeEngine::subscription_sync) waits here).
    refresh_idle: TrackedCondvar,
}

impl Shared {
    fn read_engine(&self) -> TrackedReadGuard<'_, ShardedEngine> {
        self.engine.read()
    }

    /// Pops and serves one request — the body of the detached pool job
    /// each submission sends. Tokens and requests are 1:1, so a pop can
    /// only come up empty if an inline fallback already served the
    /// request; that token is then a harmless no-op.
    fn serve_one(&self) {
        let item = {
            let mut state = lock(&self.state);
            let item = state.queue.pop_front();
            if item.is_some() {
                self.space.notify_one();
            }
            item
        };
        let Some(item) = item else { return };
        let queued = item.enqueued.elapsed();
        let started = Instant::now();
        // Catch panics at request granularity: a poisoned scorer must fail
        // exactly one completion handle, never a worker or the queue. The
        // engine read lock is scoped inside the catch; RwLocks only poison
        // on exclusive-access panics, so readers stay healthy.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let engine = self.read_engine();
            execute_request(&engine, &item.req)
        }));
        let service = started.elapsed();
        let result = match outcome {
            Ok(Ok((records, stats))) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                self.counters.queue_ns.fetch_add(queued.as_nanos() as u64, Ordering::Relaxed);
                self.counters.service_ns.fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
                self.counters.cold_page_hits.fetch_add(stats.cold_page_hits, Ordering::Relaxed);
                Ok(ServeResponse { records, stats, queued, service })
            }
            Ok(Err(e)) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Query(e))
            }
            Err(payload) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                // `as_ref` matters: coercing `&Box<dyn Any>` would downcast
                // against the box, not the payload inside it.
                Err(ServeError::Panicked(panic_message(payload.as_ref())))
            }
        };
        item.slot.publish(result);
        let mut state = lock(&self.state);
        state.outstanding -= 1;
        if state.outstanding == 0 {
            self.idle.notify_all();
        }
    }

    /// Executes one append's refresh plan: the bounded probe for every
    /// affected subscription, then any seal-boundary verifications. Runs
    /// on a pool worker (or inline when the pool is tearing down) with
    /// the engine *read* lock — appends and queries proceed concurrently.
    ///
    /// Panic-safe at plan granularity: a scorer panic marks every planned
    /// subscription diverged instead of killing the worker. Refresh jobs
    /// may execute out of arrival order; that is sound because durability
    /// is look-back only — each probe sees a history at least as long as
    /// the one its arrival saw, and the admitted set is inserted
    /// idempotently in id order.
    fn run_refresh(&self, id: RecordId, attrs: &[f64], plan: &RefreshPlan, ctx: &mut QueryContext) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let engine = self.read_engine();
            let mut out = TopKResult::empty();
            for sub in &plan.probes {
                sub.refresh(&engine, id, attrs, ctx, &mut out);
            }
            for sub in &plan.verifies {
                sub.verify(&engine);
            }
        }));
        // Building-block probes report their cold reads through the
        // context scratch; fold them into the serving ledger alongside the
        // per-request counts.
        self.counters.cold_page_hits.fetch_add(ctx.take_cold_page_hits(), Ordering::Relaxed);
        if outcome.is_err() {
            for sub in plan.probes.iter().chain(&plan.verifies) {
                sub.mark_diverged();
            }
        }
        let mut refreshing = lock(&self.refreshing);
        *refreshing -= 1;
        if *refreshing == 0 {
            self.refresh_idle.notify_all();
        }
    }
}

/// Renders a caught panic payload for [`ServeError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Resolves a request's [`ScorerSpec`] to a concrete monomorphized scorer
/// and runs its query against `engine` on the calling thread.
///
/// This is the one execution path every consumer of plain-data requests
/// shares — the serve queue's workers, the subscription refresh planner,
/// and network nodes (which execute decoded wire requests on their own
/// connection threads) — so validation and scorer resolution can never
/// drift between them. Arity errors surface as
/// [`QueryError::Arity`](crate::QueryError) like any other bad input.
pub fn execute_request(
    engine: &ShardedEngine,
    req: &ServeRequest,
) -> Result<(Vec<RecordId>, QueryStats), QueryError> {
    with_scorer(engine.dim(), &req.scorer, |scorer: &(dyn OracleScorer + Sync)| {
        engine.try_query(req.alg, scorer, &req.query).map(|r| (r.records, r.stats))
    })?
}

/// A bounded request queue serving durable top-k queries through the
/// persistent worker pool, over a live (appendable) sharded engine.
///
/// Clones share the same queue and engine — hand one to each client
/// thread.
///
/// ```
/// use durable_topk::{
///     Algorithm, Backpressure, Dataset, DurableQuery, ScorerSpec, ServeEngine, ServeRequest,
///     ShardedEngine, Window,
/// };
///
/// let ds = Dataset::from_rows(2, (0..100).map(|i| [(i % 13) as f64, (i % 7) as f64]));
/// let engine = ShardedEngine::build(&ds, 4, 16).expect("build");
/// let serve = ServeEngine::new(engine, 64, Backpressure::Block);
/// let handle = serve
///     .submit(ServeRequest {
///         alg: Algorithm::THop,
///         query: DurableQuery { k: 3, tau: 10, interval: Window::new(0, 99) },
///         scorer: ScorerSpec::Uniform,
///     })
///     .expect("accepted");
/// let response = handle.wait().expect("served");
/// assert!(!response.records.is_empty());
/// serve.shutdown();
/// ```
#[derive(Clone)]
pub struct ServeEngine {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("capacity", &self.shared.capacity)
            .field("backpressure", &self.shared.backpressure)
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Wraps an engine in a serving queue holding at most `capacity`
    /// waiting requests, with the given full-queue policy.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a queue that can hold nothing cannot
    /// serve; validate user-supplied capacities before calling).
    pub fn new(engine: ShardedEngine, capacity: usize, backpressure: Backpressure) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let subs = TrackedMutex::new(
            LockClass::SubscriptionRegistry,
            SubscriptionRegistry::anchored(&engine),
        );
        Self {
            shared: Arc::new(Shared {
                engine: TrackedRwLock::new(LockClass::Engine, engine),
                state: TrackedMutex::new(
                    LockClass::ServeQueue,
                    QueueState {
                        queue: VecDeque::with_capacity(capacity),
                        outstanding: 0,
                        accepting: true,
                    },
                ),
                space: TrackedCondvar::new(),
                idle: TrackedCondvar::new(),
                capacity,
                backpressure,
                counters: Counters::default(),
                subs,
                refreshing: TrackedMutex::new(LockClass::ServeQueue, 0),
                refresh_idle: TrackedCondvar::new(),
            }),
        }
    }

    /// Enqueues a request, returning its completion handle.
    ///
    /// Blocks while the queue is full under [`Backpressure::Block`];
    /// fails fast with [`ServeError::QueueFull`] under
    /// [`Backpressure::Reject`]. After [`shutdown`](ServeEngine::shutdown)
    /// has begun, every submission fails with
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, req: ServeRequest) -> Result<ResponseHandle, ServeError> {
        let slot = Arc::new(ResponseSlot::new(LockClass::ResponseSlot));
        {
            let mut state = lock(&self.shared.state);
            loop {
                if !state.accepting {
                    self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::ShuttingDown);
                }
                if state.queue.len() < self.shared.capacity {
                    break;
                }
                match self.shared.backpressure {
                    Backpressure::Reject => {
                        self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::QueueFull);
                    }
                    Backpressure::Block => {
                        state = self.shared.space.wait(state);
                    }
                }
            }
            state.queue.push_back(QueuedRequest {
                req,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
            });
            state.outstanding += 1;
            let depth = state.queue.len() as u64;
            self.shared.counters.enqueued.fetch_add(1, Ordering::Relaxed);
            self.shared.counters.max_depth.fetch_max(depth, Ordering::Relaxed);
        }
        // One wake token per accepted request: whichever persistent worker
        // pops it serves exactly one queue entry. If the pool is mid-drop
        // (tests tearing down), serve inline so the handle always resolves.
        let shared = Arc::clone(&self.shared);
        if !WorkerPool::global().submit(move |_ctx| shared.serve_one()) {
            self.shared.serve_one();
        }
        Ok(ResponseHandle { slot })
    }

    /// Ingests one record into the underlying live engine (short write
    /// lock; the `O(span)` head seal runs as a background pool job).
    ///
    /// With subscriptions registered, the arrival is classified under the
    /// same write lock (one head-skyband lookup — the maintainer already
    /// did the dominance work as part of the append). The common outcome
    /// is the zero-change fast path: no subscription is touched and the
    /// append returns. Otherwise the bounded refresh plan rides the
    /// persistent [`WorkerPool`] as a detached job, *after* the lock is
    /// released — queries keep serving while subscriptions catch up.
    ///
    /// Returns the record's global id, or [`ServeError::Query`] with
    /// [`QueryError::Arity`] on an arity mismatch.
    pub fn append(&self, attrs: &[f64]) -> Result<RecordId, ServeError> {
        let (id, plan) = {
            let mut engine = self.shared.engine.write();
            if attrs.len() != engine.dim() {
                return Err(ServeError::Query(QueryError::Arity {
                    expected: engine.dim(),
                    got: attrs.len(),
                }));
            }
            let id = engine.append(attrs);
            let plan = lock(&self.shared.subs).plan_refresh(&engine, id);
            (id, plan)
        };
        if !plan.is_empty() {
            self.spawn_refresh(id, attrs.to_vec(), plan);
        }
        Ok(id)
    }

    /// Dispatches one refresh plan to the pool, falling back to inline
    /// execution when the pool is tearing down. Called with no locks held
    /// — the inline path re-acquires the engine read lock.
    fn spawn_refresh(&self, id: RecordId, attrs: Vec<f64>, plan: RefreshPlan) {
        {
            let mut refreshing = lock(&self.shared.refreshing);
            *refreshing += 1;
            self.shared
                .counters
                .max_refresh_inflight
                .fetch_max(*refreshing as u64, Ordering::Relaxed);
        }
        // `WorkerPool::submit` consumes its closure even when it refuses
        // the job, so the payload travels in an `Arc` the fallback can
        // still reach.
        let payload = Arc::new((id, attrs, plan));
        let shared = Arc::clone(&self.shared);
        let job = Arc::clone(&payload);
        if !WorkerPool::global().submit(move |ctx| shared.run_refresh(job.0, &job.1, &job.2, ctx)) {
            let mut ctx = QueryContext::new();
            self.shared.run_refresh(payload.0, &payload.1, &payload.2, &mut ctx);
        }
    }

    /// Waits out every in-flight background shard seal (write lock).
    pub fn quiesce(&self) {
        self.shared.engine.write().quiesce();
    }

    /// Registers a standing query: the request is validated and its
    /// answer set over the already-ingested prefix materialized (one full
    /// recompute); from then on every [`append`](ServeEngine::append)
    /// keeps it current incrementally. Read the result back with
    /// [`poll_subscription`](ServeEngine::poll_subscription) or drain
    /// increments with [`take_delta`](ServeEngine::take_delta).
    pub fn subscribe(&self, req: ServeRequest) -> Result<SubscriptionId, ServeError> {
        self.register(req, false)
    }

    /// Like [`subscribe`](ServeEngine::subscribe), but additionally
    /// re-runs the full [`try_query`](ShardedEngine::try_query) oracle
    /// whenever the engine seals a shard, reconciling the incremental
    /// state against it — belt-and-suspenders mode for deployments that
    /// would rather pay a periodic recompute than trust the fast path
    /// unaudited. Divergence is reported on the snapshot, never papered
    /// over.
    pub fn subscribe_verified(&self, req: ServeRequest) -> Result<SubscriptionId, ServeError> {
        self.register(req, true)
    }

    fn register(&self, req: ServeRequest, verify: bool) -> Result<SubscriptionId, ServeError> {
        // Lock order: engine before subs, as everywhere.
        let engine = self.shared.read_engine();
        let mut subs = lock(&self.shared.subs);
        subs.register(&engine, req, verify).map_err(ServeError::Query)
    }

    /// Removes a standing query; returns whether it existed. In-flight
    /// refresh jobs for it finish harmlessly.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        lock(&self.shared.subs).unsubscribe(id)
    }

    /// A point-in-time snapshot of one subscription's materialized answer
    /// set and counters, or `None` for an unknown id.
    pub fn poll_subscription(&self, id: SubscriptionId) -> Option<SubscriptionSnapshot> {
        let sub = lock(&self.shared.subs).get(id)?;
        Some(sub.snapshot())
    }

    /// Drains the records a subscription admitted since the last drain
    /// (in arrival order), or `None` for an unknown id.
    pub fn take_delta(&self, id: SubscriptionId) -> Option<Vec<RecordId>> {
        let sub = lock(&self.shared.subs).get(id)?;
        Some(sub.take_delta())
    }

    /// Blocks until no refresh job is in flight — every append already
    /// made is reflected in every subscription. Call before comparing a
    /// snapshot against a full recompute.
    pub fn subscription_sync(&self) {
        let mut refreshing = lock(&self.shared.refreshing);
        while *refreshing > 0 {
            refreshing = self.shared.refresh_idle.wait(refreshing);
        }
    }

    /// Read access to the underlying engine (shard counts, direct
    /// queries, verification against the served answers).
    pub fn engine(&self) -> TrackedReadGuard<'_, ShardedEngine> {
        self.shared.read_engine()
    }

    /// Stops accepting new requests and blocks until every accepted
    /// request (queued or executing) has been answered. Parked
    /// [`Backpressure::Block`] submitters wake and observe the shutdown.
    ///
    /// Idempotent: concurrent or repeated calls all drain and return.
    pub fn shutdown(&self) {
        let mut state = lock(&self.shared.state);
        state.accepting = false;
        self.shared.space.notify_all();
        while state.outstanding > 0 {
            state = self.shared.idle.wait(state);
        }
    }

    /// A snapshot of the queue-depth, latency, and subscription counters.
    pub fn stats(&self) -> ServeStats {
        let depth = lock(&self.shared.state).queue.len();
        let cache =
            self.shared.read_engine().result_cache().map(|cache| cache.stats()).unwrap_or_default();
        let totals: SubscriptionTotals = lock(&self.shared.subs).totals();
        let c = &self.shared.counters;
        ServeStats {
            enqueued: c.enqueued.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            depth,
            max_depth: c.max_depth.load(Ordering::Relaxed),
            total_queued: Duration::from_nanos(c.queue_ns.load(Ordering::Relaxed)),
            total_service: Duration::from_nanos(c.service_ns.load(Ordering::Relaxed)),
            cold_page_hits: c.cold_page_hits.load(Ordering::Relaxed),
            subscriptions: totals.subscriptions,
            refreshes: totals.refreshes,
            fast_path_skips: totals.fast_path_skips,
            full_recomputes: totals.full_recomputes,
            max_refresh_inflight: c.max_refresh_inflight.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_bytes: cache.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DurableTopKEngine;
    use durable_topk_temporal::{Dataset, Window};

    fn dataset(n: usize) -> Dataset {
        Dataset::from_rows(2, (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]))
    }

    fn request(alg: Algorithm, k: usize, tau: u32, a: u32, b: u32) -> ServeRequest {
        ServeRequest {
            alg,
            query: DurableQuery { k, tau, interval: Window::new(a, b) },
            scorer: ScorerSpec::Linear(vec![0.6, 0.4]),
        }
    }

    fn serve_over(n: usize) -> ServeEngine {
        let engine = ShardedEngine::build(&dataset(n), 4, 50).expect("build");
        ServeEngine::new(engine, 32, Backpressure::Block)
    }

    #[test]
    fn served_answers_match_direct_queries() {
        let ds = dataset(600);
        let serve = serve_over(600);
        let flat = DurableTopKEngine::new(ds);
        let scorer = durable_topk_temporal::LinearScorer::new(vec![0.6, 0.4]);
        let reqs: Vec<ServeRequest> =
            [(3usize, 40u32, 0u32, 599u32), (1, 17, 250, 599), (5, 50, 460, 599)]
                .iter()
                .flat_map(|&(k, tau, a, b)| {
                    [Algorithm::THop, Algorithm::SHop, Algorithm::TBase]
                        .map(|alg| request(alg, k, tau, a, b))
                })
                .collect();
        let handles: Vec<(ServeRequest, ResponseHandle)> =
            reqs.into_iter().map(|r| (r.clone(), serve.submit(r).expect("accepted"))).collect();
        for (req, handle) in handles {
            let response = handle.wait().expect("served");
            let expected = flat.query(req.alg, &scorer, &req.query);
            assert_eq!(response.records, expected.records, "req={req:?}");
        }
        let stats = serve.stats();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.failed, 0);
        serve.shutdown();
    }

    #[test]
    fn bad_requests_fail_their_handle_only() {
        let serve = serve_over(300);
        // τ beyond the overlap bound.
        let over = serve.submit(request(Algorithm::THop, 2, 500, 0, 299)).expect("accepted");
        assert_eq!(
            over.wait(),
            Err(ServeError::Query(QueryError::TauExceedsOverlap { tau: 500, max_tau: 50 }))
        );
        // Zero k.
        let zero = serve.submit(request(Algorithm::THop, 0, 10, 0, 299)).expect("accepted");
        assert_eq!(zero.wait(), Err(ServeError::Query(QueryError::ZeroK)));
        // Wrong scorer arity.
        let skewed = serve
            .submit(ServeRequest {
                alg: Algorithm::SHop,
                query: DurableQuery { k: 1, tau: 10, interval: Window::new(0, 299) },
                scorer: ScorerSpec::Linear(vec![1.0, 2.0, 3.0]),
            })
            .expect("accepted");
        assert_eq!(
            skewed.wait(),
            Err(ServeError::Query(QueryError::Arity { expected: 2, got: 3 }))
        );
        // The queue still serves after every failure.
        let ok = serve.submit(request(Algorithm::THop, 2, 10, 0, 299)).expect("accepted");
        assert!(ok.wait().is_ok());
        assert_eq!(serve.stats().failed, 3);
        serve.shutdown();
    }

    #[test]
    fn reject_mode_sheds_load_when_full() {
        // Capacity 1 with no worker able to run yet is hard to force
        // deterministically; instead, saturate with slow-ish requests and
        // accept that at least the accounting holds.
        let engine = ShardedEngine::build(&dataset(50), 2, 10).expect("build");
        let serve = ServeEngine::new(engine, 1, Backpressure::Reject);
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            outcomes.push(serve.submit(request(Algorithm::TBase, 1, 10, 0, 49)));
        }
        let accepted: Vec<ResponseHandle> = outcomes.into_iter().flatten().collect();
        for handle in accepted {
            assert!(handle.wait().is_ok());
        }
        let stats = serve.stats();
        assert_eq!(stats.enqueued + stats.rejected, 64);
        assert_eq!(stats.completed, stats.enqueued);
        serve.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let serve = serve_over(100);
        serve.shutdown();
        assert_eq!(
            serve.submit(request(Algorithm::THop, 1, 10, 0, 99)).map(|_| ()),
            Err(ServeError::ShuttingDown)
        );
        // Idempotent.
        serve.shutdown();
    }

    #[test]
    fn standing_queries_refresh_incrementally_on_append() {
        let engine = crate::EngineConfig::new(2, 32, 16).skyband_bound(4).build().expect("config");
        let serve = ServeEngine::new(engine, 8, Backpressure::Block);
        let row = |i: usize| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64];
        for i in 0..80 {
            serve.append(&row(i)).expect("arity matches");
        }
        let jobs_before = WorkerPool::detached_jobs();
        let id = serve
            .subscribe_verified(request(Algorithm::THop, 2, 10, 0, u32::MAX))
            .expect("valid request");
        for i in 80..300 {
            serve.append(&row(i)).expect("arity matches");
        }
        serve.quiesce();
        serve.subscription_sync();
        let snap = serve.poll_subscription(id).expect("registered");
        assert!(!snap.diverged, "seal verifications must agree with the fast path");
        let scorer = durable_topk_temporal::LinearScorer::new(vec![0.6, 0.4]);
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, 299) };
        let expected = serve.engine().try_query(Algorithm::THop, &scorer, &q).expect("query");
        assert_eq!(snap.records, expected.records);
        // The increments drain exactly once, in arrival order.
        let delta = serve.take_delta(id).expect("registered");
        assert_eq!(delta, snap.records);
        assert!(serve.take_delta(id).expect("registered").is_empty());
        // The gate fired, probes ran, and every refresh rode the pool as a
        // detached job — the saturation high-water mark saw them.
        let stats = serve.stats();
        assert_eq!(stats.subscriptions, 1);
        assert!(stats.refreshes > 0, "durable arrivals must probe");
        assert!(stats.fast_path_skips > 0, "the skyband gate must skip arrivals");
        assert!(stats.full_recomputes >= 1, "registration materializes once");
        assert!(stats.max_refresh_inflight >= 1);
        assert!(WorkerPool::detached_jobs() > jobs_before, "refreshes ride the pool");
        assert!(serve.unsubscribe(id));
        assert!(serve.poll_subscription(id).is_none());
        assert!(!serve.unsubscribe(id));
        serve.shutdown();
    }

    #[test]
    fn subscriptions_validate_like_requests() {
        let engine = ShardedEngine::new_live(2, 32, 16);
        let serve = ServeEngine::new(engine, 8, Backpressure::Block);
        serve.append(&[1.0, 2.0]).expect("arity matches");
        assert_eq!(
            serve.subscribe(request(Algorithm::THop, 0, 8, 0, u32::MAX)).unwrap_err(),
            ServeError::Query(QueryError::ZeroK)
        );
        assert_eq!(
            serve.subscribe(request(Algorithm::THop, 1, 17, 0, u32::MAX)).unwrap_err(),
            ServeError::Query(QueryError::TauExceedsOverlap { tau: 17, max_tau: 16 })
        );
        let skewed = ServeRequest {
            scorer: ScorerSpec::Linear(vec![1.0, 2.0, 3.0]),
            ..request(Algorithm::THop, 1, 8, 0, u32::MAX)
        };
        assert_eq!(
            serve.subscribe(skewed).unwrap_err(),
            ServeError::Query(QueryError::Arity { expected: 2, got: 3 })
        );
        assert_eq!(serve.stats().subscriptions, 0);
        serve.shutdown();
    }

    #[test]
    fn fixed_interval_subscriptions_complete() {
        let engine = ShardedEngine::new_live(2, 64, 8);
        let serve = ServeEngine::new(engine, 8, Backpressure::Block);
        let row = |i: usize| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64];
        for i in 0..10 {
            serve.append(&row(i)).expect("arity matches");
        }
        let id = serve.subscribe(request(Algorithm::THop, 1, 4, 0, 19)).expect("valid");
        for i in 10..50 {
            serve.append(&row(i)).expect("arity matches");
        }
        serve.subscription_sync();
        let snap = serve.poll_subscription(id).expect("registered");
        assert!(snap.complete, "the stream passed the interval end");
        assert!(snap.records.iter().all(|&r| r <= 19));
        let scorer = durable_topk_temporal::LinearScorer::new(vec![0.6, 0.4]);
        let q = DurableQuery { k: 1, tau: 4, interval: Window::new(0, 19) };
        let expected = serve.engine().try_query(Algorithm::THop, &scorer, &q).expect("query");
        assert_eq!(snap.records, expected.records);
        serve.shutdown();
    }

    #[test]
    fn non_monotone_subscriptions_skip_the_gate_but_stay_exact() {
        // Cosine is non-monotone: the skyband gate is unsound for it, so
        // every in-interval arrival must probe — and the answers must
        // still match the full recompute.
        let engine = ShardedEngine::new_live(2, 32, 16);
        let serve = ServeEngine::new(engine, 8, Backpressure::Block);
        let row = |i: usize| [((i * 37) % 101) as f64 + 1.0, ((i * 73) % 97) as f64 + 1.0];
        for i in 0..40 {
            serve.append(&row(i)).expect("arity matches");
        }
        let req = ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery { k: 2, tau: 8, interval: Window::new(0, u32::MAX) },
            scorer: ScorerSpec::Cosine(vec![0.8, 0.2]),
        };
        let id = serve.subscribe(req).expect("valid");
        for i in 40..160 {
            serve.append(&row(i)).expect("arity matches");
        }
        serve.subscription_sync();
        let stats = serve.stats();
        // 120 post-registration arrivals, all in-interval: all must probe.
        assert_eq!(stats.refreshes, 120);
        assert_eq!(stats.fast_path_skips, 0);
        let snap = serve.poll_subscription(id).expect("registered");
        let scorer = durable_topk_temporal::CosineScorer::new(vec![0.8, 0.2]);
        let q = DurableQuery { k: 2, tau: 8, interval: Window::new(0, 159) };
        let expected = serve.engine().try_query(Algorithm::THop, &scorer, &q).expect("query");
        assert_eq!(snap.records, expected.records);
        serve.shutdown();
    }

    #[test]
    fn appends_flow_through_the_serving_engine() {
        let engine = ShardedEngine::new_live(2, 16, 8);
        let serve = ServeEngine::new(engine, 8, Backpressure::Block);
        for i in 0..100usize {
            let id = serve
                .append(&[((i * 7) % 23) as f64, ((i * 3) % 17) as f64])
                .expect("arity matches");
            assert_eq!(id, i as RecordId);
        }
        assert_eq!(
            serve.append(&[1.0]),
            Err(ServeError::Query(QueryError::Arity { expected: 2, got: 1 }))
        );
        serve.quiesce();
        assert_eq!(serve.engine().len(), 100);
        let handle = serve.submit(request(Algorithm::THop, 2, 8, 0, 99)).expect("accepted");
        assert!(handle.wait().is_ok());
        serve.shutdown();
    }
}
