//! The alternative durability-flavored queries of Example I.1.
//!
//! Provided for comparison and for the Fig. 1 case study: tumbling-window
//! top-k (sensitive to window placement) and sliding-window top-k (returns
//! the union over all placements, with the discontinuity artifacts the paper
//! illustrates with Drummond's 29-rebound game).

use crate::oracle::TopKOracle;
use durable_topk_index::{OracleScorer, SkybandBuffer};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// Tumbling-window top-k: partitions `interval` into consecutive τ-length
/// windows starting at `interval.start() + offset` and reports each window's
/// top-k (with ties).
///
/// The `offset` parameter exposes the placement sensitivity the paper
/// criticizes: shifting the grid changes the answer.
///
/// # Panics
/// Panics if `k == 0`, `tau == 0`, or the interval is outside the dataset.
pub fn tumbling_topk<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    k: usize,
    interval: Window,
    tau: Time,
    offset: Time,
) -> Vec<(Window, Vec<RecordId>)> {
    assert!(k > 0, "k must be positive");
    assert!(tau > 0, "tau must be positive");
    let interval = interval.clamp_to(ds.len());
    let mut out = Vec::new();
    let mut lo = interval.start();
    if offset > 0 {
        let first_hi = (interval.start() + offset.min(tau) - 1).min(interval.end());
        let w = Window::new(lo, first_hi);
        out.push((w, ids(oracle.top_k(ds, scorer, k, w).items)));
        if first_hi == interval.end() {
            return out;
        }
        lo = first_hi + 1;
    }
    for w in Window::new(lo, interval.end()).chunks(tau) {
        out.push((w, ids(oracle.top_k(ds, scorer, k, w).items)));
    }
    out
}

/// Sliding-window top-k: the union of `π≤k` over every τ-length window with
/// its right endpoint in `interval`, maintained incrementally.
///
/// Returns the distinct records in arrival order. This is the
/// overwhelmingly-larger answer set of Fig. 1-(4); the paper's footnote-1
/// baseline (post-filtering it down to durable records) is what
/// [`t_base`](crate::algorithms::t_base) implements.
///
/// # Panics
/// Panics if `k == 0`, `tau == 0`, or the interval is outside the dataset.
pub fn sliding_topk_union<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    k: usize,
    interval: Window,
    tau: Time,
) -> Vec<RecordId> {
    assert!(k > 0, "k must be positive");
    assert!(tau > 0, "tau must be positive");
    let interval = interval.clamp_to(ds.len());
    let mut seen = vec![false; ds.len()];
    let mut t = interval.start();
    let mut buffer =
        SkybandBuffer::from_result(k, &oracle.top_k(ds, scorer, k, Window::lookback(t, tau)));
    loop {
        for &(id, _) in buffer.items() {
            seen[id as usize] = true;
        }
        if t == interval.end() {
            break;
        }
        // Slide forward: [t-τ, t] -> [t+1-τ, t+1].
        t += 1;
        let incoming = t;
        let expires = (t as i64 - 1 - tau as i64) >= 0;
        if expires && buffer.contains(t - 1 - tau) {
            buffer = SkybandBuffer::from_result(
                k,
                &oracle.top_k(ds, scorer, k, Window::lookback(t, tau)),
            );
        } else {
            buffer.insert(incoming, scorer.score(ds.row(incoming)));
        }
    }
    (0..ds.len() as RecordId).filter(|&i| seen[i as usize]).collect()
}

fn ids(items: Vec<(RecordId, f64)>) -> Vec<RecordId> {
    let mut v: Vec<RecordId> = items.into_iter().map(|(id, _)| id).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::SingleAttributeScorer;

    fn ds() -> Dataset {
        Dataset::from_rows(1, [[5.0], [1.0], [7.0], [2.0], [6.0], [3.0], [9.0], [0.0]])
    }

    #[test]
    fn tumbling_partitions_and_reports_tops() {
        let ds = ds();
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let out = tumbling_topk(&ds, &oracle, &scorer, 1, Window::new(0, 7), 4, 0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (Window::new(0, 3), vec![2]));
        assert_eq!(out[1], (Window::new(4, 7), vec![6]));
    }

    #[test]
    fn tumbling_offset_changes_answers() {
        let ds = ds();
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let out = tumbling_topk(&ds, &oracle, &scorer, 1, Window::new(0, 7), 4, 2);
        // First (short) window [0,1], then [2,5], then [6,7].
        assert_eq!(out[0], (Window::new(0, 1), vec![0]));
        assert_eq!(out[1], (Window::new(2, 5), vec![2]));
        assert_eq!(out[2], (Window::new(6, 7), vec![6]));
    }

    #[test]
    fn sliding_union_matches_brute_force() {
        let ds = ds();
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        for k in 1..=3usize {
            for tau in [1u32, 2, 3, 7] {
                let got = sliding_topk_union(&ds, &oracle, &scorer, k, Window::new(0, 7), tau);
                let mut expected = vec![false; ds.len()];
                for t in 0..8u32 {
                    let pi = oracle.top_k(&ds, &scorer, k, Window::lookback(t, tau));
                    for (id, _) in pi.items {
                        expected[id as usize] = true;
                    }
                }
                let expected: Vec<RecordId> = (0..8).filter(|&i| expected[i as usize]).collect();
                assert_eq!(got, expected, "k={k} tau={tau}");
            }
        }
    }

    #[test]
    fn sliding_union_is_superset_of_durable_answers() {
        use crate::algorithms::t_hop;
        use crate::query::DurableQuery;
        let ds = ds();
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let q = DurableQuery { k: 2, tau: 3, interval: Window::new(0, 7) };
        let durable = t_hop(&ds, &oracle, &scorer, &q, &mut crate::QueryContext::new());
        let union = sliding_topk_union(&ds, &oracle, &scorer, 2, Window::new(0, 7), 3);
        assert!(durable.records.iter().all(|r| union.contains(r)));
    }
}
