//! Query parameters, results and instrumentation.

use crate::error::QueryError;
use durable_topk_temporal::{RecordId, Time, Window};

/// Parameters of a durable top-k query `DurTop(k, I, τ)`.
///
/// All three are query-time parameters, together with the scoring function's
/// preference vector — none is baked into any index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableQuery {
    /// Rank threshold: a record must be within the top-k of its durability
    /// window.
    pub k: usize,
    /// Durability window length τ (in discrete arrival instants).
    pub tau: Time,
    /// Query interval `I`: only records arriving in `I` are reported.
    pub interval: Window,
}

impl DurableQuery {
    /// Checks the parameters against a dataset of `n` records, returning
    /// the interval clamped to the dataset — the serving-safe counterpart
    /// of [`validate`](DurableQuery::validate).
    pub fn check(&self, n: usize) -> Result<Window, QueryError> {
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        if self.tau == 0 {
            return Err(QueryError::ZeroTau);
        }
        if n == 0 {
            return Err(QueryError::EmptyDataset);
        }
        if (self.interval.start() as usize) >= n {
            return Err(QueryError::IntervalOutOfRange {
                start: self.interval.start(),
                last: (n - 1) as Time,
            });
        }
        Ok(self.interval.clamp_to(n))
    }

    /// Validates the parameters against a dataset of `n` records.
    ///
    /// # Panics
    /// Panics if `k == 0`, `tau == 0`, or the interval lies outside the
    /// dataset. Fallible callers (the serving layer) use
    /// [`check`](DurableQuery::check) instead.
    pub fn validate(&self, n: usize) -> Window {
        // lint: allow(panic) — documented-panic wrapper over check().
        self.check(n).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Why an engine substituted a different execution for the requested one.
///
/// Splitting the old boolean flag into reasons separates *expected*
/// degradations (a non-monotone scorer cannot use skyband pruning; a `τ`
/// beyond the shard overlap is served by the scan-backed exact path) from
/// the one that signals a missing capability — an S-Band request finding
/// no skyband index at all, which a regression gate should fail on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// S-Band was requested but the serving substrate carries no durable
    /// k-skyband index. This is the "index went missing" signal CI gates
    /// on: a correctly configured engine never reports it.
    MissingSkybandIndex,
    /// S-Band was requested with `k` above the skyband build bound; the
    /// candidate superset guarantee no longer holds, so S-Hop serves the
    /// query. Expected when clients exceed the configured bound.
    SkybandBoundExceeded,
    /// S-Band's k-skyband pruning argument requires a monotone scoring
    /// function; S-Hop (which does not) serves non-monotone scorers.
    NonMonotoneScorer,
    /// `τ` exceeded the sharded engine's overlap (`max_tau`), so the query
    /// ran on the ingesting thread against the scan-exact whole-history
    /// oracle instead of the per-shard fan-out — the expected overlap miss
    /// of [`StreamingMonitor::query`](crate::StreamingMonitor::query),
    /// still exact.
    TauBeyondOverlap,
}

impl FallbackReason {
    /// Whether the degradation is an expected consequence of the request
    /// (as opposed to a missing index, which a gate should fail on).
    pub fn is_expected(&self) -> bool {
        !matches!(self, FallbackReason::MissingSkybandIndex)
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::MissingSkybandIndex => "no skyband index; S-Hop served the query",
            FallbackReason::SkybandBoundExceeded => {
                "k exceeds the skyband build bound; S-Hop served the query"
            }
            FallbackReason::NonMonotoneScorer => "non-monotone scorer; S-Hop served the query",
            FallbackReason::TauBeyondOverlap => {
                "tau exceeds the shard overlap; served exactly by the scan-backed oracle"
            }
        })
    }
}

/// Instrumentation of one query execution — the quantities the paper's
/// figures report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Top-k queries issued for durability checks.
    pub durability_checks: u64,
    /// Top-k queries issued to find the next highest-score record (S-Hop's
    /// shaded bars in Fig. 8) or the initial window (T-Base).
    pub refill_queries: u64,
    /// Candidate records considered (|C| for S-Band, sorted records for
    /// S-Base, visited records otherwise).
    pub candidates: u64,
    /// Candidates skipped purely by the blocking mechanism.
    pub blocked_skips: u64,
    /// Physical page reads performed to fault spilled record chunks back
    /// in (always `0` under [`MemoryStorage`](crate::MemoryStorage); under
    /// [`PagedStorage`](crate::PagedStorage) it counts the cold-tier cost
    /// the query actually paid).
    pub cold_page_hits: u64,
    /// Per-shard probes answered from the sealed-shard result cache
    /// (each one skipped its `storage.fetch` and its algorithm run
    /// entirely). Always `0` without a cache configured — see
    /// [`EngineConfig::result_cache`](crate::EngineConfig::result_cache).
    pub cache_hits: u64,
    /// Cacheable per-shard probes that ran because no memoized answer
    /// existed yet (uncacheable probes — boundary pieces, unfingerprintable
    /// scorers, head/pending shards — count as neither hit nor miss).
    pub cache_misses: u64,
    /// Set when the engine substituted a different execution for the
    /// requested one, carrying why (see [`FallbackReason`]); `None` means
    /// the requested algorithm served the query natively.
    pub fallback: Option<FallbackReason>,
}

impl QueryStats {
    /// Total top-k building-block invocations.
    pub fn topk_queries(&self) -> u64 {
        self.durability_checks + self.refill_queries
    }

    /// Whether any substitution happened (the old boolean view).
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Accumulates another execution's counters into this one (used when
    /// merging per-shard results). When shards report different fallback
    /// reasons, the gate-worthy one (a missing index) wins over expected
    /// degradations so a merged answer can never mask it.
    pub fn absorb(&mut self, other: &QueryStats) {
        self.durability_checks += other.durability_checks;
        self.refill_queries += other.refill_queries;
        self.candidates += other.candidates;
        self.blocked_skips += other.blocked_skips;
        self.cold_page_hits += other.cold_page_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.fallback = match (self.fallback, other.fallback) {
            (Some(mine), Some(theirs)) if mine.is_expected() && !theirs.is_expected() => {
                Some(theirs)
            }
            (mine, theirs) => mine.or(theirs),
        };
    }
}

/// The answer to a durable top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// τ-durable records arriving in `I`, in increasing arrival order.
    pub records: Vec<RecordId>,
    /// Execution instrumentation.
    pub stats: QueryStats,
}

impl QueryResult {
    pub(crate) fn new(mut records: Vec<RecordId>, stats: QueryStats) -> Self {
        records.sort_unstable();
        records.dedup();
        Self { records, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_clamps_interval() {
        let q = DurableQuery { k: 1, tau: 5, interval: Window::new(2, 100) };
        assert_eq!(q.validate(10), Window::new(2, 9));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn validate_rejects_zero_k() {
        DurableQuery { k: 0, tau: 1, interval: Window::new(0, 1) }.validate(5);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn validate_rejects_zero_tau() {
        DurableQuery { k: 1, tau: 0, interval: Window::new(0, 1) }.validate(5);
    }

    #[test]
    #[should_panic(expected = "starts past")]
    fn validate_rejects_out_of_range_interval() {
        DurableQuery { k: 1, tau: 1, interval: Window::new(7, 9) }.validate(5);
    }

    #[test]
    fn check_reports_typed_errors_without_panicking() {
        let ok = DurableQuery { k: 1, tau: 5, interval: Window::new(2, 100) };
        assert_eq!(ok.check(10), Ok(Window::new(2, 9)));
        let bad_k = DurableQuery { k: 0, ..ok };
        assert_eq!(bad_k.check(10), Err(QueryError::ZeroK));
        let bad_tau = DurableQuery { tau: 0, ..ok };
        assert_eq!(bad_tau.check(10), Err(QueryError::ZeroTau));
        assert_eq!(ok.check(0), Err(QueryError::EmptyDataset));
        let past = DurableQuery { interval: Window::new(30, 40), ..ok };
        assert_eq!(past.check(10), Err(QueryError::IntervalOutOfRange { start: 30, last: 9 }));
    }

    #[test]
    fn stats_total() {
        let s = QueryStats { durability_checks: 3, refill_queries: 4, ..Default::default() };
        assert_eq!(s.topk_queries(), 7);
    }

    #[test]
    fn absorb_never_masks_a_missing_index_behind_an_expected_reason() {
        // Merge order must not decide whether the gate-worthy reason
        // survives: whichever side carries MissingSkybandIndex wins.
        let missing = QueryStats {
            fallback: Some(FallbackReason::MissingSkybandIndex),
            ..Default::default()
        };
        let expected =
            QueryStats { fallback: Some(FallbackReason::NonMonotoneScorer), ..Default::default() };
        let mut a = expected;
        a.absorb(&missing);
        assert_eq!(a.fallback, Some(FallbackReason::MissingSkybandIndex));
        let mut b = missing;
        b.absorb(&expected);
        assert_eq!(b.fallback, Some(FallbackReason::MissingSkybandIndex));
        // Two expected reasons: the first one set is kept; None absorbs.
        let mut c = expected;
        c.absorb(&QueryStats {
            fallback: Some(FallbackReason::TauBeyondOverlap),
            ..Default::default()
        });
        assert_eq!(c.fallback, Some(FallbackReason::NonMonotoneScorer));
        let mut d = QueryStats::default();
        d.absorb(&expected);
        assert_eq!(d.fallback, Some(FallbackReason::NonMonotoneScorer));
    }

    #[test]
    fn result_sorts_records() {
        let r = QueryResult::new(vec![5, 1, 3], QueryStats::default());
        assert_eq!(r.records, vec![1, 3, 5]);
    }
}
