//! The top-k "building block" abstraction.
//!
//! The paper's algorithms treat the top-k query `Q(u, k, W)` as a black box:
//! *"the novelty and major contribution of our algorithms come from \[their\]
//! ability to reduce and bound the number of invocations of the building
//! block, totally independent of how the building block operates itself."*
//! [`TopKOracle`] is that black box; the durable top-k algorithms are
//! generic over it.
//!
//! The trait is *monomorphized* over the scoring function: every probe
//! resolves the scorer statically, so the per-probe path carries no virtual
//! dispatch, and results land in caller-provided buffers drawn from a
//! [`QueryContext`](crate::QueryContext) — no per-probe allocations either.
//!
//! Two implementations ship with the crate:
//!
//! * [`SegTreeOracle`] — the skyline segment tree of Appendix A (the
//!   production path).
//! * [`ScanOracle`] — a linear scan of the window (the correctness
//!   reference, and the fallback when no index has been built).

use durable_topk_index::{
    scan_top_k_into, AppendableTopKIndex, OracleScorer, OracleScratch, SkylineSegTree, TopKResult,
};
use durable_topk_temporal::{Dataset, Window};
use std::cell::Cell;

/// A building block answering preference top-k queries over time windows.
pub trait TopKOracle {
    /// Answers `Q(u, k, W)` into `out`: the top-k records (with ties of the
    /// k-th score) among records arriving in `w`, best first. Internal
    /// search state comes from `scratch`, so repeated probes allocate
    /// nothing.
    fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    );

    /// Allocating convenience wrapper around
    /// [`top_k_into`](TopKOracle::top_k_into) for one-off probes.
    fn top_k<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
    ) -> TopKResult {
        let mut scratch = OracleScratch::new();
        let mut out = TopKResult::empty();
        self.top_k_into(ds, scorer, k, w, &mut scratch, &mut out);
        out
    }

    /// Number of top-k queries issued since construction or the last
    /// [`reset_counters`](TopKOracle::reset_counters) — the metric every
    /// figure in the paper's evaluation reports.
    fn queries_issued(&self) -> u64;

    /// Resets instrumentation.
    fn reset_counters(&self);
}

/// Oracle backed by the skyline segment tree (paper Appendix A).
#[derive(Debug, Clone)]
pub struct SegTreeOracle {
    tree: SkylineSegTree,
}

impl SegTreeOracle {
    /// Builds the index over the dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(ds: &Dataset) -> Self {
        Self { tree: SkylineSegTree::build(ds) }
    }

    /// Builds with an explicit leaf granularity (ablation experiments).
    pub fn with_leaf_size(ds: &Dataset, leaf_size: usize) -> Self {
        Self { tree: SkylineSegTree::with_leaf_size(ds, leaf_size) }
    }

    /// Wraps an already-built tree — the shard-sealing path, where the
    /// appendable forest collapses into the tree this oracle serves.
    pub fn from_tree(tree: SkylineSegTree) -> Self {
        Self { tree }
    }

    /// Access to the underlying tree (extra instrumentation).
    pub fn tree(&self) -> &SkylineSegTree {
        &self.tree
    }
}

impl TopKOracle for SegTreeOracle {
    fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        self.tree.top_k_with(ds, scorer, k, w, scratch, out);
    }

    fn queries_issued(&self) -> u64 {
        self.tree.counters().queries()
    }

    fn reset_counters(&self) {
        self.tree.counters().reset();
    }
}

/// Oracle backed by a borrowed appendable segment-tree forest — the
/// building block of the mutable *head shard* during live ingestion (see
/// [`ShardedEngine`](crate::ShardedEngine)).
#[derive(Debug)]
pub struct ForestOracle<'a> {
    index: &'a AppendableTopKIndex,
}

impl<'a> ForestOracle<'a> {
    /// Wraps a forest index for use as a durable top-k building block.
    pub fn new(index: &'a AppendableTopKIndex) -> Self {
        Self { index }
    }
}

impl TopKOracle for ForestOracle<'_> {
    fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        self.index.top_k_with(ds, scorer, k, w, scratch, out);
    }

    fn queries_issued(&self) -> u64 {
        self.index.counters().queries()
    }

    fn reset_counters(&self) {
        self.index.counters().reset();
    }
}

/// Naive oracle scanning every record in the window.
#[derive(Debug, Default)]
pub struct ScanOracle {
    queries: Cell<u64>,
}

impl ScanOracle {
    /// Creates the oracle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TopKOracle for ScanOracle {
    fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        _scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        self.queries.set(self.queries.get() + 1);
        scan_top_k_into(ds, scorer, k, w, out);
    }

    fn queries_issued(&self) -> u64 {
        self.queries.get()
    }

    fn reset_counters(&self) {
        self.queries.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::LinearScorer;

    #[test]
    fn oracles_agree_and_count() {
        let ds = Dataset::from_rows(2, [[1.0, 0.0], [3.0, 1.0], [2.0, 5.0], [0.0, 0.0]]);
        let scorer = LinearScorer::new(vec![1.0, 1.0]);
        let seg = SegTreeOracle::build(&ds);
        let scan = ScanOracle::new();
        let w = Window::new(0, 3);
        assert_eq!(seg.top_k(&ds, &scorer, 2, w), scan.top_k(&ds, &scorer, 2, w));
        assert_eq!(seg.queries_issued(), 1);
        assert_eq!(scan.queries_issued(), 1);
        seg.reset_counters();
        scan.reset_counters();
        assert_eq!(seg.queries_issued(), 0);
        assert_eq!(scan.queries_issued(), 0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_buffers() {
        let ds = Dataset::from_rows(1, (0..64).map(|i| [((i * 23) % 17) as f64]));
        let seg = SegTreeOracle::build(&ds);
        let scorer = LinearScorer::new(vec![1.0]);
        let mut scratch = OracleScratch::new();
        let mut out = TopKResult::empty();
        for k in 1..5 {
            for (a, b) in [(0u32, 63u32), (10, 40), (5, 5), (60, 63)] {
                seg.top_k_into(&ds, &scorer, k, Window::new(a, b), &mut scratch, &mut out);
                assert_eq!(out, seg.top_k(&ds, &scorer, k, Window::new(a, b)), "k={k} w={a}:{b}");
            }
        }
    }
}
