//! A time-sharded durable top-k engine with live ingestion.
//!
//! Durable top-k queries decompose naturally along arrival time: a record's
//! durability window `[p.t − τ, p.t]` only looks *backwards*, so a shard
//! that owns records `[lo, hi]` can answer their durability exactly from a
//! sub-dataset extended `max_tau` records to the left — the overlap region
//! supplies every potential blocker without any cross-shard communication.
//!
//! The paper's setting is inherently temporal: records keep arriving in
//! time order. [`ShardedEngine`] therefore treats sharding and ingestion as
//! one system:
//!
//! * **Sealed tail shards** are immutable [`DurableTopKEngine`]s over
//!   contiguous time ranges, each extended `max_tau` records to the left.
//! * **One mutable head shard** receives [`append`](ShardedEngine::append)s,
//!   indexed incrementally by the appendable segment-tree forest
//!   ([`AppendableTopKIndex`]). When the head has accumulated `shard_span`
//!   owned records it is *sealed*: its forest collapses into a regular
//!   segment tree, the head becomes the next tail shard, and a fresh head
//!   starts with the trailing `max_tau` records as left context —
//!   preserving the overlap invariant, so queries stay exact for any
//!   `τ ≤ max_tau` at every point of the ingestion timeline.
//!
//! Queries fan `DurTop(k, I, τ)` out across the shards owning a piece of
//! `I` through the persistent [`WorkerPool`] (no `thread::spawn` on the
//! query path; each worker reuses its own [`QueryContext`]); per-shard
//! answers are mapped back to global record ids and merged. The result is
//! record-for-record identical to an unsharded engine over the same
//! history for every `τ ≤ max_tau`.

use crate::algorithms::{s_base, s_hop, t_base, t_hop, RefillMode};
use crate::context::QueryContext;
use crate::engine::{Algorithm, DurableTopKEngine};
use crate::oracle::{ForestOracle, SegTreeOracle};
use crate::pool::WorkerPool;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::{AppendableTopKIndex, OracleScorer, TopKResult, DEFAULT_LEAF_SIZE};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// One sealed time shard: an engine over `[ext_lo, hi]` that *owns*
/// (reports answers for) `[lo, hi]`.
#[derive(Debug)]
struct Shard {
    engine: DurableTopKEngine,
    /// First global id present in the shard's sub-dataset (context overlap).
    ext_lo: Time,
    /// First global id the shard owns.
    lo: Time,
    /// Last global id the shard owns.
    hi: Time,
}

/// The mutable ingestion shard: `max_tau` records of left context plus
/// every record appended since the last seal, indexed by the appendable
/// forest.
#[derive(Debug)]
struct Head {
    ds: Dataset,
    index: AppendableTopKIndex,
    /// Global id of the head sub-dataset's first row.
    ext_lo: Time,
    /// First global id the head owns (earlier rows are context).
    lo: Time,
}

impl Head {
    /// An empty head whose first owned record will be global id `at`.
    fn empty(dim: usize, leaf_size: usize, at: usize) -> Self {
        Self {
            ds: Dataset::new(dim),
            index: AppendableTopKIndex::new(leaf_size),
            ext_lo: at as Time,
            lo: at as Time,
        }
    }
}

/// A durable top-k engine over contiguous time shards with an appendable
/// head, serving parallel fan-out queries through the persistent worker
/// pool.
#[derive(Debug)]
pub struct ShardedEngine {
    tails: Vec<Shard>,
    head: Head,
    /// Owned records per sealed shard.
    shard_span: usize,
    max_tau: Time,
    len: usize,
    dim: usize,
    /// Skyband build bound applied to shards sealed from now on.
    k_max: Option<usize>,
    /// Leaf granularity of the head forest and sealed trees.
    leaf_size: usize,
}

impl ShardedEngine {
    /// Creates an empty, appendable engine: records arrive via
    /// [`append`](ShardedEngine::append), shards seal every `shard_span`
    /// records, and queries are exact for `τ ≤ max_tau`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `shard_span == 0` or `max_tau == 0`.
    pub fn new_live(dim: usize, shard_span: usize, max_tau: Time) -> Self {
        Self::new_live_with_leaf(dim, shard_span, max_tau, DEFAULT_LEAF_SIZE)
    }

    /// As [`new_live`](ShardedEngine::new_live) with an explicit index
    /// leaf granularity (streaming callers ingesting few records per query
    /// may prefer smaller leaves).
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new_live_with_leaf(
        dim: usize,
        shard_span: usize,
        max_tau: Time,
        leaf_size: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(shard_span > 0, "shard_span must be positive");
        assert!(max_tau > 0, "max_tau must be positive");
        assert!(leaf_size > 0, "leaf size must be positive");
        Self {
            tails: Vec::new(),
            head: Head::empty(dim, leaf_size, 0),
            shard_span,
            max_tau,
            len: 0,
            dim,
            k_max: None,
            leaf_size,
        }
    }

    /// Requests a durable k-skyband index (enabling [`Algorithm::SBand`]
    /// without fallback) on every shard sealed from now on, for
    /// `k <= k_max`.
    pub fn with_skyband_bound(mut self, k_max: usize) -> Self {
        self.k_max = Some(k_max);
        self
    }

    /// Partitions `ds` into `shard_count` contiguous time shards (capped at
    /// the dataset size) and builds each shard's engine in parallel on the
    /// worker pool. The engine stays appendable: new arrivals land in a
    /// fresh head shard primed with the trailing `max_tau` records.
    ///
    /// `max_tau` bounds the durability window length the sharded engine can
    /// serve exactly: every shard keeps `max_tau` records of left context,
    /// so any query with `τ ≤ max_tau` matches the unsharded engine.
    ///
    /// # Panics
    /// Panics if the dataset is empty, `shard_count == 0`, or
    /// `max_tau == 0`.
    pub fn build(ds: &Dataset, shard_count: usize, max_tau: Time) -> Self {
        Self::build_inner(ds, shard_count, max_tau, None)
    }

    /// As [`build`](ShardedEngine::build), additionally constructing each
    /// shard's durable k-skyband index (enabling [`Algorithm::SBand`]) for
    /// `k <= k_max`.
    pub fn build_with_skyband(
        ds: &Dataset,
        shard_count: usize,
        max_tau: Time,
        k_max: usize,
    ) -> Self {
        Self::build_inner(ds, shard_count, max_tau, Some(k_max))
    }

    fn build_inner(ds: &Dataset, shard_count: usize, max_tau: Time, k_max: Option<usize>) -> Self {
        assert!(!ds.is_empty(), "cannot shard an empty dataset");
        assert!(shard_count > 0, "shard_count must be positive");
        assert!(max_tau > 0, "max_tau must be positive");
        let n = ds.len();
        let per_shard = n.div_ceil(shard_count.min(n));
        // Ceil-division can need fewer shards than requested (e.g. 10
        // records across 7 shards -> 2 per shard -> 5 shards); recompute so
        // no degenerate (empty) shard is emitted.
        let shard_count = n.div_ceil(per_shard);

        // Slice the owned ranges, then build every shard engine in
        // parallel on the worker pool: each job copies its extended
        // sub-range and indexes it.
        let ranges: Vec<(Time, Time, Time)> = (0..shard_count)
            .map(|s| {
                let lo = (s * per_shard) as Time;
                let hi = (((s + 1) * per_shard).min(n) - 1) as Time;
                (lo.saturating_sub(max_tau), lo, hi)
            })
            .collect();
        let tails = WorkerPool::global().run_jobs(ranges.len(), ranges.len(), |s, _ctx| {
            let (ext_lo, lo, hi) = ranges[s];
            let mut sub = Dataset::with_capacity(ds.dim(), (hi - ext_lo + 1) as usize);
            for id in ext_lo..=hi {
                sub.push(ds.row(id));
            }
            let mut engine = DurableTopKEngine::new(sub);
            if let Some(k_max) = k_max {
                engine = engine.with_skyband_index(k_max);
            }
            Shard { engine, ext_lo, lo, hi }
        });

        // Prime an empty head with the trailing max_tau records as context.
        let mut engine = Self {
            tails,
            head: Head::empty(ds.dim(), DEFAULT_LEAF_SIZE, n),
            shard_span: per_shard,
            max_tau,
            len: n,
            dim: ds.dim(),
            k_max,
            leaf_size: DEFAULT_LEAF_SIZE,
        };
        engine.head = engine.fresh_head(|i| ds.row(i as Time), n);
        engine
    }

    /// Builds a head whose context is the trailing `max_tau` of the first
    /// `n` global records, read through `row`.
    fn fresh_head<'a>(&self, row: impl Fn(usize) -> &'a [f64], n: usize) -> Head {
        let ctx_len = (self.max_tau as usize).min(n);
        let mut ds = Dataset::with_capacity(self.dim, ctx_len + self.shard_span);
        for i in (n - ctx_len)..n {
            ds.push(row(i));
        }
        let index = AppendableTopKIndex::build(&ds, self.leaf_size);
        Head { ds, index, ext_lo: (n - ctx_len) as Time, lo: n as Time }
    }

    /// Ingests one record, returning its global id. The record lands in
    /// the head shard's forest in amortized polylogarithmic time; every
    /// `shard_span` appends the head seals into an immutable tail shard.
    ///
    /// # Panics
    /// Panics if the attribute arity mismatches.
    pub fn append(&mut self, attrs: &[f64]) -> RecordId {
        assert_eq!(attrs.len(), self.dim, "attribute arity mismatch");
        let id = self.len as RecordId;
        self.head.ds.push(attrs);
        self.head.index.append(&self.head.ds);
        self.len += 1;
        if self.head_owned() >= self.shard_span {
            self.seal_head();
        }
        id
    }

    /// Records currently owned by the mutable head.
    fn head_owned(&self) -> usize {
        self.len - self.head.lo as usize
    }

    /// Freezes the head into a tail shard (collapsing its forest into one
    /// segment tree, no copy of the sub-dataset) and starts a fresh head
    /// whose context is the trailing `max_tau` records.
    fn seal_head(&mut self) {
        let hi = (self.len - 1) as Time;
        let head =
            std::mem::replace(&mut self.head, Head::empty(self.dim, self.leaf_size, self.len));
        let oracle = SegTreeOracle::from_tree(head.index.seal(&head.ds));
        let mut engine = DurableTopKEngine::from_parts(head.ds, oracle);
        if let Some(k_max) = self.k_max {
            engine = engine.with_skyband_index(k_max);
        }
        self.tails.push(Shard { engine, ext_lo: head.ext_lo, lo: head.lo, hi });
        // The sealed sub-dataset always reaches back max_tau records (or to
        // time zero), so its tail is exactly the new head's context.
        let sealed = self.tails.last().expect("just sealed").engine.dataset();
        let base = self.len - sealed.len();
        self.head = self.fresh_head(|i| sealed.row((i - base) as RecordId), self.len);
    }

    /// Number of shards (sealed tails plus the head when it owns records).
    pub fn shard_count(&self) -> usize {
        self.tails.len() + usize::from(self.head_owned() > 0)
    }

    /// Number of sealed (immutable) shards.
    pub fn sealed_shards(&self) -> usize {
        self.tails.len()
    }

    /// Records covered by the sharded engine.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine covers no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest `τ` this engine answers exactly.
    pub fn max_tau(&self) -> Time {
        self.max_tau
    }

    /// Answers `DurTop(k, I, τ)` by fanning out over the shards owning a
    /// piece of `I` through the persistent worker pool (one job and one
    /// reused [`QueryContext`] per shard) and merging the per-shard
    /// answers. Identical to [`DurableTopKEngine::query`] over the same
    /// history for `τ ≤ max_tau`.
    ///
    /// On the mutable head, [`Algorithm::SBand`] is served by S-Hop with
    /// [`QueryStats::fallback`] set (the head carries no skyband index).
    ///
    /// # Panics
    /// Panics on invalid parameters or if `query.tau > self.max_tau()` (the
    /// shard overlap cannot guarantee exactness beyond it).
    pub fn query<S: OracleScorer + Sync + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
    ) -> QueryResult {
        assert!(
            query.tau <= self.max_tau,
            "tau {} exceeds the shard overlap max_tau {}; rebuild with a larger bound",
            query.tau,
            self.max_tau
        );
        query.validate(self.len);
        let interval = query.interval.clamp_to(self.len);

        /// One fan-out unit: a shard (or the head) plus its localized query.
        enum Job<'a> {
            Tail(&'a Shard, DurableQuery),
            Head(DurableQuery),
        }
        let localize = |piece: Window, ext_lo: Time| DurableQuery {
            k: query.k,
            tau: query.tau,
            interval: Window::new(piece.start() - ext_lo, piece.end() - ext_lo),
        };
        let mut jobs: Vec<Job<'_>> = self
            .tails
            .iter()
            .filter_map(|shard| {
                let piece = interval.intersect(Window::new(shard.lo, shard.hi))?;
                Some(Job::Tail(shard, localize(piece, shard.ext_lo)))
            })
            .collect();
        if self.head_owned() > 0 {
            let owned = Window::new(self.head.lo, (self.len - 1) as Time);
            if let Some(piece) = interval.intersect(owned) {
                jobs.push(Job::Head(localize(piece, self.head.ext_lo)));
            }
        }

        let partials =
            WorkerPool::global().run_jobs(jobs.len(), jobs.len(), |i, ctx| match &jobs[i] {
                Job::Tail(shard, local) => shard.engine.query_with(alg, scorer, local, ctx),
                Job::Head(local) => self.query_head(alg, scorer, local, ctx),
            });

        // Merge: map local ids home and concatenate. Shards own disjoint,
        // increasing time ranges, so per-shard sorted answers concatenate
        // into a globally sorted answer set.
        let mut records = Vec::new();
        let mut stats = QueryStats::default();
        for (job, partial) in jobs.iter().zip(partials) {
            let ext_lo = match job {
                Job::Tail(shard, _) => shard.ext_lo,
                Job::Head(_) => self.head.ext_lo,
            };
            records.extend(partial.records.iter().map(|&id| id + ext_lo));
            stats.absorb(&partial.stats);
        }
        QueryResult { records, stats }
    }

    /// Runs a localized query against the head's forest oracle.
    fn query_head<S: OracleScorer + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        local: &DurableQuery,
        ctx: &mut QueryContext,
    ) -> QueryResult {
        let ds = &self.head.ds;
        let oracle = ForestOracle::new(&self.head.index);
        match alg {
            Algorithm::TBase => t_base(ds, &oracle, scorer, local, ctx),
            Algorithm::THop => t_hop(ds, &oracle, scorer, local, ctx),
            Algorithm::SBase => s_base(ds, scorer, local, ctx),
            Algorithm::SHop => s_hop(ds, &oracle, scorer, local, RefillMode::TopK, ctx),
            Algorithm::SHopTop1 => s_hop(ds, &oracle, scorer, local, RefillMode::Top1, ctx),
            Algorithm::SBand => {
                // The mutable head carries no skyband index; serve with
                // S-Hop and flag the substitution, mirroring
                // DurableTopKEngine's graceful degradation.
                let mut result = s_hop(ds, &oracle, scorer, local, RefillMode::TopK, ctx);
                result.stats.fallback = true;
                result
            }
        }
    }

    /// Answers the preference top-k query `Q(u, k, W)` over the whole
    /// sharded history into `out`, drawing scratch from `ctx` — the
    /// building-block view of the engine, used by
    /// [`StreamingMonitor`](crate::StreamingMonitor) for per-arrival
    /// durability probes.
    ///
    /// Exact for **any** window (the owned shard ranges partition the
    /// history; no overlap is needed for a plain top-k).
    ///
    /// # Panics
    /// Panics if `k == 0` or the engine is empty.
    pub fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        k: usize,
        w: Window,
        ctx: &mut QueryContext,
        out: &mut TopKResult,
    ) {
        assert!(k > 0, "k must be positive");
        assert!(self.len > 0, "cannot query an empty engine");
        out.clear();
        if (w.start() as usize) >= self.len {
            return;
        }
        let w = w.clamp_to(self.len);
        let mut merge = std::mem::take(&mut ctx.scored);
        merge.clear();
        for shard in &self.tails {
            if let Some(piece) = w.intersect(Window::new(shard.lo, shard.hi)) {
                let local = Window::new(piece.start() - shard.ext_lo, piece.end() - shard.ext_lo);
                shard.engine.oracle().tree().top_k_with(
                    shard.engine.dataset(),
                    scorer,
                    k,
                    local,
                    &mut ctx.oracle,
                    out,
                );
                merge.extend(out.items.iter().map(|&(id, s)| (id + shard.ext_lo, s)));
            }
        }
        if self.head_owned() > 0 {
            let owned = Window::new(self.head.lo, (self.len - 1) as Time);
            if let Some(piece) = w.intersect(owned) {
                let local =
                    Window::new(piece.start() - self.head.ext_lo, piece.end() - self.head.ext_lo);
                self.head.index.top_k_with(&self.head.ds, scorer, k, local, &mut ctx.oracle, out);
                merge.extend(out.items.iter().map(|&(id, s)| (id + self.head.ext_lo, s)));
            }
        }
        out.clear();
        std::mem::swap(&mut out.items, &mut merge);
        out.finalize_in_place(k);
        ctx.scored = merge;
    }

    /// Allocating convenience wrapper over
    /// [`top_k_into`](ShardedEngine::top_k_into).
    ///
    /// # Panics
    /// Panics if `k == 0` or the engine is empty.
    pub fn top_k<S: OracleScorer + ?Sized>(&self, scorer: &S, k: usize, w: Window) -> TopKResult {
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        self.top_k_into(scorer, k, w, &mut ctx, &mut out);
        out
    }

    /// Cumulative top-k queries issued across all shard oracles (sealed
    /// tails plus the head forest).
    pub fn oracle_queries(&self) -> u64 {
        let tails: u64 = self.tails.iter().map(|s| s.engine.oracle_queries()).sum();
        tails + self.head.index.counters().queries()
    }

    /// Resets instrumentation on every shard.
    pub fn reset_counters(&self) {
        for shard in &self.tails {
            shard.engine.reset_counters();
        }
        self.head.index.counters().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TopKOracle;
    use durable_topk_temporal::LinearScorer;

    fn dataset(n: usize) -> Dataset {
        Dataset::from_rows(2, (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]))
    }

    #[test]
    fn sharded_matches_unsharded_across_shard_counts() {
        let ds = dataset(2_000);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        let q = DurableQuery { k: 4, tau: 150, interval: Window::new(100, 1_899) };
        let expected = flat.query(Algorithm::THop, &scorer, &q);
        for shard_count in [1, 2, 3, 7, 16] {
            let sharded = ShardedEngine::build(&ds, shard_count, 200);
            for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
                let got = sharded.query(alg, &scorer, &q);
                assert_eq!(got.records, expected.records, "shards={shard_count} alg={alg}");
            }
        }
    }

    #[test]
    fn interval_touching_few_shards_only_queries_those() {
        let ds = dataset(1_000);
        let sharded = ShardedEngine::build(&ds, 10, 50);
        sharded.reset_counters();
        let scorer = LinearScorer::uniform(2);
        // Interval inside shard 3's owned range [300, 399].
        let q = DurableQuery { k: 2, tau: 30, interval: Window::new(310, 380) };
        let got = sharded.query(Algorithm::THop, &scorer, &q);
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(got.records, flat.query(Algorithm::THop, &scorer, &q).records);
        // Only shard 3's oracle saw traffic.
        let active: usize = sharded.tails.iter().filter(|s| s.engine.oracle_queries() > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn sband_served_per_shard_with_skyband_indexes() {
        let ds = dataset(1_200);
        let sharded = ShardedEngine::build_with_skyband(&ds, 4, 100, 8);
        let flat = DurableTopKEngine::new(ds).with_skyband_index(8);
        let scorer = LinearScorer::new(vec![0.4, 0.6]);
        let q = DurableQuery { k: 5, tau: 90, interval: Window::new(0, 1_199) };
        let got = sharded.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
        assert!(!got.stats.fallback, "within the build bound no shard falls back");
    }

    #[test]
    #[should_panic(expected = "exceeds the shard overlap")]
    fn tau_beyond_overlap_is_rejected() {
        let ds = dataset(300);
        let sharded = ShardedEngine::build(&ds, 3, 20);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 21, interval: Window::new(0, 299) };
        sharded.query(Algorithm::THop, &scorer, &q);
    }

    #[test]
    fn non_divisible_shard_counts_emit_no_degenerate_shards() {
        // ceil(10/7) = 2 per shard -> only 5 shards are needed; shards 6 and
        // 7 must not materialize as empty (they used to crash build/query).
        let ds = dataset(10);
        let sharded = ShardedEngine::build(&ds, 7, 2);
        assert_eq!(sharded.shard_count(), 5);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 2, tau: 2, interval: Window::new(0, 9) };
        assert_eq!(
            sharded.query(Algorithm::THop, &scorer, &q).records,
            flat.query(Algorithm::THop, &scorer, &q).records
        );
        // A second awkward split: 5 records over 4 shards.
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 4, 1);
        assert_eq!(sharded.shard_count(), 3);
        let flat = DurableTopKEngine::new(ds);
        let q = DurableQuery { k: 1, tau: 1, interval: Window::new(0, 4) };
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn more_shards_than_records_clamps() {
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 64, 3);
        assert_eq!(sharded.shard_count(), 5);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 4) };
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn appends_grow_a_live_engine_that_matches_flat() {
        let ds = dataset(500);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut live = ShardedEngine::new_live(2, 64, 40);
        for id in 0..500u32 {
            live.append(ds.row(id));
        }
        assert_eq!(live.len(), 500);
        // 500 / 64 -> 7 sealed shards + a head owning 52 records.
        assert_eq!(live.sealed_shards(), 7);
        assert_eq!(live.shard_count(), 8);
        let flat = DurableTopKEngine::new(ds);
        for (k, tau, a, b) in [(3usize, 40u32, 0u32, 499u32), (1, 17, 250, 499), (5, 40, 460, 499)]
        {
            let q = DurableQuery { k, tau, interval: Window::new(a, b) };
            for alg in Algorithm::ALL {
                let got = live.query(alg, &scorer, &q);
                let expected = flat.query(alg, &scorer, &q);
                assert_eq!(got.records, expected.records, "alg={alg} q={q:?}");
            }
        }
    }

    #[test]
    fn append_after_build_continues_the_timeline() {
        let ds = dataset(300);
        let mut sharded = ShardedEngine::build(&ds, 3, 30);
        let mut full = ds.clone();
        for i in 300..420usize {
            let row = [((i * 37) % 101) as f64, ((i * 73) % 97) as f64];
            assert_eq!(sharded.append(&row), i as RecordId);
            full.push(&row);
        }
        assert_eq!(sharded.len(), 420);
        let flat = DurableTopKEngine::new(full);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let q = DurableQuery { k: 2, tau: 25, interval: Window::new(150, 419) };
        for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
            assert_eq!(
                sharded.query(alg, &scorer, &q).records,
                flat.query(alg, &scorer, &q).records,
                "alg={alg}"
            );
        }
    }

    #[test]
    fn sealing_preserves_the_overlap_invariant() {
        // Span smaller than max_tau: the sealed sub-dataset is shorter than
        // the overlap early on; context must clamp to the full history.
        let scorer = LinearScorer::uniform(2);
        let mut live = ShardedEngine::new_live(2, 4, 10);
        let mut full = Dataset::new(2);
        for i in 0..40usize {
            let row = [((i * 13) % 17) as f64, ((i * 5) % 11) as f64];
            live.append(&row);
            full.push(&row);
            let n = full.len() as Time;
            let flat = DurableTopKEngine::new(full.clone());
            let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, n - 1) };
            assert_eq!(
                live.query(Algorithm::THop, &scorer, &q).records,
                flat.query(Algorithm::THop, &scorer, &q).records,
                "after {} appends",
                i + 1
            );
        }
    }

    #[test]
    fn sharded_top_k_matches_the_flat_oracle() {
        let ds = dataset(700);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let mut live = ShardedEngine::new_live(2, 100, 50);
        for id in 0..700u32 {
            live.append(ds.row(id));
        }
        let flat = DurableTopKEngine::new(ds.clone());
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        for (k, a, b) in [(1usize, 0u32, 699u32), (4, 350, 360), (3, 95, 105), (2, 680, 699)] {
            live.top_k_into(&scorer, k, Window::new(a, b), &mut ctx, &mut out);
            let expected = flat.oracle().top_k(&ds, &scorer, k, Window::new(a, b));
            assert_eq!(out, expected, "k={k} w=[{a},{b}]");
        }
    }

    #[test]
    fn live_skyband_bound_serves_sealed_shards_without_fallback() {
        let ds = dataset(256);
        let scorer = LinearScorer::new(vec![0.8, 0.2]);
        let mut live = ShardedEngine::new_live(2, 64, 30).with_skyband_bound(4);
        for id in 0..256u32 {
            live.append(ds.row(id));
        }
        assert_eq!(live.sealed_shards(), 4);
        assert_eq!(live.shard_count(), 4, "no owned head records after an exact multiple");
        let q = DurableQuery { k: 3, tau: 20, interval: Window::new(0, 255) };
        let got = live.query(Algorithm::SBand, &scorer, &q);
        assert!(!got.stats.fallback, "sealed shards carry the skyband index");
        let flat = DurableTopKEngine::new(ds).with_skyband_index(4);
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
    }

    #[test]
    #[should_panic(expected = "dataset is empty")]
    fn querying_an_empty_live_engine_is_rejected() {
        let live = ShardedEngine::new_live(2, 8, 4);
        let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 0) };
        live.query(Algorithm::THop, &LinearScorer::uniform(2), &q);
    }
}
