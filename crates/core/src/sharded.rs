//! A time-sharded durable top-k engine.
//!
//! Durable top-k queries decompose naturally along arrival time: a record's
//! durability window `[p.t − τ, p.t]` only looks *backwards*, so a shard
//! that owns records `[lo, hi]` can answer their durability exactly from a
//! sub-dataset extended `max_tau` records to the left — the overlap region
//! supplies every potential blocker without any cross-shard communication.
//!
//! [`ShardedEngine`] partitions one dataset into contiguous time shards,
//! builds an independent [`DurableTopKEngine`] per shard **in parallel**
//! (index construction is the dominant setup cost at production scale), and
//! fans `DurTop(k, I, τ)` out across the shards owning a piece of `I`, each
//! worker running with its own [`QueryContext`]. Per-shard answers are
//! mapped back to global record ids and merged; the result is
//! record-for-record identical to the unsharded engine for every `τ ≤
//! max_tau`.

use crate::context::QueryContext;
use crate::engine::{Algorithm, DurableTopKEngine};
use crate::query::{DurableQuery, QueryResult, QueryStats};
use durable_topk_index::OracleScorer;
use durable_topk_temporal::{Dataset, Time, Window};

/// One contiguous time shard: an engine over `[ext_lo, hi]` that *owns*
/// (reports answers for) `[lo, hi]`.
#[derive(Debug)]
struct Shard {
    engine: DurableTopKEngine,
    /// First global id present in the shard's sub-dataset (context overlap).
    ext_lo: Time,
    /// First global id the shard owns.
    lo: Time,
    /// Last global id the shard owns.
    hi: Time,
}

/// A dataset partitioned into per-shard engines for parallel index build
/// and fan-out queries.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    max_tau: Time,
    len: usize,
}

impl ShardedEngine {
    /// Partitions `ds` into `shard_count` contiguous time shards (capped at
    /// the dataset size) and builds each shard's engine in parallel.
    ///
    /// `max_tau` bounds the durability window length the sharded engine can
    /// serve exactly: every shard keeps `max_tau` records of left context,
    /// so any query with `τ ≤ max_tau` matches the unsharded engine.
    ///
    /// # Panics
    /// Panics if the dataset is empty, `shard_count == 0`, or
    /// `max_tau == 0`.
    pub fn build(ds: &Dataset, shard_count: usize, max_tau: Time) -> Self {
        Self::build_inner(ds, shard_count, max_tau, None)
    }

    /// As [`build`](ShardedEngine::build), additionally constructing each
    /// shard's durable k-skyband index (enabling [`Algorithm::SBand`]) for
    /// `k <= k_max`.
    pub fn build_with_skyband(
        ds: &Dataset,
        shard_count: usize,
        max_tau: Time,
        k_max: usize,
    ) -> Self {
        Self::build_inner(ds, shard_count, max_tau, Some(k_max))
    }

    fn build_inner(ds: &Dataset, shard_count: usize, max_tau: Time, k_max: Option<usize>) -> Self {
        assert!(!ds.is_empty(), "cannot shard an empty dataset");
        assert!(shard_count > 0, "shard_count must be positive");
        assert!(max_tau > 0, "max_tau must be positive");
        let n = ds.len();
        let per_shard = n.div_ceil(shard_count.min(n));
        // Ceil-division can need fewer shards than requested (e.g. 10
        // records across 7 shards -> 2 per shard -> 5 shards); recompute so
        // no degenerate (empty) shard is emitted.
        let shard_count = n.div_ceil(per_shard);

        // Slice the owned ranges, then build every shard engine in parallel:
        // each worker copies its extended sub-range and indexes it.
        let ranges: Vec<(Time, Time, Time)> = (0..shard_count)
            .map(|s| {
                let lo = (s * per_shard) as Time;
                let hi = (((s + 1) * per_shard).min(n) - 1) as Time;
                (lo.saturating_sub(max_tau), lo, hi)
            })
            .collect();
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(ext_lo, lo, hi)| {
                    scope.spawn(move || {
                        let mut sub = Dataset::with_capacity(ds.dim(), (hi - ext_lo + 1) as usize);
                        for id in ext_lo..=hi {
                            sub.push(ds.row(id));
                        }
                        let mut engine = DurableTopKEngine::new(sub);
                        if let Some(k_max) = k_max {
                            engine = engine.with_skyband_index(k_max);
                        }
                        Shard { engine, ext_lo, lo, hi }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        Self { shards, max_tau, len: n }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records covered by the sharded engine.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine covers no records (never true: construction
    /// rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest `τ` this engine answers exactly.
    pub fn max_tau(&self) -> Time {
        self.max_tau
    }

    /// Answers `DurTop(k, I, τ)` by fanning out over the shards owning a
    /// piece of `I` (one thread and one [`QueryContext`] per shard) and
    /// merging the per-shard answers. Identical to
    /// [`DurableTopKEngine::query`] for `τ ≤ max_tau`.
    ///
    /// # Panics
    /// Panics on invalid parameters or if `query.tau > self.max_tau()` (the
    /// shard overlap cannot guarantee exactness beyond it).
    pub fn query<S: OracleScorer + Sync + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
    ) -> QueryResult {
        assert!(
            query.tau <= self.max_tau,
            "tau {} exceeds the shard overlap max_tau {}; rebuild with a larger bound",
            query.tau,
            self.max_tau
        );
        query.validate(self.len);
        let interval = query.interval.clamp_to(self.len);

        // Localize the query per intersecting shard.
        let jobs: Vec<(&Shard, DurableQuery)> = self
            .shards
            .iter()
            .filter_map(|shard| {
                let piece = interval.intersect(Window::new(shard.lo, shard.hi))?;
                let local = DurableQuery {
                    k: query.k,
                    tau: query.tau,
                    interval: Window::new(piece.start() - shard.ext_lo, piece.end() - shard.ext_lo),
                };
                Some((shard, local))
            })
            .collect();

        let partials: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(shard, local)| {
                    scope.spawn(move || {
                        shard.engine.query_with(alg, scorer, local, &mut QueryContext::new())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });

        // Merge: map local ids home and concatenate. Shards own disjoint,
        // increasing time ranges, so per-shard sorted answers concatenate
        // into a globally sorted answer set.
        let mut records = Vec::new();
        let mut stats = QueryStats::default();
        for ((shard, _), partial) in jobs.iter().zip(partials) {
            records.extend(partial.records.iter().map(|&id| id + shard.ext_lo));
            stats.absorb(&partial.stats);
        }
        QueryResult { records, stats }
    }

    /// Cumulative top-k queries issued across all shard oracles.
    pub fn oracle_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.oracle_queries()).sum()
    }

    /// Resets instrumentation on every shard.
    pub fn reset_counters(&self) {
        for shard in &self.shards {
            shard.engine.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::LinearScorer;

    fn dataset(n: usize) -> Dataset {
        Dataset::from_rows(2, (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]))
    }

    #[test]
    fn sharded_matches_unsharded_across_shard_counts() {
        let ds = dataset(2_000);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        let q = DurableQuery { k: 4, tau: 150, interval: Window::new(100, 1_899) };
        let expected = flat.query(Algorithm::THop, &scorer, &q);
        for shard_count in [1, 2, 3, 7, 16] {
            let sharded = ShardedEngine::build(&ds, shard_count, 200);
            for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
                let got = sharded.query(alg, &scorer, &q);
                assert_eq!(got.records, expected.records, "shards={shard_count} alg={alg}");
            }
        }
    }

    #[test]
    fn interval_touching_few_shards_only_queries_those() {
        let ds = dataset(1_000);
        let sharded = ShardedEngine::build(&ds, 10, 50);
        sharded.reset_counters();
        let scorer = LinearScorer::uniform(2);
        // Interval inside shard 3's owned range [300, 399].
        let q = DurableQuery { k: 2, tau: 30, interval: Window::new(310, 380) };
        let got = sharded.query(Algorithm::THop, &scorer, &q);
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(got.records, flat.query(Algorithm::THop, &scorer, &q).records);
        // Only shard 3's oracle saw traffic.
        let active: usize = sharded.shards.iter().filter(|s| s.engine.oracle_queries() > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn sband_served_per_shard_with_skyband_indexes() {
        let ds = dataset(1_200);
        let sharded = ShardedEngine::build_with_skyband(&ds, 4, 100, 8);
        let flat = DurableTopKEngine::new(ds).with_skyband_index(8);
        let scorer = LinearScorer::new(vec![0.4, 0.6]);
        let q = DurableQuery { k: 5, tau: 90, interval: Window::new(0, 1_199) };
        let got = sharded.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
        assert!(!got.stats.fallback, "within the build bound no shard falls back");
    }

    #[test]
    #[should_panic(expected = "exceeds the shard overlap")]
    fn tau_beyond_overlap_is_rejected() {
        let ds = dataset(300);
        let sharded = ShardedEngine::build(&ds, 3, 20);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 21, interval: Window::new(0, 299) };
        sharded.query(Algorithm::THop, &scorer, &q);
    }

    #[test]
    fn non_divisible_shard_counts_emit_no_degenerate_shards() {
        // ceil(10/7) = 2 per shard -> only 5 shards are needed; shards 6 and
        // 7 must not materialize as empty (they used to crash build/query).
        let ds = dataset(10);
        let sharded = ShardedEngine::build(&ds, 7, 2);
        assert_eq!(sharded.shard_count(), 5);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 2, tau: 2, interval: Window::new(0, 9) };
        assert_eq!(
            sharded.query(Algorithm::THop, &scorer, &q).records,
            flat.query(Algorithm::THop, &scorer, &q).records
        );
        // A second awkward split: 5 records over 4 shards.
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 4, 1);
        assert_eq!(sharded.shard_count(), 3);
        let flat = DurableTopKEngine::new(ds);
        let q = DurableQuery { k: 1, tau: 1, interval: Window::new(0, 4) };
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn more_shards_than_records_clamps() {
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 64, 3);
        assert_eq!(sharded.shard_count(), 5);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 4) };
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }
}
