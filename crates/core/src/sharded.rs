//! A time-sharded durable top-k engine with live ingestion.
//!
//! Durable top-k queries decompose naturally along arrival time: a record's
//! durability window `[p.t − τ, p.t]` only looks *backwards*, so a shard
//! that owns records `[lo, hi]` can answer their durability exactly from a
//! sub-dataset extended `max_tau` records to the left — the overlap region
//! supplies every potential blocker without any cross-shard communication.
//!
//! The paper's setting is inherently temporal: records keep arriving in
//! time order. [`ShardedEngine`] therefore treats sharding and ingestion as
//! one system:
//!
//! * **Sealed tail shards** are immutable: a frozen segment-tree oracle,
//!   an optional skyband index, and a record chunk held by the
//!   [`ShardStorage`] backend, over contiguous time ranges each extended
//!   `max_tau` records to the left.
//! * **One mutable head shard** receives [`append`](ShardedEngine::append)s,
//!   indexed incrementally by the appendable segment-tree forest
//!   ([`AppendableTopKIndex`]). When the head has accumulated `shard_span`
//!   owned records it is *sealed*: its forest collapses into a regular
//!   segment tree, the head becomes the next tail shard, and a fresh head
//!   starts with the trailing `max_tau` records as left context —
//!   preserving the overlap invariant, so queries stay exact for any
//!   `τ ≤ max_tau` at every point of the ingestion timeline.
//!
//! Sealing is the one super-constant step of the append path: collapsing a
//! forest rebuilds `O(span)` records' worth of index. Under
//! [`SealMode::Background`] (the default) the collapse runs as a detached
//! job on the persistent [`WorkerPool`] instead of stalling the appender:
//! the outgoing head is frozen into an immutable *pending* snapshot that
//! keeps serving queries through its forest — exactly as it did a moment
//! earlier as the head — until the sealed tree is published and a later
//! `append` (or [`quiesce`](ShardedEngine::quiesce)) splices it into the
//! tail list. Answers are bit-identical either way; only the append tail
//! latency changes.
//!
//! Queries fan `DurTop(k, I, τ)` out across the shards owning a piece of
//! `I` through the persistent [`WorkerPool`] (no `thread::spawn` on the
//! query path; each worker reuses its own [`QueryContext`]); per-shard
//! answers are mapped back to global record ids and merged. The result is
//! record-for-record identical to an unsharded engine over the same
//! history for every `τ ≤ max_tau`.

use crate::check::LockClass;
use crate::config::EngineConfig;
use crate::context::QueryContext;
use crate::engine::{run_algorithm, Algorithm};
use crate::error::{BuildError, QueryError};
use crate::oracle::{ForestOracle, SegTreeOracle, TopKOracle};
use crate::pool::WorkerPool;
use crate::query::{DurableQuery, QueryResult, QueryStats};
use crate::result_cache::{next_shard_gen, CacheKey, ShardResultCache};
use crate::storage::{ChunkId, MemoryStorage, ShardStorage};
use crate::sync::OnceSlot;
use durable_topk_index::{
    AppendableTopKIndex, DurableSkybandIndex, OracleScorer, TopKResult, DEFAULT_LEAF_SIZE,
};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One sealed time shard: a collapsed segment-tree oracle plus optional
/// frozen skyband index over `[ext_lo, hi]`, *owning* (reporting answers
/// for) `[lo, hi]`. The record chunk itself lives in the engine's
/// [`ShardStorage`] backend, reached by handle — under
/// [`PagedStorage`](crate::PagedStorage) it may be spilled to pages and is
/// faulted back in transparently at query time.
#[derive(Debug)]
struct Shard {
    oracle: SegTreeOracle,
    skyband: Option<DurableSkybandIndex>,
    /// Handle to the shard's record chunk (`[ext_lo, hi]`) in storage.
    chunk: ChunkId,
    /// First global id present in the shard's sub-dataset (context overlap).
    ext_lo: Time,
    /// First global id the shard owns.
    lo: Time,
    /// Last global id the shard owns.
    hi: Time,
    /// Process-global, never-reused generation id keying this shard's
    /// entries in the [`ShardResultCache`]: re-sealing, storage migration
    /// or any other shard replacement stamps a fresh generation, so stale
    /// memoized answers can never be probed again.
    generation: u64,
}

/// The mutable ingestion shard: `max_tau` records of left context plus
/// every record appended since the last seal, indexed by the appendable
/// forest.
#[derive(Debug)]
struct Head {
    ds: Dataset,
    index: AppendableTopKIndex,
    /// Global id of the head sub-dataset's first row.
    ext_lo: Time,
    /// First global id the head owns (earlier rows are context).
    lo: Time,
}

impl Head {
    /// An empty head whose first owned record will be global id `at`; with
    /// a skyband bound, the head forest maintains the durable k-skyband
    /// incrementally so S-Band serves natively from the first append.
    fn empty(
        dim: usize,
        leaf_size: usize,
        merge_cap: usize,
        at: usize,
        k_max: Option<usize>,
    ) -> Self {
        let ds = Dataset::new(dim);
        let mut index = AppendableTopKIndex::new(leaf_size).with_merge_limit(merge_cap);
        if let Some(k_max) = k_max {
            index = index.with_skyband_bound(&ds, k_max);
        }
        Self { ds, index, ext_lo: at as Time, lo: at as Time }
    }
}

/// How the `O(span)` head-seal collapse is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealMode {
    /// Hand the collapse to the persistent worker pool as a detached job;
    /// the appender returns immediately and the outgoing head keeps
    /// serving queries until the sealed tail is published. The default.
    Background,
    /// Collapse inline on the appending thread — the pre-serving behavior,
    /// kept for tail-latency comparison benchmarks and fully deterministic
    /// shard-state tests.
    Synchronous,
}

/// An immutable snapshot of a head handed off for sealing: the data plus
/// its forest, still serving queries while the background collapse runs.
#[derive(Debug)]
struct HeadSnapshot {
    /// The head's sub-dataset, shared: the seal job, the storage backend
    /// and any history view all reference this one copy — freezing a head
    /// never duplicates its records.
    ds: Arc<Dataset>,
    index: AppendableTopKIndex,
    ext_lo: Time,
    lo: Time,
    hi: Time,
    k_max: Option<usize>,
}

/// The completion slot a seal publishes into. The producer side is
/// claim-based ([`OnceSlot::claim`]): either the background pool job or a
/// waiter that steals the work seals the snapshot, never both.
type SealSlot = OnceSlot<Result<Shard, String>>;

/// A seal in flight: the snapshot still serving queries, and the slot the
/// sealed shard will land in.
#[derive(Debug)]
struct PendingSeal {
    snap: Arc<HeadSnapshot>,
    slot: Arc<SealSlot>,
}

impl PendingSeal {
    /// Produces and publishes this seal on the calling thread if no one
    /// else claimed it yet — the work-stealing path that keeps waiters
    /// independent of pool scheduling (a waiter may hold a lock the pool
    /// workers are queued behind; depending on the pool to get to the
    /// seal job first would deadlock).
    fn steal_if_unclaimed(&self, storage: &Arc<dyn ShardStorage>) {
        if self.slot.claim() {
            self.slot.publish(Ok(run_seal(&self.snap, storage)));
        }
    }
}

/// Collapses a head snapshot into a sealed tail shard and hands its record
/// chunk to the storage backend (where [`PagedStorage`](crate::PagedStorage)
/// serializes it to pages — on this seal path, never on the append hot
/// path). Runs on a pool worker under [`SealMode::Background`], inline
/// otherwise; either way the snapshot is read-only and the produced shard
/// is published whole.
fn run_seal(snap: &HeadSnapshot, storage: &Arc<dyn ShardStorage>) -> Shard {
    let tree = snap.index.seal_ref(&snap.ds);
    let oracle = SegTreeOracle::from_tree(tree);
    let skyband = snap.index.sealed_skyband().or_else(|| {
        // The incremental maintainer (attached when the skyband bound was
        // set before this head's records arrived) freezes its known
        // durations for free; the legacy path builds statically.
        snap.k_max.map(|k_max| DurableSkybandIndex::build(&snap.ds, k_max))
    });
    let chunk = storage.store(Arc::clone(&snap.ds));
    Shard {
        oracle,
        skyband,
        chunk,
        ext_lo: snap.ext_lo,
        lo: snap.lo,
        hi: snap.hi,
        generation: next_shard_gen(),
    }
}

/// Head-forest merge cap for a given shard span (see
/// [`ShardedEngine::merge_cap`]).
fn merge_cap_for(shard_span: usize) -> usize {
    (shard_span / 4).clamp(64, 65_536)
}

/// Most seals allowed in flight before the appender waits for the oldest —
/// bounds the extra memory of pending snapshots (each holds one shard's
/// data plus forest) without stalling the common case.
const MAX_PENDING_SEALS: usize = 4;

/// A durable top-k engine over contiguous time shards with an appendable
/// head, serving parallel fan-out queries through the persistent worker
/// pool.
#[derive(Debug)]
pub struct ShardedEngine {
    tails: Vec<Shard>,
    /// Where sealed tails' record chunks live — [`MemoryStorage`] by
    /// default, [`PagedStorage`](crate::PagedStorage) to spill old chunks
    /// to pager-backed pages (see [`EngineConfig::storage`] and
    /// [`migrate_storage`](ShardedEngine::migrate_storage)).
    storage: Arc<dyn ShardStorage>,
    /// Seals handed to the pool, oldest first. Their snapshots keep
    /// serving queries until a `&mut self` call splices the published
    /// shards into `tails`.
    pending: Vec<PendingSeal>,
    head: Head,
    /// Owned records per sealed shard.
    shard_span: usize,
    max_tau: Time,
    len: usize,
    dim: usize,
    /// Skyband build bound applied to shards sealed from now on.
    k_max: Option<usize>,
    /// Leaf granularity of the head forest and sealed trees.
    leaf_size: usize,
    /// Explicit head-forest merge cascade cap; `None` derives it from the
    /// shard span (see [`merge_cap_for`]).
    merge_cap_override: Option<usize>,
    seal_mode: SealMode,
    /// Memoized immutable per-shard answers, consulted by the `Job::Tail`
    /// arm of [`try_query`](ShardedEngine::try_query) before `storage.fetch`
    /// — `None` (the default) disables memoization entirely.
    result_cache: Option<Arc<ShardResultCache>>,
    /// Head rotations so far — bumps when a full head is handed off for
    /// sealing. Standing-query consumers compare epochs across appends to
    /// notice a freshly crossed shard boundary.
    seal_epoch: u64,
    /// Oracle queries served by seal snapshots that have since been
    /// integrated (their forest counters die with them; this keeps
    /// [`oracle_queries`](ShardedEngine::oracle_queries) monotone).
    retired_queries: std::sync::atomic::AtomicU64,
}

impl ShardedEngine {
    /// Creates an empty, appendable engine: records arrive via
    /// [`append`](ShardedEngine::append), shards seal every `shard_span`
    /// records (in the background by default), and queries are exact for
    /// `τ ≤ max_tau`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `shard_span == 0` or `max_tau == 0`. Fallible
    /// callers use [`try_new_live`](ShardedEngine::try_new_live).
    pub fn new_live(dim: usize, shard_span: usize, max_tau: Time) -> Self {
        // lint: allow(panic) — documented-panic wrapper over try_new_live.
        Self::try_new_live(dim, shard_span, max_tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`new_live`](ShardedEngine::new_live), returning a typed error
    /// instead of panicking on zero parameters.
    pub fn try_new_live(dim: usize, shard_span: usize, max_tau: Time) -> Result<Self, BuildError> {
        Self::try_new_live_inner(dim, shard_span, max_tau, DEFAULT_LEAF_SIZE, None)
    }

    /// As [`new_live`](ShardedEngine::new_live) with an explicit index
    /// leaf granularity.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    #[deprecated(note = "use `EngineConfig::new(dim, span, max_tau).leaf_size(n).build()`")]
    pub fn new_live_with_leaf(
        dim: usize,
        shard_span: usize,
        max_tau: Time,
        leaf_size: usize,
    ) -> Self {
        Self::try_new_live_inner(dim, shard_span, max_tau, leaf_size, None)
            // lint: allow(panic) — documented-panic wrapper.
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// As `new_live_with_leaf`, returning a typed error instead of
    /// panicking on zero parameters.
    #[deprecated(note = "use `EngineConfig::new(dim, span, max_tau).leaf_size(n).build()`")]
    pub fn try_new_live_with_leaf(
        dim: usize,
        shard_span: usize,
        max_tau: Time,
        leaf_size: usize,
    ) -> Result<Self, BuildError> {
        Self::try_new_live_inner(dim, shard_span, max_tau, leaf_size, None)
    }

    fn try_new_live_inner(
        dim: usize,
        shard_span: usize,
        max_tau: Time,
        leaf_size: usize,
        merge_cap_override: Option<usize>,
    ) -> Result<Self, BuildError> {
        if dim == 0 {
            return Err(BuildError::ZeroParam("dim"));
        }
        if shard_span == 0 {
            return Err(BuildError::ZeroParam("shard_span"));
        }
        if max_tau == 0 {
            return Err(BuildError::ZeroParam("max_tau"));
        }
        if leaf_size == 0 {
            return Err(BuildError::ZeroParam("leaf size"));
        }
        let merge_cap = merge_cap_override.unwrap_or_else(|| merge_cap_for(shard_span));
        Ok(Self {
            tails: Vec::new(),
            storage: Arc::new(MemoryStorage::new()),
            pending: Vec::new(),
            head: Head::empty(dim, leaf_size, merge_cap, 0, None),
            shard_span,
            max_tau,
            len: 0,
            dim,
            k_max: None,
            leaf_size,
            merge_cap_override,
            seal_mode: SealMode::Background,
            result_cache: None,
            seal_epoch: 0,
            retired_queries: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Builds an empty live engine from a validated [`EngineConfig`] — the
    /// implementation behind [`EngineConfig::build`].
    pub(crate) fn live_from_config(cfg: EngineConfig) -> Result<Self, BuildError> {
        let mut engine = Self::try_new_live_inner(
            cfg.dim,
            cfg.shard_span,
            cfg.max_tau,
            cfg.leaf_size,
            cfg.merge_limit,
        )?;
        if let Some(k_max) = cfg.skyband_bound {
            engine.set_skyband_bound(k_max);
        }
        engine.seal_mode = cfg.seal_mode;
        if let Some(storage) = cfg.storage {
            engine = engine.migrate_storage(storage);
        }
        if let Some(bytes) = cfg.result_cache_bytes {
            engine.set_result_cache(bytes);
        }
        Ok(engine)
    }

    /// Builds a batch engine over `ds` from a validated [`EngineConfig`] —
    /// the implementation behind [`EngineConfig::build_from`].
    pub(crate) fn batch_from_config(
        cfg: EngineConfig,
        ds: &Dataset,
        shard_count: usize,
    ) -> Result<Self, BuildError> {
        let mut engine = Self::build_inner(
            ds,
            shard_count,
            cfg.max_tau,
            cfg.skyband_bound,
            cfg.leaf_size,
            cfg.merge_limit,
            cfg.seal_mode,
        )?;
        if let Some(storage) = cfg.storage {
            engine = engine.migrate_storage(storage);
        }
        if let Some(bytes) = cfg.result_cache_bytes {
            engine.set_result_cache(bytes);
        }
        Ok(engine)
    }

    /// Requests durable k-skyband maintenance (serving [`Algorithm::SBand`]
    /// natively, without fallback) for `k <= k_max`: the mutable head —
    /// including any records it already holds — gains an incrementally
    /// maintained skyband candidate set, and every shard sealed from now
    /// on freezes those durations into its static index.
    pub(crate) fn set_skyband_bound(&mut self, k_max: usize) {
        self.k_max = Some(k_max);
        let index = std::mem::replace(&mut self.head.index, AppendableTopKIndex::new(1));
        self.head.index = index.with_skyband_bound(&self.head.ds, k_max);
    }

    /// Enables the sealed-shard result cache with the given byte budget
    /// (see [`EngineConfig::result_cache`]).
    pub(crate) fn set_result_cache(&mut self, budget_bytes: usize) {
        self.result_cache = Some(Arc::new(ShardResultCache::new(budget_bytes)));
    }

    /// Selects how head seals are executed (see [`SealMode`]).
    pub(crate) fn set_seal_mode(&mut self, mode: SealMode) {
        self.seal_mode = mode;
    }

    /// As `set_skyband_bound`, chainable.
    #[deprecated(note = "use `EngineConfig::new(..).skyband_bound(k_max).build()`")]
    pub fn with_skyband_bound(mut self, k_max: usize) -> Self {
        self.set_skyband_bound(k_max);
        self
    }

    /// Selects how head seals are executed (default:
    /// [`SealMode::Background`]).
    #[deprecated(note = "use `EngineConfig::new(..).seal_mode(mode).build()`")]
    pub fn with_seal_mode(mut self, mode: SealMode) -> Self {
        self.set_seal_mode(mode);
        self
    }

    /// Switches the storage backend for sealed tails' record chunks
    /// (default: [`MemoryStorage`]). Existing chunks are migrated —
    /// in-flight seals are waited out, then every tail's chunk is
    /// re-stored into the new backend in time order, so a
    /// [`PagedStorage`](crate::PagedStorage) backend immediately starts
    /// spilling everything older than its residency window. Answers are
    /// bit-identical under every backend; only residency and query-time
    /// page faults ([`QueryStats::cold_page_hits`]) change.
    ///
    /// This is the mid-life migration API; to start an engine on a
    /// non-default backend, use [`EngineConfig::storage`] instead.
    pub fn migrate_storage(mut self, storage: Arc<dyn ShardStorage>) -> Self {
        self.quiesce();
        for shard in &mut self.tails {
            let (chunk, _) = self.storage.fetch(shard.chunk);
            shard.chunk = storage.store(chunk);
            // A migrated shard is a new cache identity: its old entries
            // age out of the result cache instead of being flushed.
            shard.generation = next_shard_gen();
        }
        self.storage = storage;
        self
    }

    /// As [`migrate_storage`](ShardedEngine::migrate_storage), under the
    /// builder-chain name.
    #[deprecated(note = "use `EngineConfig::new(..).storage(backend).build()` at construction, \
                         or `migrate_storage` for a mid-life backend switch")]
    pub fn with_storage(self, storage: Arc<dyn ShardStorage>) -> Self {
        self.migrate_storage(storage)
    }

    /// The storage backend holding the sealed tails' record chunks (its
    /// [`stats`](ShardStorage::stats) expose residency and cold-read
    /// counters; [`resident_bytes`](ShardStorage::resident_bytes) the
    /// decoded footprint).
    pub fn storage(&self) -> &Arc<dyn ShardStorage> {
        &self.storage
    }

    /// Enables the sealed-shard result cache with the given byte budget:
    /// per-shard partial answers of [`try_query`](ShardedEngine::try_query)
    /// over a sealed tail's full owned range are memoized by
    /// `(shard generation, algorithm, scorer fingerprint, k, τ)` and
    /// replayed on repeat probes — *before* `storage.fetch`, so a hit
    /// never faults spilled pages back in. Answers are bit-identical with
    /// and without the cache at every point of the ingestion timeline;
    /// scorers without a structural fingerprint (opaque
    /// [`ScorerSpec::Custom`](crate::ScorerSpec) closures) bypass it.
    #[deprecated(note = "use `EngineConfig::new(..).result_cache(bytes).build()`")]
    pub fn with_result_cache(mut self, budget_bytes: usize) -> Self {
        self.set_result_cache(budget_bytes);
        self
    }

    /// The sealed-shard result cache, if one is configured (its
    /// [`stats`](ShardResultCache::stats) expose hits, misses, evictions
    /// and residency).
    pub fn result_cache(&self) -> Option<&Arc<ShardResultCache>> {
        self.result_cache.as_ref()
    }

    /// Partitions `ds` into `shard_count` contiguous time shards (capped at
    /// the dataset size) and builds each shard's engine in parallel on the
    /// worker pool. The engine stays appendable: new arrivals land in a
    /// fresh head shard primed with the trailing `max_tau` records.
    ///
    /// `max_tau` bounds the durability window length the sharded engine can
    /// serve exactly: every shard keeps `max_tau` records of left context,
    /// so any query with `τ ≤ max_tau` matches the unsharded engine.
    ///
    /// Errors on an empty dataset or a zero parameter instead of
    /// panicking, so a serving front end can surface bad input as a
    /// response rather than an abort.
    pub fn build(ds: &Dataset, shard_count: usize, max_tau: Time) -> Result<Self, BuildError> {
        Self::build_inner(
            ds,
            shard_count,
            max_tau,
            None,
            DEFAULT_LEAF_SIZE,
            None,
            SealMode::Background,
        )
    }

    /// As [`build`](ShardedEngine::build), additionally constructing each
    /// shard's durable k-skyband index (enabling [`Algorithm::SBand`]) for
    /// `k <= k_max`.
    pub fn build_with_skyband(
        ds: &Dataset,
        shard_count: usize,
        max_tau: Time,
        k_max: usize,
    ) -> Result<Self, BuildError> {
        Self::build_inner(
            ds,
            shard_count,
            max_tau,
            Some(k_max),
            DEFAULT_LEAF_SIZE,
            None,
            SealMode::Background,
        )
    }

    fn build_inner(
        ds: &Dataset,
        shard_count: usize,
        max_tau: Time,
        k_max: Option<usize>,
        leaf_size: usize,
        merge_cap_override: Option<usize>,
        seal_mode: SealMode,
    ) -> Result<Self, BuildError> {
        if ds.is_empty() {
            return Err(BuildError::EmptyDataset);
        }
        if shard_count == 0 {
            return Err(BuildError::ZeroParam("shard_count"));
        }
        if max_tau == 0 {
            return Err(BuildError::ZeroParam("max_tau"));
        }
        if leaf_size == 0 {
            return Err(BuildError::ZeroParam("leaf size"));
        }
        let n = ds.len();
        let per_shard = n.div_ceil(shard_count.min(n));
        // Ceil-division can need fewer shards than requested (e.g. 10
        // records across 7 shards -> 2 per shard -> 5 shards); recompute so
        // no degenerate (empty) shard is emitted.
        let shard_count = n.div_ceil(per_shard);

        // Slice the owned ranges, then build every shard engine in
        // parallel on the worker pool: each job copies its extended
        // sub-range and indexes it.
        let ranges: Vec<(Time, Time, Time)> = (0..shard_count)
            .map(|s| {
                let lo = (s * per_shard) as Time;
                let hi = (((s + 1) * per_shard).min(n) - 1) as Time;
                (lo.saturating_sub(max_tau), lo, hi)
            })
            .collect();
        let parts = WorkerPool::global().run_jobs(ranges.len(), ranges.len(), |s, _ctx| {
            let (ext_lo, _lo, hi) = ranges[s];
            let mut sub = Dataset::with_capacity(ds.dim(), (hi - ext_lo + 1) as usize);
            for id in ext_lo..=hi {
                sub.push(ds.row(id));
            }
            let oracle = SegTreeOracle::build(&sub);
            let skyband = k_max.map(|k_max| DurableSkybandIndex::build(&sub, k_max));
            (Arc::new(sub), oracle, skyband)
        });
        // Store the chunks sequentially after the parallel index build so
        // chunk ids land in time order — under a paged backend that keeps
        // the *newest* shards resident and spills the oldest first.
        let storage: Arc<dyn ShardStorage> = Arc::new(MemoryStorage::new());
        let tails = parts
            .into_iter()
            .zip(&ranges)
            .map(|((sub, oracle, skyband), &(ext_lo, lo, hi))| Shard {
                oracle,
                skyband,
                chunk: storage.store(sub),
                ext_lo,
                lo,
                hi,
                generation: next_shard_gen(),
            })
            .collect();

        // Prime an empty head with the trailing max_tau records as context.
        let head_cap = merge_cap_override.unwrap_or_else(|| merge_cap_for(per_shard));
        let mut engine = Self {
            tails,
            storage,
            pending: Vec::new(),
            head: Head::empty(ds.dim(), leaf_size, head_cap, n, k_max),
            shard_span: per_shard,
            max_tau,
            len: n,
            dim: ds.dim(),
            k_max,
            leaf_size,
            merge_cap_override,
            seal_mode,
            result_cache: None,
            seal_epoch: 0,
            retired_queries: std::sync::atomic::AtomicU64::new(0),
        };
        engine.head = engine.fresh_head(|i| ds.row(i as Time), n);
        Ok(engine)
    }

    /// Largest tree the head forest's merge cascade may build. The head
    /// is sealed (rebuilt into one balanced tree, off the append path)
    /// every `shard_span` records anyway, so merges beyond a fraction of
    /// the span are wasted work *and* the dominant append-latency spike;
    /// capping them bounds the worst single append at an `O(span/4)`
    /// rebuild. [`EngineConfig::merge_limit`] overrides the derived value.
    fn merge_cap(&self) -> usize {
        self.merge_cap_override.unwrap_or_else(|| merge_cap_for(self.shard_span))
    }

    /// Builds a head whose context is the trailing `max_tau` of the first
    /// `n` global records, read through `row`.
    fn fresh_head<'a>(&self, row: impl Fn(usize) -> &'a [f64], n: usize) -> Head {
        let ctx_len = (self.max_tau as usize).min(n);
        let mut ds = Dataset::with_capacity(self.dim, ctx_len + self.shard_span);
        for i in (n - ctx_len)..n {
            ds.push(row(i));
        }
        let mut index =
            AppendableTopKIndex::build(&ds, self.leaf_size).with_merge_limit(self.merge_cap());
        if let Some(k_max) = self.k_max {
            index = index.with_skyband_bound(&ds, k_max);
        }
        Head { ds, index, ext_lo: (n - ctx_len) as Time, lo: n as Time }
    }

    /// Ingests one record, returning its global id. The record lands in
    /// the head shard's forest in amortized polylogarithmic time; every
    /// `shard_span` appends the head is handed off for sealing (a
    /// background pool job by default — see [`SealMode`]), so the append
    /// path itself never pays the `O(span)` collapse.
    ///
    /// # Panics
    /// Panics if the attribute arity mismatches.
    pub fn append(&mut self, attrs: &[f64]) -> RecordId {
        assert_eq!(attrs.len(), self.dim, "attribute arity mismatch");
        // Splice in any seals the pool finished since the last call —
        // O(1) amortized, keeps the pending list short.
        self.integrate_ready();
        let id = self.len as RecordId;
        self.head.ds.push(attrs);
        self.head.index.append(&self.head.ds);
        self.len += 1;
        if self.head_owned() >= self.shard_span {
            self.hand_off_seal();
        }
        id
    }

    /// Records currently owned by the mutable head.
    fn head_owned(&self) -> usize {
        self.len - self.head.lo as usize
    }

    /// Freezes the full head into an immutable pending snapshot, hands the
    /// `O(span)` collapse to the worker pool (or runs it inline under
    /// [`SealMode::Synchronous`]), and starts a fresh head whose context is
    /// the trailing `max_tau` records. The snapshot keeps serving queries
    /// until the sealed shard is published and integrated.
    fn hand_off_seal(&mut self) {
        self.seal_epoch += 1;
        // Backpressure: never hold more than a few snapshots' worth of
        // extra memory. Waiting here is rare (the pool seals far faster
        // than `span` records usually arrive).
        while self.pending.len() >= MAX_PENDING_SEALS {
            self.integrate_front_blocking();
        }
        let hi = (self.len - 1) as Time;
        let merge_cap = self.merge_cap();
        let head = std::mem::replace(
            &mut self.head,
            Head::empty(self.dim, self.leaf_size, merge_cap, self.len, self.k_max),
        );
        let snap = Arc::new(HeadSnapshot {
            ds: Arc::new(head.ds),
            index: head.index,
            ext_lo: head.ext_lo,
            lo: head.lo,
            hi,
            k_max: self.k_max,
        });
        // The outgoing head's sub-dataset always reaches back max_tau
        // records (or to time zero), so its tail is exactly the new head's
        // context.
        let base = snap.ext_lo as usize;
        self.head = self.fresh_head(|i| snap.ds.row((i - base) as RecordId), self.len);

        let slot = Arc::new(SealSlot::new(LockClass::SealSlot));
        match self.seal_mode {
            SealMode::Background => {
                let job_snap = Arc::clone(&snap);
                let job_slot = Arc::clone(&slot);
                let job_storage = Arc::clone(&self.storage);
                let submitted = WorkerPool::global().submit(move |_ctx| {
                    // A waiter may have stolen the seal while this job sat
                    // in the pool queue; produce only if we claim first.
                    if job_slot.claim() {
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| run_seal(&job_snap, &job_storage)))
                                .map_err(|_| "background seal panicked".to_string());
                        job_slot.publish(outcome);
                    }
                });
                if !submitted && slot.claim() {
                    // Pool shutting down: seal inline rather than leak an
                    // unfulfillable slot.
                    slot.publish(Ok(run_seal(&snap, &self.storage)));
                }
            }
            SealMode::Synchronous => {
                slot.claim();
                slot.publish(Ok(run_seal(&snap, &self.storage)));
            }
        }
        self.pending.push(PendingSeal { snap, slot });
        if self.seal_mode == SealMode::Synchronous {
            self.integrate_ready();
        }
    }

    /// Splices every already-published seal (oldest first) into the tail
    /// list. Stops at the first still-running seal: tails must stay in
    /// time order.
    fn integrate_ready(&mut self) {
        while !self.pending.is_empty() {
            let Some(outcome) = self.pending[0].slot.try_take() else { break };
            let sealed = self.pending.remove(0);
            self.integrate(sealed, outcome);
        }
    }

    /// Retires a completed seal into the tail list, carrying the
    /// snapshot's query counters over so cumulative instrumentation never
    /// goes backwards when the snapshot (and its forest counters) drops.
    fn integrate(&mut self, sealed: PendingSeal, outcome: Result<Shard, String>) {
        self.retired_queries.fetch_add(
            sealed.snap.index.counters().queries(),
            std::sync::atomic::Ordering::Relaxed,
        );
        let shard = outcome.unwrap_or_else(|_| run_seal(&sealed.snap, &self.storage));
        self.tails.push(shard);
    }

    /// Integrates the oldest pending seal, producing it on this thread if
    /// the pool has not started it yet (work stealing — see
    /// [`PendingSeal::steal_if_unclaimed`]). Never depends on pool
    /// progress: the callers hold locks that pool workers may be queued
    /// behind (e.g. the serving engine's write lock while every worker
    /// waits on its read side), so merely *waiting* for the pool here
    /// could deadlock the process. If the pool job already claimed the
    /// seal it is actively running on snapshot-only data and publishes
    /// promptly; a failed (panicked) job is redone inline from the still-
    /// whole snapshot.
    fn integrate_front_blocking(&mut self) {
        let sealed = self.pending.remove(0);
        sealed.steal_if_unclaimed(&self.storage);
        let outcome = sealed.slot.take_blocking();
        self.integrate(sealed, outcome);
    }

    /// Waits for every in-flight background seal and splices the results
    /// into the tail list. Queries do not need this — pending snapshots
    /// serve exactly — but deterministic shard-state inspection and
    /// orderly teardown do.
    pub fn quiesce(&mut self) {
        while !self.pending.is_empty() {
            self.integrate_front_blocking();
        }
    }

    /// Number of shards (sealed tails, seals in flight, plus the head when
    /// it owns records).
    pub fn shard_count(&self) -> usize {
        self.sealed_shards() + usize::from(self.head_owned() > 0)
    }

    /// Number of sealed shards: integrated tails plus seals still in
    /// flight (their snapshots are already immutable).
    pub fn sealed_shards(&self) -> usize {
        self.tails.len() + self.pending.len()
    }

    /// Seals currently in flight on the worker pool.
    pub fn pending_seals(&self) -> usize {
        self.pending.len()
    }

    /// Records covered by the sharded engine.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine covers no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Attribute arity of the engine's records.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The largest `τ` this engine answers exactly.
    pub fn max_tau(&self) -> Time {
        self.max_tau
    }

    /// Head rotations so far: increments every time a full head is handed
    /// off for sealing. The subscription layer compares this across
    /// appends to notice a freshly crossed shard boundary and re-anchor
    /// standing queries that straddle it.
    pub fn seal_epoch(&self) -> u64 {
        self.seal_epoch
    }

    /// The owned `[lo, hi]` record range of every shard in time order:
    /// integrated tails, then in-flight seal snapshots, then the mutable
    /// head when it owns records. Ranges are disjoint, contiguous, and
    /// cover `[0, len)`; each shard additionally holds up to `max_tau`
    /// records of left context, which is an implementation detail of
    /// exactness and not reported here. This is the routing table a
    /// scatter-gather coordinator works from.
    pub fn shard_ranges(&self) -> Vec<(Time, Time)> {
        let mut ranges: Vec<(Time, Time)> =
            self.tails.iter().map(|shard| (shard.lo, shard.hi)).collect();
        ranges.extend(self.pending.iter().map(|p| (p.snap.lo, p.snap.hi)));
        if self.head_owned() > 0 {
            ranges.push((self.head.lo, (self.len - 1) as Time));
        }
        ranges
    }

    /// The newest record's durable k-skyband duration at the level
    /// serving `k`, read from the head forest's incremental maintainer.
    ///
    /// This is the per-arrival verdict the S-Band structures already
    /// computed on append, repurposed as a zero-change gate for standing
    /// queries: for a *monotone* scorer, a duration `< τ` proves the
    /// arrival is beaten by at least `k` records inside its own look-back
    /// window — the same superset argument [`Algorithm::SBand`] relies on
    /// — so no standing `DurTop(k', I, τ')` with `k' ≤ k`, `τ' ≥` the
    /// duration can admit it. The head maintainer sees at least `max_tau`
    /// records of left context, and truncation only *overestimates* a
    /// duration, so a reading below `τ ≤ max_tau` is always sound.
    ///
    /// Returns `None` when no skyband bound is configured, `k` exceeds
    /// it, or no record has arrived yet — callers must then run the full
    /// bounded probe instead.
    pub fn arrival_skyband_duration(&self, k: usize) -> Option<Time> {
        let maintainer = self.head.index.skyband()?.maintainer();
        if maintainer.is_empty() || maintainer.len() != self.head.ds.len() {
            return None;
        }
        let level = maintainer.levels().iter().position(|&lk| lk >= k)?;
        maintainer.durations(level).last().copied()
    }

    /// Answers `DurTop(k, I, τ)` by fanning out over the shards owning a
    /// piece of `I` through the persistent worker pool (one job and one
    /// reused [`QueryContext`] per shard) and merging the per-shard
    /// answers. Identical to
    /// [`DurableTopKEngine::query`](crate::DurableTopKEngine::query) over the same
    /// history for `τ ≤ max_tau`.
    ///
    /// With a skyband bound configured ([`EngineConfig::skyband_bound`] /
    /// [`build_with_skyband`](ShardedEngine::build_with_skyband)),
    /// [`Algorithm::SBand`] runs natively everywhere — sealed tails,
    /// snapshots whose background seal is still in flight, and the mutable
    /// head (whose forest maintains its k-skyband incrementally) — so
    /// [`QueryStats::fallback`] stays `None` at every point of the
    /// ingestion timeline for `k` within the bound.
    ///
    /// # Panics
    /// Panics on invalid parameters or if `query.tau > self.max_tau()` (the
    /// shard overlap cannot guarantee exactness beyond it). Serving
    /// callers use [`try_query`](ShardedEngine::try_query), which returns
    /// these conditions as typed [`QueryError`]s instead.
    pub fn query<S: OracleScorer + Sync + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
    ) -> QueryResult {
        // lint: allow(panic) — documented-panic wrapper over try_query.
        self.try_query(alg, scorer, query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`query`](ShardedEngine::query): every condition
    /// reachable from request input (`τ` beyond the overlap, zero `k`/`τ`,
    /// an empty engine, an interval past the history) comes back as a
    /// [`QueryError`] instead of a panic, so a serving worker can fail one
    /// request without dying.
    pub fn try_query<S: OracleScorer + Sync + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
    ) -> Result<QueryResult, QueryError> {
        if query.tau > self.max_tau {
            return Err(QueryError::TauExceedsOverlap { tau: query.tau, max_tau: self.max_tau });
        }
        let interval = query.check(self.len)?;

        /// One fan-out unit: a shard (sealed, sealing, or the head) plus
        /// its localized query.
        enum Job<'a> {
            Tail(&'a Shard, DurableQuery),
            Sealing(&'a HeadSnapshot, DurableQuery),
            Head(DurableQuery),
        }
        let localize = |piece: Window, ext_lo: Time| DurableQuery {
            k: query.k,
            tau: query.tau,
            interval: Window::new(piece.start() - ext_lo, piece.end() - ext_lo),
        };
        let mut jobs: Vec<Job<'_>> = self
            .tails
            .iter()
            .filter_map(|shard| {
                let piece = interval.intersect(Window::new(shard.lo, shard.hi))?;
                Some(Job::Tail(shard, localize(piece, shard.ext_lo)))
            })
            .collect();
        for pending in &self.pending {
            let snap = pending.snap.as_ref();
            if let Some(piece) = interval.intersect(Window::new(snap.lo, snap.hi)) {
                jobs.push(Job::Sealing(snap, localize(piece, snap.ext_lo)));
            }
        }
        if self.head_owned() > 0 {
            let owned = Window::new(self.head.lo, (self.len - 1) as Time);
            if let Some(piece) = interval.intersect(owned) {
                jobs.push(Job::Head(localize(piece, self.head.ext_lo)));
            }
        }

        // One fingerprint per query, not per shard: `None` (no cache, or
        // an unfingerprintable scorer) makes every tail probe bypass the
        // cache — neither a hit nor a miss.
        let scorer_fp = self.result_cache.as_ref().and_then(|_| scorer.fingerprint());

        let partials =
            WorkerPool::global().run_jobs(jobs.len(), jobs.len(), |i, ctx| match &jobs[i] {
                Job::Tail(shard, local) => {
                    // A sealed tail's answer over its FULL owned range is a
                    // pure function of (shard, alg, scorer, k, τ) — consult
                    // the result cache before touching storage, so a hit
                    // never faults spilled pages back in. Boundary pieces
                    // (the query interval clips the owned range) always
                    // probe: their answers depend on the interval, which is
                    // deliberately not part of the key.
                    let full_range = Window::new(shard.lo - shard.ext_lo, shard.hi - shard.ext_lo);
                    let cached = match (&self.result_cache, scorer_fp) {
                        (Some(cache), Some(fp)) if local.interval == full_range => {
                            let key = CacheKey {
                                shard_gen: shard.generation,
                                alg,
                                scorer: fp,
                                k: local.k,
                                tau: local.tau,
                            };
                            if let Some(hit) = cache.get(&key) {
                                return hit;
                            }
                            Some((cache, key))
                        }
                        _ => None,
                    };
                    // Resident chunks come back as a free Arc clone; a
                    // spilled one faults its pages in, and the query's
                    // stats carry the physical reads it paid.
                    let (chunk, cold) = self.storage.fetch(shard.chunk);
                    let mut result = run_algorithm(
                        &chunk,
                        &shard.oracle,
                        shard.skyband.as_ref(),
                        alg,
                        scorer,
                        local,
                        ctx,
                    );
                    if let Some((cache, key)) = cached {
                        // Snapshot before the cold-read accounting below: a
                        // future hit skips storage, so it must replay with
                        // zero cold-page hits.
                        cache.insert(key, &result.records, result.stats);
                        result.stats.cache_misses += 1;
                    }
                    result.stats.cold_page_hits += cold;
                    result
                }
                Job::Sealing(snap, local) => {
                    query_forest(&snap.ds, &snap.index, alg, scorer, local, ctx)
                }
                Job::Head(local) => {
                    query_forest(&self.head.ds, &self.head.index, alg, scorer, local, ctx)
                }
            });

        // Merge: map local ids home and concatenate. Shards own disjoint,
        // increasing time ranges, so per-shard sorted answers concatenate
        // into a globally sorted answer set. One exact reservation up
        // front instead of per-shard growth doublings.
        let total: usize = partials.iter().map(|p| p.records.len()).sum();
        let mut records = Vec::with_capacity(total);
        let mut stats = QueryStats::default();
        for (job, partial) in jobs.iter().zip(partials) {
            let ext_lo = match job {
                Job::Tail(shard, _) => shard.ext_lo,
                Job::Sealing(snap, _) => snap.ext_lo,
                Job::Head(_) => self.head.ext_lo,
            };
            records.extend(partial.records.iter().map(|&id| id + ext_lo));
            stats.absorb(&partial.stats);
        }
        Ok(QueryResult { records, stats })
    }

    /// Answers the preference top-k query `Q(u, k, W)` over the whole
    /// sharded history into `out`, drawing scratch from `ctx` — the
    /// building-block view of the engine, used by
    /// [`StreamingMonitor`](crate::StreamingMonitor) for per-arrival
    /// durability probes.
    ///
    /// Exact for **any** window (the owned shard ranges partition the
    /// history; no overlap is needed for a plain top-k).
    ///
    /// # Panics
    /// Panics if `k == 0` or the engine is empty.
    pub fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        k: usize,
        w: Window,
        ctx: &mut QueryContext,
        out: &mut TopKResult,
    ) {
        assert!(k > 0, "k must be positive");
        assert!(self.len > 0, "cannot query an empty engine");
        out.clear();
        if (w.start() as usize) >= self.len {
            return;
        }
        let w = w.clamp_to(self.len);
        let mut merge = std::mem::take(&mut ctx.scored);
        merge.clear();
        for shard in &self.tails {
            if let Some(piece) = w.intersect(Window::new(shard.lo, shard.hi)) {
                let local = Window::new(piece.start() - shard.ext_lo, piece.end() - shard.ext_lo);
                // The building-block path has no per-query stats channel,
                // so cold reads accumulate in the context's scratch;
                // callers drain them into `QueryStats::cold_page_hits` via
                // `QueryContext::take_cold_page_hits`.
                let (chunk, cold) = self.storage.fetch(shard.chunk);
                ctx.cold_page_hits += cold;
                shard.oracle.tree().top_k_with(&chunk, scorer, k, local, &mut ctx.oracle, out);
                merge.reserve(out.items.len());
                merge.extend(out.items.iter().map(|&(id, s)| (id + shard.ext_lo, s)));
            }
        }
        for pending in &self.pending {
            let snap = pending.snap.as_ref();
            if let Some(piece) = w.intersect(Window::new(snap.lo, snap.hi)) {
                let local = Window::new(piece.start() - snap.ext_lo, piece.end() - snap.ext_lo);
                snap.index.top_k_with(&snap.ds, scorer, k, local, &mut ctx.oracle, out);
                merge.reserve(out.items.len());
                merge.extend(out.items.iter().map(|&(id, s)| (id + snap.ext_lo, s)));
            }
        }
        if self.head_owned() > 0 {
            let owned = Window::new(self.head.lo, (self.len - 1) as Time);
            if let Some(piece) = w.intersect(owned) {
                let local =
                    Window::new(piece.start() - self.head.ext_lo, piece.end() - self.head.ext_lo);
                self.head.index.top_k_with(&self.head.ds, scorer, k, local, &mut ctx.oracle, out);
                merge.reserve(out.items.len());
                merge.extend(out.items.iter().map(|&(id, s)| (id + self.head.ext_lo, s)));
            }
        }
        out.clear();
        std::mem::swap(&mut out.items, &mut merge);
        out.finalize_in_place(k);
        ctx.scored = merge;
    }

    /// Allocating convenience wrapper over
    /// [`top_k_into`](ShardedEngine::top_k_into).
    ///
    /// # Panics
    /// Panics if `k == 0` or the engine is empty.
    pub fn top_k<S: OracleScorer + ?Sized>(&self, scorer: &S, k: usize, w: Window) -> TopKResult {
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        self.top_k_into(scorer, k, w, &mut ctx, &mut out);
        out
    }

    /// Appends the attribute rows of global records `[from, len)` to
    /// `out`, reading sealed tails through the storage backend (spilled
    /// chunks are faulted in), then in-flight seal snapshots, then the
    /// mutable head — in global time order.
    ///
    /// This is how [`StreamingMonitor`](crate::StreamingMonitor) keeps a
    /// contiguous history view for its τ-overlap scan fallback without
    /// holding a second permanent copy of every record. Wall-clock stamps
    /// are not carried over (the view is attribute rows keyed by arrival
    /// id, which is all the scan-exact algorithms read).
    pub fn copy_history_into(&self, out: &mut Dataset, from: usize) {
        for shard in &self.tails {
            if (shard.hi as usize) < from {
                continue;
            }
            let (chunk, _cold) = self.storage.fetch(shard.chunk);
            for id in from.max(shard.lo as usize)..=shard.hi as usize {
                out.push(chunk.row((id - shard.ext_lo as usize) as RecordId));
            }
        }
        for pending in &self.pending {
            let snap = pending.snap.as_ref();
            if (snap.hi as usize) < from {
                continue;
            }
            for id in from.max(snap.lo as usize)..=snap.hi as usize {
                out.push(snap.ds.row((id - snap.ext_lo as usize) as RecordId));
            }
        }
        if self.head_owned() > 0 {
            for id in from.max(self.head.lo as usize)..self.len {
                out.push(self.head.ds.row((id - self.head.ext_lo as usize) as RecordId));
            }
        }
    }

    /// Cumulative top-k queries issued across all shard oracles (sealed
    /// tails, sealing snapshots — including ones that have since
    /// integrated — plus the head forest). Monotone until
    /// [`reset_counters`](ShardedEngine::reset_counters).
    pub fn oracle_queries(&self) -> u64 {
        let tails: u64 = self.tails.iter().map(|s| s.oracle.queries_issued()).sum();
        let sealing: u64 = self.pending.iter().map(|p| p.snap.index.counters().queries()).sum();
        let retired = self.retired_queries.load(std::sync::atomic::Ordering::Relaxed);
        tails + sealing + retired + self.head.index.counters().queries()
    }

    /// Resets instrumentation on every shard.
    pub fn reset_counters(&self) {
        for shard in &self.tails {
            shard.oracle.reset_counters();
        }
        for pending in &self.pending {
            pending.snap.index.counters().reset();
        }
        self.retired_queries.store(0, std::sync::atomic::Ordering::Relaxed);
        self.head.index.counters().reset();
    }
}

/// Runs a localized query against a forest-indexed sub-dataset (the
/// mutable head, or a pending snapshot whose seal is still collapsing).
fn query_forest<S: OracleScorer + ?Sized>(
    ds: &Dataset,
    index: &AppendableTopKIndex,
    alg: Algorithm,
    scorer: &S,
    local: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult {
    // The forest's incrementally-maintained skyband serves S-Band natively
    // at every point of the append timeline; the shared dispatch degrades
    // for exactly the same request-level reasons the sealed engine does,
    // so both substrates classify identically.
    let oracle = ForestOracle::new(index);
    run_algorithm(ds, &oracle, index.skyband(), alg, scorer, local, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DurableTopKEngine;
    use crate::storage::PagedStorage;
    use durable_topk_temporal::LinearScorer;

    fn dataset(n: usize) -> Dataset {
        Dataset::from_rows(2, (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]))
    }

    #[test]
    fn sharded_matches_unsharded_across_shard_counts() {
        let ds = dataset(2_000);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        let q = DurableQuery { k: 4, tau: 150, interval: Window::new(100, 1_899) };
        let expected = flat.query(Algorithm::THop, &scorer, &q);
        for shard_count in [1, 2, 3, 7, 16] {
            let sharded = ShardedEngine::build(&ds, shard_count, 200).expect("build");
            for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
                let got = sharded.query(alg, &scorer, &q);
                assert_eq!(got.records, expected.records, "shards={shard_count} alg={alg}");
            }
        }
    }

    #[test]
    fn interval_touching_few_shards_only_queries_those() {
        let ds = dataset(1_000);
        let sharded = ShardedEngine::build(&ds, 10, 50).expect("build");
        sharded.reset_counters();
        let scorer = LinearScorer::uniform(2);
        // Interval inside shard 3's owned range [300, 399].
        let q = DurableQuery { k: 2, tau: 30, interval: Window::new(310, 380) };
        let got = sharded.query(Algorithm::THop, &scorer, &q);
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(got.records, flat.query(Algorithm::THop, &scorer, &q).records);
        // Only shard 3's oracle saw traffic.
        let active: usize = sharded.tails.iter().filter(|s| s.oracle.queries_issued() > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn sband_served_per_shard_with_skyband_indexes() {
        let ds = dataset(1_200);
        let sharded = ShardedEngine::build_with_skyband(&ds, 4, 100, 8).expect("build");
        let flat = DurableTopKEngine::new(ds).with_skyband_index(8);
        let scorer = LinearScorer::new(vec![0.4, 0.6]);
        let q = DurableQuery { k: 5, tau: 90, interval: Window::new(0, 1_199) };
        let got = sharded.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
        assert!(got.stats.fallback.is_none(), "within the build bound no shard falls back");
    }

    #[test]
    #[should_panic(expected = "exceeds the shard overlap")]
    fn tau_beyond_overlap_is_rejected() {
        let ds = dataset(300);
        let sharded = ShardedEngine::build(&ds, 3, 20).expect("build");
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 21, interval: Window::new(0, 299) };
        sharded.query(Algorithm::THop, &scorer, &q);
    }

    #[test]
    fn try_query_reports_bad_requests_as_typed_errors() {
        let ds = dataset(300);
        let sharded = ShardedEngine::build(&ds, 3, 20).expect("build");
        let scorer = LinearScorer::uniform(2);
        let base = DurableQuery { k: 1, tau: 5, interval: Window::new(0, 299) };
        let over = DurableQuery { tau: 21, ..base };
        assert_eq!(
            sharded.try_query(Algorithm::THop, &scorer, &over).unwrap_err(),
            QueryError::TauExceedsOverlap { tau: 21, max_tau: 20 }
        );
        let zero_k = DurableQuery { k: 0, ..base };
        assert_eq!(
            sharded.try_query(Algorithm::THop, &scorer, &zero_k).unwrap_err(),
            QueryError::ZeroK
        );
        let past = DurableQuery { interval: Window::new(900, 950), ..base };
        assert_eq!(
            sharded.try_query(Algorithm::THop, &scorer, &past).unwrap_err(),
            QueryError::IntervalOutOfRange { start: 900, last: 299 }
        );
        // The engine still serves after every rejection.
        assert!(sharded.try_query(Algorithm::THop, &scorer, &base).is_ok());
    }

    #[test]
    fn build_rejects_degenerate_inputs_without_panicking() {
        assert_eq!(
            ShardedEngine::build(&Dataset::new(2), 3, 10).unwrap_err(),
            BuildError::EmptyDataset
        );
        let ds = dataset(10);
        assert_eq!(
            ShardedEngine::build(&ds, 0, 10).unwrap_err(),
            BuildError::ZeroParam("shard_count")
        );
        assert_eq!(ShardedEngine::build(&ds, 3, 0).unwrap_err(), BuildError::ZeroParam("max_tau"));
        assert_eq!(
            ShardedEngine::try_new_live(2, 0, 4).unwrap_err(),
            BuildError::ZeroParam("shard_span")
        );
        assert_eq!(ShardedEngine::try_new_live(0, 8, 4).unwrap_err(), BuildError::ZeroParam("dim"));
    }

    #[test]
    fn non_divisible_shard_counts_emit_no_degenerate_shards() {
        // ceil(10/7) = 2 per shard -> only 5 shards are needed; shards 6 and
        // 7 must not materialize as empty (they used to crash build/query).
        let ds = dataset(10);
        let sharded = ShardedEngine::build(&ds, 7, 2).expect("build");
        assert_eq!(sharded.shard_count(), 5);
        let flat = DurableTopKEngine::new(ds.clone());
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 2, tau: 2, interval: Window::new(0, 9) };
        assert_eq!(
            sharded.query(Algorithm::THop, &scorer, &q).records,
            flat.query(Algorithm::THop, &scorer, &q).records
        );
        // A second awkward split: 5 records over 4 shards.
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 4, 1).expect("build");
        assert_eq!(sharded.shard_count(), 3);
        let flat = DurableTopKEngine::new(ds);
        let q = DurableQuery { k: 1, tau: 1, interval: Window::new(0, 4) };
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn more_shards_than_records_clamps() {
        let ds = dataset(5);
        let sharded = ShardedEngine::build(&ds, 64, 3).expect("build");
        assert_eq!(sharded.shard_count(), 5);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 4) };
        let flat = DurableTopKEngine::new(ds);
        assert_eq!(
            sharded.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn appends_grow_a_live_engine_that_matches_flat() {
        let ds = dataset(500);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let mut live = ShardedEngine::new_live(2, 64, 40);
        for id in 0..500u32 {
            live.append(ds.row(id));
        }
        assert_eq!(live.len(), 500);
        // 500 / 64 -> 7 sealed shards + a head owning 52 records.
        assert_eq!(live.sealed_shards(), 7);
        assert_eq!(live.shard_count(), 8);
        let flat = DurableTopKEngine::new(ds);
        for (k, tau, a, b) in [(3usize, 40u32, 0u32, 499u32), (1, 17, 250, 499), (5, 40, 460, 499)]
        {
            let q = DurableQuery { k, tau, interval: Window::new(a, b) };
            for alg in Algorithm::ALL {
                let got = live.query(alg, &scorer, &q);
                let expected = flat.query(alg, &scorer, &q);
                assert_eq!(got.records, expected.records, "alg={alg} q={q:?}");
            }
        }
        // Quiescing (waiting out the background seals) changes which
        // substrate serves each piece, never the answers.
        live.quiesce();
        assert_eq!(live.pending_seals(), 0);
        let q = DurableQuery { k: 3, tau: 40, interval: Window::new(0, 499) };
        assert_eq!(
            live.query(Algorithm::THop, &scorer, &q).records,
            flat.query(Algorithm::THop, &scorer, &q).records
        );
    }

    #[test]
    fn background_and_synchronous_sealing_agree() {
        let ds = dataset(400);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let mut background = ShardedEngine::new_live(2, 32, 24);
        let mut synchronous = EngineConfig::new(2, 32, 24)
            .seal_mode(SealMode::Synchronous)
            .build()
            .expect("config builds");
        for id in 0..400u32 {
            background.append(ds.row(id));
            synchronous.append(ds.row(id));
            if id % 37 == 5 {
                let q = DurableQuery { k: 2, tau: 20, interval: Window::new(0, id) };
                assert_eq!(
                    background.query(Algorithm::THop, &scorer, &q).records,
                    synchronous.query(Algorithm::THop, &scorer, &q).records,
                    "after {} appends",
                    id + 1
                );
            }
        }
        // Synchronous mode never leaves seals in flight.
        assert_eq!(synchronous.pending_seals(), 0);
        // Cumulative instrumentation survives integration: the queries a
        // pending snapshot served must not vanish when its sealed shard
        // replaces it.
        let before_quiesce = background.oracle_queries();
        background.quiesce();
        assert!(
            background.oracle_queries() >= before_quiesce,
            "oracle_queries must stay monotone across seal integration"
        );
        assert_eq!(background.sealed_shards(), synchronous.sealed_shards());
    }

    #[test]
    fn append_after_build_continues_the_timeline() {
        let ds = dataset(300);
        let mut sharded = ShardedEngine::build(&ds, 3, 30).expect("build");
        let mut full = ds.clone();
        for i in 300..420usize {
            let row = [((i * 37) % 101) as f64, ((i * 73) % 97) as f64];
            assert_eq!(sharded.append(&row), i as RecordId);
            full.push(&row);
        }
        assert_eq!(sharded.len(), 420);
        let flat = DurableTopKEngine::new(full);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let q = DurableQuery { k: 2, tau: 25, interval: Window::new(150, 419) };
        for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
            assert_eq!(
                sharded.query(alg, &scorer, &q).records,
                flat.query(alg, &scorer, &q).records,
                "alg={alg}"
            );
        }
    }

    #[test]
    fn sealing_preserves_the_overlap_invariant() {
        // Span smaller than max_tau: the sealed sub-dataset is shorter than
        // the overlap early on; context must clamp to the full history.
        let scorer = LinearScorer::uniform(2);
        let mut live = ShardedEngine::new_live(2, 4, 10);
        let mut full = Dataset::new(2);
        for i in 0..40usize {
            let row = [((i * 13) % 17) as f64, ((i * 5) % 11) as f64];
            live.append(&row);
            full.push(&row);
            let n = full.len() as Time;
            let flat = DurableTopKEngine::new(full.clone());
            let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, n - 1) };
            assert_eq!(
                live.query(Algorithm::THop, &scorer, &q).records,
                flat.query(Algorithm::THop, &scorer, &q).records,
                "after {} appends",
                i + 1
            );
        }
    }

    #[test]
    fn sharded_top_k_matches_the_flat_oracle() {
        let ds = dataset(700);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let mut live = ShardedEngine::new_live(2, 100, 50);
        for id in 0..700u32 {
            live.append(ds.row(id));
        }
        let flat = DurableTopKEngine::new(ds.clone());
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        for (k, a, b) in [(1usize, 0u32, 699u32), (4, 350, 360), (3, 95, 105), (2, 680, 699)] {
            live.top_k_into(&scorer, k, Window::new(a, b), &mut ctx, &mut out);
            let expected = flat.oracle().top_k(&ds, &scorer, k, Window::new(a, b));
            assert_eq!(out, expected, "k={k} w=[{a},{b}]");
        }
    }

    #[test]
    fn live_skyband_bound_serves_every_substrate_without_fallback() {
        let ds = dataset(256);
        let scorer = LinearScorer::new(vec![0.8, 0.2]);
        let mut live = EngineConfig::new(2, 64, 30).skyband_bound(4).build().expect("config");
        let q = DurableQuery { k: 3, tau: 20, interval: Window::new(0, 255) };
        for id in 0..256u32 {
            live.append(ds.row(id));
        }
        assert_eq!(live.sealed_shards(), 4);
        assert_eq!(live.shard_count(), 4, "no owned head records after an exact multiple");
        let flat = DurableTopKEngine::new(ds.clone()).with_skyband_index(4);
        // Snapshots whose background seal is still in flight serve S-Band
        // natively through their forest's incremental skyband — no
        // quiesce needed for a fallback-free answer.
        let got = live.query(Algorithm::SBand, &scorer, &q);
        assert!(got.stats.fallback.is_none(), "in-flight seals serve S-Band natively");
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
        // Once integrated, the sealed shards carry the frozen skyband.
        live.quiesce();
        let got = live.query(Algorithm::SBand, &scorer, &q);
        assert!(got.stats.fallback.is_none(), "sealed shards carry the skyband index");
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
    }

    #[test]
    fn grown_head_serves_sband_natively_at_every_prefix() {
        // Span larger than the run: every record stays in the mutable
        // head, the regime the S-Hop fallback used to own.
        let ds = dataset(120);
        let scorer = LinearScorer::new(vec![0.35, 0.65]);
        let mut live = EngineConfig::new(2, 1_000, 25).skyband_bound(4).build().expect("config");
        let flat_ref = |n: usize| DurableTopKEngine::new(dataset(n)).with_skyband_index(4);
        for id in 0..120u32 {
            live.append(ds.row(id));
            if id % 17 == 3 {
                let q = DurableQuery { k: 3, tau: 12, interval: Window::new(0, id) };
                let got = live.query(Algorithm::SBand, &scorer, &q);
                assert!(
                    got.stats.fallback.is_none(),
                    "head must serve S-Band natively at prefix {}",
                    id + 1
                );
                let flat = flat_ref(id as usize + 1);
                assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
            }
        }
        // Out-of-bound k still degrades gracefully, with the right reason.
        let q = DurableQuery { k: 9, tau: 12, interval: Window::new(0, 119) };
        let got = live.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.stats.fallback, Some(crate::FallbackReason::SkybandBoundExceeded));
    }

    #[test]
    fn paged_storage_serves_identical_answers_from_spilled_tails() {
        let ds = dataset(600);
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        let mut live = ShardedEngine::new_live(2, 64, 32);
        for id in 0..600u32 {
            live.append(ds.row(id));
        }
        live.quiesce();
        // Keep only the newest chunk decoded: everything older must be
        // served by faulting pages back in.
        let live =
            live.migrate_storage(Arc::new(PagedStorage::with_temp_file(1).expect("paged backend")));
        assert!(
            live.storage().stats().spilled_chunks >= 2,
            "spill_after=1 must leave most tails spilled"
        );
        let flat = DurableTopKEngine::new(ds.clone());
        let q = DurableQuery { k: 3, tau: 30, interval: Window::new(0, 599) };
        for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
            let got = live.query(alg, &scorer, &q);
            assert_eq!(got.records, flat.query(alg, &scorer, &q).records, "alg={alg}");
        }
        // The full-interval queries touched spilled shards and decoded
        // them from pages. (Physical reads may be zero here — the pool's
        // frame cache is still warm right after migration — which is
        // exactly what cold_page_hits should then report.)
        assert!(
            live.storage().stats().cold_fetches > 0,
            "queries over spilled tails must decode from the paged tier"
        );
        // A paged engine keeps ingesting and sealing into the same backend.
        let mut live = live;
        for id in 0..200u32 {
            live.append(ds.row(id));
        }
        live.quiesce();
        let q = DurableQuery { k: 2, tau: 30, interval: Window::new(550, 799) };
        let mut full = ds.clone();
        for id in 0..200u32 {
            full.push(ds.row(id));
        }
        let flat = DurableTopKEngine::new(full);
        assert_eq!(
            live.query(Algorithm::SHop, &scorer, &q).records,
            flat.query(Algorithm::SHop, &scorer, &q).records
        );
    }

    #[test]
    fn copy_history_into_reconstructs_the_global_timeline() {
        let ds = dataset(300);
        let mut live = ShardedEngine::new_live(2, 32, 16);
        for id in 0..300u32 {
            live.append(ds.row(id));
        }
        // From zero: the whole history, bit-identical, even with seals in
        // flight and spilled chunks.
        let live =
            live.migrate_storage(Arc::new(PagedStorage::with_temp_file(1).expect("paged backend")));
        let mut out = Dataset::new(2);
        live.copy_history_into(&mut out, 0);
        assert_eq!(out.raw_attrs(), ds.raw_attrs());
        // From an offset: exactly the suffix.
        let mut tail = Dataset::new(2);
        live.copy_history_into(&mut tail, 123);
        assert_eq!(tail.len(), 300 - 123);
        assert_eq!(tail.row(0), ds.row(123));
        assert_eq!(tail.row(176), ds.row(299));
    }

    #[test]
    #[should_panic(expected = "dataset is empty")]
    fn querying_an_empty_live_engine_is_rejected() {
        let live = ShardedEngine::new_live(2, 8, 4);
        let q = DurableQuery { k: 1, tau: 2, interval: Window::new(0, 0) };
        live.query(Algorithm::THop, &LinearScorer::uniform(2), &q);
    }
}
