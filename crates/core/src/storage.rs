//! Tiered storage for sealed shard record chunks.
//!
//! A sealed tail shard of the [`ShardedEngine`](crate::ShardedEngine) is
//! three things: a collapsed segment tree, an optional frozen skyband
//! index, and the *record chunk* — the immutable sub-dataset covering the
//! shard's extended time range. The first two are compact; the chunk is
//! where the resident set lives. This module puts the chunk behind a
//! [`ShardStorage`] trait with two backends:
//!
//! * [`MemoryStorage`] — every chunk stays decoded in memory as a shared
//!   [`Arc<Dataset>`]. Today's behavior, zero-cost fetches, the default.
//! * [`PagedStorage`] — chunks are serialized page-aligned into a
//!   [`BufferPool`] file at store time (on the background seal worker, off
//!   the append path). The newest `spill_after` chunks additionally stay
//!   decoded; older ones are *spilled* — a query touching one transparently
//!   faults its pages back in, decodes, and reports the physical page
//!   reads as cold-page hits
//!   ([`QueryStats::cold_page_hits`](crate::QueryStats::cold_page_hits)).
//!   The pages of the most recently faulted chunk are pinned in the pool
//!   (up to half its frames), so an immediately repeated cold query is
//!   served warm.
//!
//! Because chunks are shared `Arc`s end to end — head snapshot, seal job,
//! storage, query fan-out — sealing no longer copies the record data and
//! the engine holds exactly one decoded copy of each chunk, whichever
//! backend is active. Exactness is non-negotiable: the paged roundtrip is
//! bit-identical (see the store crate's chunk format), proptested against
//! [`MemoryStorage`] across seal boundaries.

use crate::check::{LockClass, TrackedMutex};
use crate::sync::lock;
use durable_topk_store::{chunk_page_len, read_chunk, write_chunk, BufferPool};
use durable_topk_temporal::Dataset;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to a stored record chunk, issued by [`ShardStorage::store`].
pub type ChunkId = usize;

/// A point-in-time snapshot of a storage backend's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Chunks stored.
    pub chunks: usize,
    /// Chunks currently held decoded in memory.
    pub resident_chunks: usize,
    /// Chunks currently spilled (reachable only through page I/O).
    pub spilled_chunks: usize,
    /// Total [`fetch`](ShardStorage::fetch) calls.
    pub fetches: u64,
    /// Fetches that had to decode a spilled chunk from pages.
    pub cold_fetches: u64,
    /// Physical page reads performed by cold fetches.
    pub cold_page_reads: u64,
}

/// Where sealed shards keep their record chunks.
///
/// Implementations are shared across the appending thread, the background
/// seal workers and the query fan-out (`Send + Sync`); all methods take
/// `&self`.
pub trait ShardStorage: Send + Sync + std::fmt::Debug {
    /// Stores an immutable chunk, returning its handle. Runs on the seal
    /// path (a background pool job by default), never on the append hot
    /// path.
    fn store(&self, chunk: Arc<Dataset>) -> ChunkId;

    /// Retrieves a chunk by handle, together with the number of physical
    /// page reads the retrieval needed (`0` when the chunk was resident —
    /// the figure queries surface as
    /// [`QueryStats::cold_page_hits`](crate::QueryStats::cold_page_hits)).
    ///
    /// # Panics
    /// Panics if `id` was not issued by this backend.
    fn fetch(&self, id: ChunkId) -> (Arc<Dataset>, u64);

    /// Counter snapshot.
    fn stats(&self) -> StorageStats;

    /// Heap bytes of the chunks currently held decoded (the resident-set
    /// figure the storage bench reports).
    fn resident_bytes(&self) -> usize;
}

/// The all-in-memory backend: chunks are shared `Arc`s, fetches are clone
/// cheap, nothing is ever cold.
#[derive(Debug)]
pub struct MemoryStorage {
    chunks: TrackedMutex<Vec<Arc<Dataset>>>,
    fetches: AtomicU64,
}

impl MemoryStorage {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self {
            chunks: TrackedMutex::new(LockClass::PagePool, Vec::new()),
            fetches: AtomicU64::new(0),
        }
    }
}

impl Default for MemoryStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardStorage for MemoryStorage {
    fn store(&self, chunk: Arc<Dataset>) -> ChunkId {
        let mut chunks = lock(&self.chunks);
        chunks.push(chunk);
        chunks.len() - 1
    }

    fn fetch(&self, id: ChunkId) -> (Arc<Dataset>, u64) {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        (Arc::clone(&lock(&self.chunks)[id]), 0)
    }

    fn stats(&self) -> StorageStats {
        let chunks = lock(&self.chunks).len();
        StorageStats {
            chunks,
            resident_chunks: chunks,
            spilled_chunks: 0,
            fetches: self.fetches.load(Ordering::Relaxed),
            cold_fetches: 0,
            cold_page_reads: 0,
        }
    }

    fn resident_bytes(&self) -> usize {
        lock(&self.chunks).iter().map(|c| c.heap_bytes()).sum()
    }
}

/// Per-chunk directory entry of the paged backend.
struct PagedChunk {
    first_page: u64,
    pages: u64,
    /// Decoded copy, present while the chunk is in the resident tier (or
    /// permanently, if its spill write failed).
    resident: Option<Arc<Dataset>>,
    /// Whether the serialized form reached the pool (spilling is only
    /// legal then; a failed write degrades the chunk to memory residency
    /// rather than losing data).
    on_disk: bool,
}

struct Paged {
    pool: BufferPool,
    dir: Vec<PagedChunk>,
    /// Chunks eligible for spilling, oldest first.
    resident_order: VecDeque<ChunkId>,
    /// Chunk whose pages are currently pinned in the pool.
    pinned: Option<ChunkId>,
    next_page: u64,
    fetches: u64,
    cold_fetches: u64,
    cold_page_reads: u64,
    write_failures: u64,
}

impl Paged {
    fn unpin_current(&mut self) {
        if let Some(id) = self.pinned.take() {
            let c = &self.dir[id];
            for p in c.first_page..c.first_page + c.pages {
                self.pool.unpin(p);
            }
        }
    }

    /// Pins the chunk's leading pages, up to half the pool so unpinned
    /// frames always remain for other traffic.
    fn pin_chunk(&mut self, id: ChunkId, budget: usize) {
        self.unpin_current();
        let (first, pages) = (self.dir[id].first_page, self.dir[id].pages);
        for p in first..first + pages.min(budget as u64) {
            if self.pool.pin(p).is_err() {
                break;
            }
        }
        self.pinned = Some(id);
    }
}

impl Drop for Paged {
    fn drop(&mut self) {
        // Release the persistent fetch pin before the pool goes away: the
        // pool's debug-build pin-leak detector asserts that every pinned
        // frame was unpinned by the time it is dropped.
        self.unpin_current();
    }
}

/// The pager-backed tiered backend: every chunk is serialized to pages at
/// store time; the newest `spill_after` chunks also stay decoded, older
/// ones are served by faulting their pages back in. See the module docs
/// for the full story.
pub struct PagedStorage {
    inner: TrackedMutex<Paged>,
    spill_after: usize,
    pin_budget: usize,
}

impl std::fmt::Debug for PagedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PagedStorage")
            .field("spill_after", &self.spill_after)
            .field("chunks", &s.chunks)
            .field("spilled_chunks", &s.spilled_chunks)
            .finish()
    }
}

impl PagedStorage {
    /// Creates a paged backend over a (truncated) file at `path` with
    /// `cache_pages` buffer-pool frames; the newest `spill_after` chunks
    /// stay decoded in memory.
    ///
    /// # Panics
    /// Panics if `cache_pages == 0`.
    pub fn create<P: AsRef<Path>>(
        path: P,
        cache_pages: usize,
        spill_after: usize,
    ) -> io::Result<Self> {
        Ok(Self {
            inner: TrackedMutex::new(
                LockClass::PagePool,
                Paged {
                    pool: BufferPool::create(path, cache_pages)?,
                    dir: Vec::new(),
                    resident_order: VecDeque::new(),
                    pinned: None,
                    next_page: 0,
                    fetches: 0,
                    cold_fetches: 0,
                    cold_page_reads: 0,
                    write_failures: 0,
                },
            ),
            spill_after,
            pin_budget: (cache_pages / 2).max(1),
        })
    }

    /// Creates a paged backend over a fresh file in the system temp
    /// directory (unique per process and instance) with a default cache of
    /// 64 pages — the convenience constructor the CLI's `--storage paged`
    /// uses. The file is not cleaned up on drop; chunk files are scratch
    /// space sized by the spilled history.
    pub fn with_temp_file(spill_after: usize) -> io::Result<Self> {
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let name = format!(
            "durable-topk-chunks-{}-{}.db",
            std::process::id(),
            INSTANCE.fetch_add(1, Ordering::Relaxed)
        );
        Self::create(Self::temp_path(&name), 64, spill_after)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    /// Cumulative spill writes that failed (those chunks stay memory
    /// resident; data is never lost to an I/O error).
    pub fn write_failures(&self) -> u64 {
        lock(&self.inner).write_failures
    }
}

impl ShardStorage for PagedStorage {
    fn store(&self, chunk: Arc<Dataset>) -> ChunkId {
        let inner = &mut *lock(&self.inner);
        let id = inner.dir.len();
        let first_page = inner.next_page;
        let on_disk = match write_chunk(&mut inner.pool, first_page, &chunk) {
            Ok(pages) => {
                inner.next_page += pages;
                true
            }
            Err(_) => {
                // Degrade to memory residency: the decoded Arc is kept
                // forever and the page range is abandoned.
                inner.write_failures += 1;
                false
            }
        };
        inner.dir.push(PagedChunk {
            first_page,
            pages: chunk_page_len(&chunk),
            resident: Some(chunk),
            on_disk,
        });
        if on_disk {
            inner.resident_order.push_back(id);
            while inner.resident_order.len() > self.spill_after {
                // lint: allow(expect) — the loop guard saw len > 0.
                let victim = inner.resident_order.pop_front().expect("non-empty");
                inner.dir[victim].resident = None;
            }
        }
        id
    }

    fn fetch(&self, id: ChunkId) -> (Arc<Dataset>, u64) {
        let inner = &mut *lock(&self.inner);
        inner.fetches += 1;
        if let Some(chunk) = &inner.dir[id].resident {
            return (Arc::clone(chunk), 0);
        }
        // Cold: fault the pages in and decode. The read goes through the
        // pool, so pages still cached (or pinned from a previous fault)
        // cost no physical I/O — only true faults count.
        assert!(
            inner.dir[id].on_disk,
            "a non-resident chunk must have reached the pool (write failures stay resident)"
        );
        let before = inner.pool.stats().reads;
        let first_page = inner.dir[id].first_page;
        let ds = read_chunk(&mut inner.pool, first_page)
            // lint: allow(expect) — `on_disk` was asserted above: the chunk's
            // serialized form reached this pool and pages are never reused.
            .expect("a spilled chunk is always readable from its own pool");
        let cold = inner.pool.stats().reads - before;
        inner.cold_fetches += 1;
        inner.cold_page_reads += cold;
        inner.pin_chunk(id, self.pin_budget);
        (Arc::new(ds), cold)
    }

    fn stats(&self) -> StorageStats {
        let inner = lock(&self.inner);
        let resident = inner.dir.iter().filter(|c| c.resident.is_some()).count();
        StorageStats {
            chunks: inner.dir.len(),
            resident_chunks: resident,
            spilled_chunks: inner.dir.len() - resident,
            fetches: inner.fetches,
            cold_fetches: inner.cold_fetches,
            cold_page_reads: inner.cold_page_reads,
        }
    }

    fn resident_bytes(&self) -> usize {
        lock(&self.inner)
            .dir
            .iter()
            .filter_map(|c| c.resident.as_ref())
            .map(|c| c.heap_bytes())
            .sum()
    }
}

/// Keep `PAGE_SIZE` reachable from the core crate's storage vocabulary so
/// callers sizing pools need not depend on the store crate directly.
pub use durable_topk_store::PAGE_SIZE as STORAGE_PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(seed: u64, n: usize) -> Arc<Dataset> {
        Arc::new(Dataset::from_rows(
            2,
            (0..n).map(|i| {
                let x = ((i as u64 * 37 + seed * 101) % 113) as f64;
                [x, 113.0 - x]
            }),
        ))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-storage-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    #[test]
    fn memory_storage_shares_the_arc() {
        let storage = MemoryStorage::new();
        let c = chunk(1, 50);
        let id = storage.store(Arc::clone(&c));
        let (back, cold) = storage.fetch(id);
        assert_eq!(cold, 0);
        assert!(Arc::ptr_eq(&back, &c), "memory fetches never copy");
        assert_eq!(storage.stats().chunks, 1);
        assert_eq!(storage.resident_bytes(), c.heap_bytes());
    }

    #[test]
    fn paged_storage_spills_old_chunks_and_reloads_bit_identically() {
        let storage = PagedStorage::create(tmp("spill.db"), 16, 1).expect("create");
        let chunks: Vec<_> = (0..4).map(|s| chunk(s, 600)).collect();
        let ids: Vec<_> = chunks.iter().map(|c| storage.store(Arc::clone(c))).collect();
        let s = storage.stats();
        assert_eq!(s.chunks, 4);
        assert_eq!(s.resident_chunks, 1, "spill_after=1 keeps only the newest decoded");
        assert_eq!(s.spilled_chunks, 3);
        // Every chunk — resident or spilled — reads back bit-identically.
        for (id, original) in ids.iter().zip(&chunks) {
            let (back, _) = storage.fetch(*id);
            assert_eq!(back.raw_attrs(), original.raw_attrs());
        }
        assert!(storage.stats().cold_fetches >= 3);
        assert_eq!(storage.write_failures(), 0);
    }

    #[test]
    fn cold_fetch_reports_page_reads_and_pinning_warms_repeats() {
        let storage = PagedStorage::create(tmp("pin.db"), 16, 1).expect("create");
        let a = storage.store(chunk(7, 800));
        storage.store(chunk(8, 800)); // spills `a`
                                      // Drop the page cache so the fault is genuinely cold.
        lock(&storage.inner).pool.clear_cache().expect("clear");
        let (_, cold_first) = storage.fetch(a);
        assert!(cold_first > 0, "a spilled chunk must fault pages in");
        // The faulted chunk's pages are pinned: an immediate repeat needs
        // no (or strictly fewer) physical reads.
        let (_, cold_again) = storage.fetch(a);
        assert!(cold_again < cold_first, "pinned pages must serve the repeat warm");
    }

    #[test]
    fn resident_bytes_shrink_as_chunks_spill() {
        let storage = PagedStorage::create(tmp("bytes.db"), 16, 2).expect("create");
        for s in 0..5 {
            storage.store(chunk(s, 400));
        }
        let two_chunks = 2 * chunk(0, 400).heap_bytes();
        assert!(storage.resident_bytes() <= two_chunks);
        let all = MemoryStorage::new();
        for s in 0..5 {
            all.store(chunk(s, 400));
        }
        assert!(storage.resident_bytes() < all.resident_bytes());
    }
}
