//! Maximum-duration reporting (Section II, "Duration of durable top-k
//! records").
//!
//! Once a durable record is found, the longest duration for which it stays
//! in the top-k is computed by binary search over window lengths, one top-k
//! query per probe — `O(q(n) log n)` per record, independent of which
//! algorithm produced the record.

use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use durable_topk_index::OracleScorer;
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// The largest `τ` for which record `p` is τ-durable under `scorer` and `k`
/// (look-back anchoring).
///
/// Durability is monotone decreasing in `τ`, which justifies the binary
/// search. Once the window reaches the start of history it stops growing, so
/// a record durable at `τ = p.t` is durable for every `τ`; in that case the
/// full domain length `n` is returned (the paper's `τ ∈ [1, |T|]` cap).
///
/// Also returns the number of top-k probes used.
///
/// # Panics
/// Panics if `k == 0` or `p` is out of bounds.
pub fn max_duration<O: TopKOracle + ?Sized, S: OracleScorer + ?Sized>(
    ds: &Dataset,
    oracle: &O,
    scorer: &S,
    p: RecordId,
    k: usize,
    ctx: &mut QueryContext,
) -> (Time, u64) {
    assert!(k > 0, "k must be positive");
    assert!((p as usize) < ds.len(), "record {p} out of bounds");
    let score = scorer.score(ds.row(p));
    let mut probes = 0u64;
    let mut durable_at = |tau: Time, ctx: &mut QueryContext| -> bool {
        probes += 1;
        oracle.top_k_into(ds, scorer, k, Window::lookback(p, tau), &mut ctx.oracle, &mut ctx.pi);
        ctx.pi.admits_score(score)
    };

    // Windows clamp at time 0: τ = p.t already covers all of history.
    if durable_at(p, ctx) {
        return (ds.len() as Time, probes);
    }
    // Invariant: durable at lo, not durable at hi.
    let (mut lo, mut hi) = (0u32, p);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if durable_at(mid, ctx) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use durable_topk_temporal::{Scorer, SingleAttributeScorer};

    fn brute_max_duration(ds: &Dataset, p: RecordId, k: usize) -> Time {
        let scorer = SingleAttributeScorer::new(0);
        let score = scorer.score(ds.row(p));
        let oracle = ScanOracle::new();
        let mut best = 0;
        for tau in 1..=ds.len() as Time {
            let pi = oracle.top_k(ds, &scorer, k, Window::lookback(p, tau));
            if pi.admits_score(score) {
                best = tau;
            }
        }
        best
    }

    #[test]
    fn duration_of_all_time_best_is_domain_length() {
        let ds = Dataset::from_rows(1, [[1.0], [9.0], [2.0], [3.0]]);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let (d, _) = max_duration(&ds, &oracle, &scorer, 1, 1, &mut QueryContext::new());
        assert_eq!(d, 4);
    }

    #[test]
    fn duration_stops_at_nearest_better_record() {
        // record 3 (value 5) is beaten by record 1 (value 9): max τ = 1
        // (window [2,3]); at τ = 2 the window [1,3] includes the 9.
        let ds = Dataset::from_rows(1, [[1.0], [9.0], [2.0], [5.0]]);
        let oracle = ScanOracle::new();
        let scorer = SingleAttributeScorer::new(0);
        let (d, _) = max_duration(&ds, &oracle, &scorer, 3, 1, &mut QueryContext::new());
        assert_eq!(d, 1);
    }

    #[test]
    fn duration_matches_brute_force_randomized() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let n = rng.random_range(2..60);
            let rows: Vec<[f64; 1]> = (0..n).map(|_| [rng.random_range(0..20) as f64]).collect();
            let ds = Dataset::from_rows(1, rows);
            let oracle = ScanOracle::new();
            let scorer = SingleAttributeScorer::new(0);
            for _ in 0..8 {
                let p = rng.random_range(0..n as RecordId);
                let k = rng.random_range(1..4);
                let brute = brute_max_duration(&ds, p, k);
                let (fast, probes) =
                    max_duration(&ds, &oracle, &scorer, p, k, &mut QueryContext::new());
                // The brute loop caps at τ = n; "unbounded" reports n too.
                let fast_capped = fast.min(ds.len() as Time);
                // brute reports the max τ <= n with durability; records
                // durable only at τ = 0 (never, since τ >= 1 implies a
                // 2-instant window)... both should agree after capping.
                assert_eq!(fast_capped, brute, "p={p} k={k}");
                assert!(probes <= (ds.len() as u64).ilog2() as u64 + 3);
            }
        }
    }
}
