//! Memoization of immutable per-shard answers.
//!
//! Sealed tail shards never change, so the partial answer a shard produces
//! for a given `(algorithm, scorer, k, τ)` over its **full owned range** is
//! a pure function of the key — yet every serve request, `--alg all`
//! sweep, and subscription seal-boundary reconciliation re-runs the probe
//! (and, under [`PagedStorage`](crate::PagedStorage), may re-fault spilled
//! pages just to recompute an answer already produced). [`ShardResultCache`]
//! closes that gap: a bounded, byte-budgeted, sharded-lock LRU that
//! [`ShardedEngine::try_query`](crate::ShardedEngine::try_query) consults
//! *before* touching storage, so a hit never faults pages back in.
//!
//! # Key structure and invalidation
//!
//! Entries are keyed by `(shard generation, algorithm, scorer fingerprint,
//! k, τ)`:
//!
//! * **Shard generation** — a process-global, never-reused id
//!   (`next_shard_gen`, crate-private) stamped onto each shard when it is
//!   sealed (and
//!   re-stamped when [`migrate_storage`](crate::ShardedEngine::migrate_storage)
//!   migrates it to a new backend). Seal cascades, migrations and head
//!   splices therefore invalidate *for free*: the superseded generation can
//!   never be probed again, and its entries age out of the LRU. Nothing is
//!   ever flushed wholesale.
//! * **Scorer fingerprint** — the bit-exact structural hash of
//!   [`OracleScorer::fingerprint`](durable_topk_index::OracleScorer::fingerprint).
//!   Scorers without one (opaque [`ScorerSpec::Custom`](crate::ScorerSpec)
//!   closures) bypass the cache entirely — neither a hit nor a miss.
//! * **The query interval is deliberately absent**: only probes covering
//!   the shard's full owned range are cached, and for those the localized
//!   interval is determined by the shard itself. Boundary pieces (queries
//!   clipping the owned range) always probe.
//!
//! Entries hold the per-shard partial answer in **local** record ids plus a
//! stats snapshot taken *before* the probe's cold-read accounting, so a hit
//! replays the answer with `cold_page_hits = 0` — physically true, since
//! the hit skipped `storage.fetch` — while preserving the snapshot's
//! [`fallback`](crate::QueryStats::fallback) classification bit-exactly.

use crate::check::{LockClass, TrackedMutex};
use crate::engine::Algorithm;
use crate::query::{QueryResult, QueryStats};
use durable_topk_temporal::{RecordId, Time};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global allocator for shard generation ids. Never reused: a
/// superseded generation's cache entries can never be probed again, which
/// is the entire invalidation story.
static NEXT_SHARD_GEN: AtomicU64 = AtomicU64::new(0);

/// Allocates a fresh shard generation id (see [`ShardResultCache`]).
pub(crate) fn next_shard_gen() -> u64 {
    NEXT_SHARD_GEN.fetch_add(1, Ordering::Relaxed)
}

/// The identity of one cacheable per-shard probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// The shard's generation id ([`next_shard_gen`]).
    pub(crate) shard_gen: u64,
    pub(crate) alg: Algorithm,
    /// The scorer's structural fingerprint.
    pub(crate) scorer: u64,
    pub(crate) k: usize,
    pub(crate) tau: Time,
}

/// One memoized partial answer: local record ids plus the probe's stats
/// snapshot (taken before cold-read accounting).
#[derive(Debug)]
struct Entry {
    records: Vec<RecordId>,
    stats: QueryStats,
    /// Estimated resident footprint, fixed at insert time.
    bytes: usize,
    /// LRU stamp from the cache-global tick.
    last_used: u64,
}

impl Entry {
    fn footprint(records: &[RecordId]) -> usize {
        std::mem::size_of::<CacheKey>()
            + std::mem::size_of::<Entry>()
            + std::mem::size_of_val(records)
    }
}

/// One lock shard of the cache: an open-addressed map plus its resident
/// byte count.
#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
}

/// Number of independently locked map shards; keys spread by hash, so
/// concurrent fan-out workers rarely contend on one mutex.
const LOCK_SHARDS: usize = 16;

/// A point-in-time snapshot of the cache's counters and residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Probes answered from the cache (each one skipped a `storage.fetch`).
    pub hits: u64,
    /// Cacheable probes that ran because no entry existed yet.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget, oldest first.
    pub evictions: u64,
    /// Estimated bytes currently resident across all lock shards.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A bounded, byte-budgeted, sharded-lock LRU memoizing immutable
/// per-shard partial answers (see the module docs for the key structure
/// and invalidation rules).
#[derive(Debug)]
pub struct ShardResultCache {
    shards: Vec<TrackedMutex<CacheShard>>,
    /// Byte budget per lock shard (total budget split evenly).
    shard_budget: usize,
    /// Monotone LRU clock shared by all lock shards.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardResultCache {
    /// Creates a cache bounded at roughly `budget_bytes` of memoized
    /// answers (split evenly across the internal lock shards).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            shards: (0..LOCK_SHARDS)
                .map(|_| TrackedMutex::new(LockClass::CacheShard, CacheShard::default()))
                .collect(),
            shard_budget: (budget_bytes / LOCK_SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &TrackedMutex<CacheShard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % LOCK_SHARDS]
    }

    /// Looks one probe up. A hit returns the memoized partial answer with
    /// [`cache_hits`](QueryStats::cache_hits)` = 1` and zero cold-page
    /// hits; an absent key counts as a miss (the caller runs the probe and
    /// [`insert`](ShardResultCache::insert)s).
    pub(crate) fn get(&self, key: &CacheKey) -> Option<QueryResult> {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut stats = entry.stats;
                stats.cache_hits += 1;
                Some(QueryResult { records: entry.records.clone(), stats })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes one probe's partial answer. `stats` must be the snapshot
    /// *before* cold-read accounting, so replays report zero cold-page
    /// hits. Evicts least-recently-used entries while the lock shard is
    /// over its budget slice; an answer bigger than the whole slice is not
    /// cached at all.
    pub(crate) fn insert(&self, key: CacheKey, records: &[RecordId], stats: QueryStats) {
        let bytes = Entry::footprint(records);
        if bytes > self.shard_budget {
            return;
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&key).lock();
        let entry = Entry { records: records.to_vec(), stats, bytes, last_used };
        if let Some(old) = shard.map.insert(key, entry) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > self.shard_budget {
            // Oldest-first eviction by scan: shards stay small enough
            // (bounded by the budget slice) that a scan beats maintaining
            // an intrusive list under the same lock.
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                // lint: allow(expect) — the loop guard saw bytes > 0.
                .expect("over-budget shard cannot be empty");
            // lint: allow(expect) — `oldest` was read out of this map
            // under the same shard lock.
            let evicted = shard.map.remove(&oldest).expect("key just observed");
            shard.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A snapshot of the hit/miss/eviction counters and current residency.
    pub fn stats(&self) -> ResultCacheStats {
        let mut resident_bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            resident_bytes += shard.bytes as u64;
            entries += shard.map.len() as u64;
        }
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(shard_gen: u64, k: usize) -> CacheKey {
        CacheKey { shard_gen, alg: Algorithm::THop, scorer: 0xfeed, k, tau: 8 }
    }

    #[test]
    fn hit_replays_the_answer_with_zero_cold_hits() {
        let cache = ShardResultCache::new(1 << 20);
        let stats = QueryStats { candidates: 7, cold_page_hits: 0, ..Default::default() };
        assert!(cache.get(&key(1, 3)).is_none(), "empty cache misses");
        cache.insert(key(1, 3), &[2, 5, 9], stats);
        let hit = cache.get(&key(1, 3)).expect("just inserted");
        assert_eq!(hit.records, vec![2, 5, 9]);
        assert_eq!(hit.stats.cache_hits, 1);
        assert_eq!(hit.stats.cold_page_hits, 0);
        assert_eq!(hit.stats.candidates, 7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn distinct_generations_never_alias() {
        let cache = ShardResultCache::new(1 << 20);
        cache.insert(key(1, 3), &[1], QueryStats::default());
        assert!(cache.get(&key(2, 3)).is_none(), "a resealed shard has a new generation");
        assert!(cache.get(&key(1, 4)).is_none(), "k is part of the key");
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        // A tiny budget: each entry is ~200 bytes, so a few inserts into
        // one lock shard must evict.
        let cache = ShardResultCache::new(LOCK_SHARDS * 4 * Entry::footprint(&[0; 8]));
        for g in 0..256u64 {
            cache.insert(key(g, 1), &[0; 8], QueryStats::default());
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "256 entries cannot fit a 4-entry-per-shard budget");
        assert!(s.resident_bytes <= (LOCK_SHARDS * 4 * Entry::footprint(&[0; 8])) as u64);
        assert_eq!(s.entries + s.evictions, 256);
    }

    #[test]
    fn oversized_answers_are_not_cached() {
        let cache = ShardResultCache::new(64);
        cache.insert(key(1, 1), &vec![0; 10_000], QueryStats::default());
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions, s.resident_bytes), (0, 0, 0));
    }

    #[test]
    fn generation_ids_are_never_reused() {
        let a = next_shard_gen();
        let b = next_shard_gen();
        assert_ne!(a, b);
    }
}
