//! Reusable per-thread scratch for the query pipeline.
//!
//! The hop algorithms win by bounding *oracle invocations*; the constant
//! factor per invocation is dominated by allocator traffic when every probe
//! builds fresh heaps and bitmaps. A [`QueryContext`] owns every buffer the
//! five algorithms and the segment-tree oracle need — heaps, visited
//! stamps, blocking Fenwick, answer and `π≤k` item buffers — so a context
//! reused across queries makes the per-probe path allocation-free.
//!
//! One context per thread: contexts are cheap to create, internally reset
//! between queries, and deliberately `!Sync` usage — batch executors hold
//! one per worker (see [`crate::batch::BatchExecutor`]).

use crate::algorithms::ShopScratch;
use durable_topk_index::{BlockingSet, OracleScratch, TopKResult};
use durable_topk_temporal::RecordId;

/// A generation-stamped membership set over record ids.
///
/// Replaces the `vec![false; ds.len()]` bitmaps the algorithms used to
/// allocate per query: resetting bumps a generation counter instead of
/// clearing, so reuse across queries costs `O(1)` once the stamp array is
/// warm.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampSet {
    stamps: Vec<u32>,
    generation: u32,
}

impl StampSet {
    /// Empties the set and grows it to address ids `0..n`.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Whether `id` is in the set.
    #[inline]
    pub(crate) fn contains(&self, id: RecordId) -> bool {
        self.stamps[id as usize] == self.generation
    }

    /// Inserts `id`, returning whether it was newly inserted.
    #[inline]
    pub(crate) fn insert(&mut self, id: RecordId) -> bool {
        let slot = &mut self.stamps[id as usize];
        let fresh = *slot != self.generation;
        *slot = self.generation;
        fresh
    }
}

/// Reusable scratch for the durable top-k query pipeline.
///
/// Thread one context through repeated
/// [`DurableTopKEngine::query_with`](crate::DurableTopKEngine::query_with)
/// calls (or hand one to each worker of a batch) and the hot path performs
/// no per-probe allocations: segment-tree search heaps, durability-check
/// result buffers, S-Hop's candidate arena and max-heap, and the blocking
/// Fenwick are all drawn from here.
///
/// A context carries no query state between calls — every algorithm resets
/// the pieces it uses — so any sequence of queries against any mix of
/// engines and datasets may share one context.
#[derive(Debug, Default)]
pub struct QueryContext {
    /// Segment-tree / scan oracle scratch (node pq, best-k heap, merge).
    pub(crate) oracle: OracleScratch,
    /// Reusable `π≤k` buffer for durability checks.
    pub(crate) pi: TopKResult,
    /// Reusable `π≤k` buffer for refill queries (S-Hop subinterval sets,
    /// T-Base window recomputation).
    pub(crate) refill: TopKResult,
    /// Answer accumulation buffer.
    pub(crate) answers: Vec<RecordId>,
    /// Scored-candidate buffer (S-Base / S-Band sort input).
    pub(crate) scored: Vec<(RecordId, f64)>,
    /// Blocking-interval multiset (score-prioritized algorithms).
    pub(crate) blocking: BlockingSet,
    /// "Has a blocking interval been placed for this record" membership.
    pub(crate) has_interval: StampSet,
    /// "Was this record already popped" membership (S-Hop resurfacing).
    pub(crate) processed: StampSet,
    /// S-Hop's subinterval arena, exposure heap and item-vector pool.
    pub(crate) shop: ShopScratch,
    /// Cold page reads paid by building-block probes
    /// ([`ShardedEngine::top_k_into`](crate::ShardedEngine::top_k_into))
    /// since the last [`take_cold_page_hits`](QueryContext::take_cold_page_hits)
    /// — the stats channel the per-query path does not have.
    pub(crate) cold_page_hits: u64,
}

impl QueryContext {
    /// Creates an empty context; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the answer buffer into an owned, right-sized vector, keeping
    /// the buffer's capacity for the next query.
    pub(crate) fn take_answers(&mut self) -> Vec<RecordId> {
        let records = self.answers.clone();
        self.answers.clear();
        records
    }

    /// Drains the cold page reads accumulated by building-block probes
    /// ([`ShardedEngine::top_k_into`](crate::ShardedEngine::top_k_into))
    /// run through this context since the last drain. Callers surface the
    /// count through [`QueryStats::cold_page_hits`](crate::QueryStats) —
    /// the streaming scan fallback and the subscription refresh path do.
    pub fn take_cold_page_hits(&mut self) -> u64 {
        std::mem::take(&mut self.cold_page_hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_set_resets_in_constant_time() {
        let mut s = StampSet::default();
        s.reset(4);
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.contains(2));
        assert!(!s.contains(3));
        s.reset(4);
        assert!(!s.contains(2), "reset must empty the set");
        assert!(s.insert(2));
    }

    #[test]
    fn stamp_set_survives_generation_wrap() {
        let mut s = StampSet { stamps: vec![u32::MAX - 1; 3], generation: u32::MAX - 1 };
        assert!(s.contains(0));
        s.reset(3);
        assert!(!s.contains(0), "wrap to MAX still empties");
        s.insert(1);
        s.reset(3);
        assert!(!s.contains(1), "wrap past MAX clears stale stamps");
    }

    #[test]
    fn take_answers_keeps_capacity() {
        let mut ctx = QueryContext::new();
        ctx.answers.extend([3, 1, 2]);
        let cap = ctx.answers.capacity();
        let taken = ctx.take_answers();
        assert_eq!(taken, vec![3, 1, 2]);
        assert!(ctx.answers.is_empty());
        assert_eq!(ctx.answers.capacity(), cap);
    }
}
