//! Typed errors for engine construction and the query path.
//!
//! The offline experiment driver could afford to `panic!` on bad input —
//! the process was the experiment. A serving deployment cannot: a panic on
//! a routine bad request (a `τ` beyond the shard overlap, an empty CSV)
//! would take a worker, or the whole process, down with it. These enums
//! carry the same diagnostics as the old panic messages, so callers that
//! still want to abort (`ShardedEngine::query`,
//! `DurableQuery::validate`) print identical text, while the serving layer
//! ([`ServeEngine`](crate::ServeEngine)) turns them into per-request
//! failures.

use durable_topk_temporal::Time;

/// Why a `DurTop(k, I, τ)` request cannot be answered.
///
/// Everything here is reachable from *request input* — none of these
/// conditions indicates engine corruption, so a serving worker reports the
/// error on the request's completion handle and moves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// `k == 0` — an empty top-k set is not a meaningful query.
    ZeroK,
    /// `τ == 0` — durability needs a positive window length.
    ZeroTau,
    /// The engine covers no records yet.
    EmptyDataset,
    /// The query interval starts past the last ingested record.
    IntervalOutOfRange {
        /// Requested interval start.
        start: Time,
        /// Last record id currently covered by the engine.
        last: Time,
    },
    /// `τ` exceeds the sharded engine's overlap bound: shards keep only
    /// `max_tau` records of left context, so exactness cannot be
    /// guaranteed beyond it.
    TauExceedsOverlap {
        /// Requested durability window length.
        tau: Time,
        /// The engine's exactness bound.
        max_tau: Time,
    },
    /// A parameter vector's arity does not match the dataset's attribute
    /// count (scorer weights or appended record).
    Arity {
        /// Attribute count of the engine's dataset.
        expected: usize,
        /// Arity actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::ZeroTau => write!(f, "tau must be positive"),
            QueryError::EmptyDataset => write!(f, "dataset is empty"),
            QueryError::IntervalOutOfRange { start, last } => {
                write!(f, "query interval starting at {start} starts past the last record {last}")
            }
            QueryError::TauExceedsOverlap { tau, max_tau } => write!(
                f,
                "tau {tau} exceeds the shard overlap max_tau {max_tau}; \
                 rebuild with a larger bound"
            ),
            QueryError::Arity { expected, got } => {
                write!(f, "arity mismatch: the data has {expected} attributes, got {got}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Why an engine cannot be constructed over the given inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The dataset holds no records.
    EmptyDataset,
    /// A structural parameter (`dim`, `shard_count`, `shard_span`,
    /// `max_tau`, `leaf_size`) was zero; the name says which.
    ZeroParam(&'static str),
    /// An [`EngineConfig`](crate::EngineConfig) declared one attribute
    /// arity but was asked to build over a dataset with another.
    DimMismatch {
        /// Arity the configuration declared.
        config: usize,
        /// Arity of the dataset handed to `build_from`.
        data: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyDataset => write!(f, "cannot build an engine over an empty dataset"),
            BuildError::ZeroParam(name) => write!(f, "{name} must be positive"),
            BuildError::DimMismatch { config, data } => {
                write!(f, "configuration declares {config} attributes but the dataset has {data}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_keep_the_historical_diagnostics() {
        // Callers that still panic print `Display`; these substrings are
        // load-bearing for #[should_panic] expectations across the suite.
        assert_eq!(QueryError::ZeroK.to_string(), "k must be positive");
        assert_eq!(QueryError::ZeroTau.to_string(), "tau must be positive");
        assert_eq!(QueryError::EmptyDataset.to_string(), "dataset is empty");
        assert!(QueryError::IntervalOutOfRange { start: 7, last: 4 }
            .to_string()
            .contains("starts past"));
        assert!(QueryError::TauExceedsOverlap { tau: 9, max_tau: 4 }
            .to_string()
            .contains("exceeds the shard overlap"));
        assert!(BuildError::ZeroParam("shard_span").to_string().contains("shard_span"));
    }
}
