//! Small synchronization utilities shared by the execution and serving
//! layers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, ignoring poisoning. Safe throughout this crate because
/// guarded state is updated in single steps and user code (scorers,
/// algorithm bodies) never runs under an internal lock — a panicking
/// request is caught at chunk/request granularity before it can tear any
/// invariant.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A oneshot completion slot: one producer publishes a value, consumers
/// poll or block for it. Backs both seal publication
/// ([`ShardedEngine`](crate::ShardedEngine)'s background collapses) and
/// request completion handles ([`ServeEngine`](crate::ServeEngine)).
///
/// The `claim` flag supports *work stealing*: when the value is produced
/// by a detached pool job, a waiter that cannot afford to depend on pool
/// scheduling (e.g. an appender holding a lock the pool workers might be
/// queued behind) first tries to claim production for itself; whoever
/// wins the claim computes and publishes, the loser just waits. This
/// breaks any cycle where the producer's turn on the pool never comes.
#[derive(Debug)]
pub(crate) struct OnceSlot<T> {
    ready: Mutex<Option<T>>,
    done: Condvar,
    claimed: AtomicBool,
}

// Manual impl: `derive` would demand `T: Default`, which the payload
// types have no reason to satisfy.
impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self { ready: Mutex::new(None), done: Condvar::new(), claimed: AtomicBool::new(false) }
    }
}

impl<T> OnceSlot<T> {
    /// Atomically claims the right to produce the value. Returns `true`
    /// exactly once across all callers.
    pub(crate) fn claim(&self) -> bool {
        !self.claimed.swap(true, Ordering::AcqRel)
    }

    /// Publishes the value and wakes every waiter.
    pub(crate) fn publish(&self, value: T) {
        *lock(&self.ready) = Some(value);
        self.done.notify_all();
    }

    /// Takes the value if it was already published (non-blocking).
    pub(crate) fn try_take(&self) -> Option<T> {
        lock(&self.ready).take()
    }

    /// Blocks until the value is published, then takes it.
    pub(crate) fn take_blocking(&self) -> T {
        let mut ready = lock(&self.ready);
        loop {
            if let Some(value) = ready.take() {
                return value;
            }
            ready = self.done.wait(ready).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_is_granted_exactly_once() {
        let slot: OnceSlot<u32> = OnceSlot::default();
        assert!(slot.claim());
        assert!(!slot.claim());
        assert!(!slot.claim());
    }

    #[test]
    fn publish_wakes_a_blocked_taker() {
        let slot = Arc::new(OnceSlot::<u32>::default());
        let taker = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.take_blocking())
        };
        slot.publish(42);
        assert_eq!(taker.join().expect("taker"), 42);
        assert_eq!(slot.try_take(), None, "oneshot: the value is consumed");
    }
}
