//! Small synchronization utilities shared by the execution and serving
//! layers.
//!
//! Everything here is built on the ranked, tracked lock wrappers from
//! [`crate::check`]: every acquisition is checked against the workspace
//! lock hierarchy in debug builds (see `docs/ARCHITECTURE.md`,
//! "Concurrency invariants").

use crate::check::{LockClass, TrackedCondvar, TrackedMutex, TrackedMutexGuard};
use std::sync::atomic::{AtomicBool, Ordering};

/// Locks a tracked mutex. Poisoning is swallowed by the wrapper — safe
/// throughout this crate because guarded state is updated in single steps
/// and user code (scorers, algorithm bodies) never runs under an internal
/// lock; a panicking request is caught at chunk/request granularity before
/// it can tear any invariant.
pub(crate) fn lock<'a, T>(m: &'a TrackedMutex<T>) -> TrackedMutexGuard<'a, T> {
    m.lock()
}

/// A oneshot completion slot: one producer publishes a value, consumers
/// poll or block for it. Backs both seal publication
/// ([`ShardedEngine`](crate::ShardedEngine)'s background collapses) and
/// request completion handles ([`ServeEngine`](crate::ServeEngine)) —
/// declared with [`LockClass::SealSlot`] and [`LockClass::ResponseSlot`]
/// respectively, the two innermost classes of the lock hierarchy.
///
/// The `claim` flag supports *work stealing*: when the value is produced
/// by a detached pool job, a waiter that cannot afford to depend on pool
/// scheduling (e.g. an appender holding a lock the pool workers might be
/// queued behind) first tries to claim production for itself; whoever
/// wins the claim computes and publishes, the loser just waits. This
/// breaks any cycle where the producer's turn on the pool never comes.
#[derive(Debug)]
pub(crate) struct OnceSlot<T> {
    ready: TrackedMutex<Option<T>>,
    done: TrackedCondvar,
    claimed: AtomicBool,
}

impl<T> OnceSlot<T> {
    /// Creates an empty slot whose internal lock carries `class` (use
    /// [`LockClass::SealSlot`] for seal hand-offs,
    /// [`LockClass::ResponseSlot`] for completion handles).
    pub(crate) fn new(class: LockClass) -> Self {
        Self {
            ready: TrackedMutex::new(class, None),
            done: TrackedCondvar::new(),
            claimed: AtomicBool::new(false),
        }
    }

    /// Atomically claims the right to produce the value. Returns `true`
    /// exactly once across all callers.
    pub(crate) fn claim(&self) -> bool {
        !self.claimed.swap(true, Ordering::AcqRel)
    }

    /// Publishes the value and wakes every waiter.
    pub(crate) fn publish(&self, value: T) {
        *lock(&self.ready) = Some(value);
        self.done.notify_all();
    }

    /// Takes the value if it was already published (non-blocking).
    pub(crate) fn try_take(&self) -> Option<T> {
        lock(&self.ready).take()
    }

    /// Blocks until the value is published, then takes it.
    pub(crate) fn take_blocking(&self) -> T {
        let mut ready = lock(&self.ready);
        loop {
            if let Some(value) = ready.take() {
                return value;
            }
            ready = self.done.wait(ready);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_is_granted_exactly_once() {
        let slot: OnceSlot<u32> = OnceSlot::new(LockClass::SealSlot);
        assert!(slot.claim());
        assert!(!slot.claim());
        assert!(!slot.claim());
    }

    #[test]
    fn publish_wakes_a_blocked_taker() {
        let slot = Arc::new(OnceSlot::<u32>::new(LockClass::SealSlot));
        let taker = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.take_blocking())
        };
        slot.publish(42);
        assert_eq!(taker.join().expect("taker"), 42);
        assert_eq!(slot.try_take(), None, "oneshot: the value is consumed");
    }

    /// Yield seeds the permutation tests below run under: seed 0 disables
    /// injection (the unperturbed schedule); the rest shift every tracked
    /// acquisition by a seed-dependent number of `yield_now` calls,
    /// walking the claim/steal races through distinct interleavings.
    const SEEDS: [u64; 6] = [0, 1, 2, 3, 0x9e37, 0x7f4a7c15];

    #[test]
    fn claim_then_steal_under_yield_injection() {
        for seed in SEEDS {
            crate::check::set_yield_seed(seed);
            // The appender (cannot wait on pool scheduling) claims first;
            // the pool job arrives late, loses the claim, and must still
            // observe the published value.
            let slot = Arc::new(OnceSlot::<u64>::new(LockClass::SealSlot));
            assert!(slot.claim(), "first claim wins (seed {seed})");
            let late = {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    assert!(!slot.claim(), "late claimer must lose");
                    slot.take_blocking()
                })
            };
            slot.publish(seed);
            assert_eq!(late.join().expect("late thread"), seed);
        }
        crate::check::set_yield_seed(0);
    }

    #[test]
    fn steal_while_producing_grants_one_producer() {
        use std::sync::atomic::AtomicUsize;
        for seed in SEEDS {
            crate::check::set_yield_seed(seed);
            // Two producers race the claim mid-flight; exactly one may
            // produce, and the taker sees that producer's value.
            let slot = Arc::new(OnceSlot::<usize>::new(LockClass::SealSlot));
            let winners = Arc::new(AtomicUsize::new(0));
            let producers: Vec<_> = (1..=2usize)
                .map(|id| {
                    let slot = Arc::clone(&slot);
                    let winners = Arc::clone(&winners);
                    std::thread::spawn(move || {
                        if slot.claim() {
                            winners.fetch_add(1, Ordering::Relaxed);
                            slot.publish(id);
                        }
                    })
                })
                .collect();
            let got = slot.take_blocking();
            for p in producers {
                p.join().expect("producer");
            }
            assert_eq!(winners.load(Ordering::Relaxed), 1, "seed {seed}");
            assert!((1..=2).contains(&got), "value came from the winner (seed {seed})");
            assert!(!slot.claim(), "the claim stays spent");
        }
        crate::check::set_yield_seed(0);
    }

    #[test]
    fn double_claim_three_way_race_stays_oneshot() {
        use std::sync::atomic::AtomicUsize;
        for seed in SEEDS {
            crate::check::set_yield_seed(seed);
            // Three claimants, one blocked taker: however the schedule
            // lands, the claim is granted once, the value is produced
            // once, and the taker drains it exactly once.
            let slot = Arc::new(OnceSlot::<usize>::new(LockClass::SealSlot));
            let taker = {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || slot.take_blocking())
            };
            let winners = Arc::new(AtomicUsize::new(0));
            let claimants: Vec<_> = (1..=3usize)
                .map(|id| {
                    let slot = Arc::clone(&slot);
                    let winners = Arc::clone(&winners);
                    std::thread::spawn(move || {
                        if slot.claim() {
                            winners.fetch_add(1, Ordering::Relaxed);
                            slot.publish(id);
                        }
                    })
                })
                .collect();
            for c in claimants {
                c.join().expect("claimant");
            }
            let got = taker.join().expect("taker");
            assert_eq!(winners.load(Ordering::Relaxed), 1, "seed {seed}");
            assert!((1..=3).contains(&got), "seed {seed}");
            assert_eq!(slot.try_take(), None, "oneshot after the drain (seed {seed})");
        }
        crate::check::set_yield_seed(0);
    }
}
