//! Continuous durable top-k monitoring over streaming arrivals.
//!
//! The paper studies the *offline* problem ("our query analyzes historical
//! data") and contrasts it with continuous monitoring à la Mouratidis et al.
//! This module closes the loop as an extension: an online engine that
//! ingests records as they arrive and can
//!
//! 1. classify each arriving record's durability *immediately*
//!    ([`StreamingMonitor::push`] — is the newcomer a τ-durable record right
//!    now?), and
//! 2. answer full historical `DurTop(k, I, τ)` queries at any point
//!    ([`StreamingMonitor::query`]).
//!
//! Since PR 3 the monitor is a thin facade over the live
//! [`ShardedEngine`]: arrivals land in the engine's mutable head shard
//! (amortized-cheap forest maintenance), old shards seal and stay
//! immutable — with the `O(span)` seal collapse running as a background
//! worker-pool job, so `push` never stalls on a shard rotation — and
//! historical queries fan out across the shards through the persistent
//! worker pool: streaming and sharding are one system instead of two
//! parallel implementations.
//!
//! Since PR 6 the monitor also stopped keeping its own duplicate copy of
//! the history: the engine's shards (behind the tiered
//! [`ShardStorage`](crate::ShardStorage) backend) are the single resident
//! copy, and the contiguous view the `τ > max_tau` scan fallback needs is
//! a lazily materialized, incrementally topped-up cache.

use crate::algorithms::{s_hop, t_hop, RefillMode};
use crate::check::{LockClass, TrackedMutex, TrackedMutexGuard};
use crate::context::QueryContext;
use crate::engine::Algorithm;
use crate::error::QueryError;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, FallbackReason, QueryResult};
use crate::serve::ServeRequest;
use crate::sharded::ShardedEngine;
use crate::subscribe::{SubscriptionId, SubscriptionRegistry, SubscriptionSnapshot};
use durable_topk_index::{OracleScorer, OracleScratch, TopKResult};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};
use std::cell::RefCell;

/// The live sharded engine as a `TopKOracle`: each probe fans the window
/// over the shard indexes via [`ShardedEngine::top_k_into`], which is
/// exact for any window. Serves the `τ > max_tau` fallback of
/// [`StreamingMonitor::query`] on the calling thread (hence the
/// single-threaded interior context).
struct EngineOracle<'a> {
    engine: &'a ShardedEngine,
    ctx: RefCell<QueryContext>,
}

impl TopKOracle for EngineOracle<'_> {
    fn top_k_into<S: OracleScorer + ?Sized>(
        &self,
        _ds: &Dataset,
        scorer: &S,
        k: usize,
        w: Window,
        _scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) {
        self.engine.top_k_into(scorer, k, w, &mut self.ctx.borrow_mut(), out);
    }

    fn queries_issued(&self) -> u64 {
        self.engine.oracle_queries()
    }

    fn reset_counters(&self) {
        self.engine.reset_counters();
    }
}

/// Default owned records per sealed shard of the backing engine.
const DEFAULT_SHARD_SPAN: usize = 4_096;
/// Default exactness bound for historical `DurTop` queries (`τ ≤` this is
/// served by the sharded fan-out; larger `τ` falls back to a scan-backed
/// execution over the full history).
const DEFAULT_MAX_TAU: Time = 4_096;

/// An online durable top-k engine over an append-only record stream.
///
/// A facade over the live [`ShardedEngine`]. The engine's shards (and
/// their storage backend) are the *only* permanent copy of the records —
/// the monitor no longer duplicates the history alongside them. The
/// contiguous view the `τ > max_tau` scan fallback needs is a lazily
/// materialized cache ([`history`](StreamingMonitor::history)), rebuilt
/// from the shards on demand and topped up incrementally as the stream
/// grows. The monitor owns a [`QueryContext`] and a result buffer, so the
/// per-arrival classification probe of [`push`](StreamingMonitor::push)
/// allocates nothing once warm.
///
/// Ingestion ([`push`](StreamingMonitor::push)) takes `&mut self`, so the
/// monitor is a single-writer facade; the sharded engine underneath
/// remains the concurrent substrate.
#[derive(Debug)]
pub struct StreamingMonitor {
    engine: ShardedEngine,
    /// Lazy contiguous view of the full history (attribute rows by global
    /// id), extended from the engine's shards on demand. Only the scan
    /// fallback reads it; bounded-τ traffic never materializes it. Ranked
    /// below the storage locks: topping it up faults spilled chunks in
    /// through the engine's storage backend while it is held.
    history: TrackedMutex<Dataset>,
    ctx: QueryContext,
    probe: TopKResult,
    /// Standing queries, refreshed inline per push (the monitor is
    /// single-threaded; no pool dispatch).
    subs: SubscriptionRegistry,
}

impl StreamingMonitor {
    /// Creates an empty monitor for records with `dim` attributes, using
    /// default shard bounds (shards of 4096 records, exact historical
    /// queries up to `τ = 4096`).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `leaf_size == 0`.
    pub fn new(dim: usize, leaf_size: usize) -> Self {
        Self::with_bounds(dim, leaf_size, DEFAULT_SHARD_SPAN, DEFAULT_MAX_TAU)
    }

    /// Creates an empty monitor with explicit shard bounds: the backing
    /// engine seals a shard every `shard_span` records and answers
    /// historical queries exactly for `τ ≤ max_tau` without fallback.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn with_bounds(dim: usize, leaf_size: usize, shard_span: usize, max_tau: Time) -> Self {
        let engine = crate::EngineConfig::new(dim, shard_span, max_tau)
            .leaf_size(leaf_size)
            .build()
            // lint: allow(panic) — documented-panic wrapper over EngineConfig::build.
            .unwrap_or_else(|e| panic!("{e}"));
        let subs = SubscriptionRegistry::anchored(&engine);
        Self {
            engine,
            history: TrackedMutex::new(LockClass::MonitorCache, Dataset::new(dim)),
            ctx: QueryContext::new(),
            probe: TopKResult::empty(),
            subs,
        }
    }

    /// Builder: bounds the head shard's incremental skyband at `k_max`,
    /// enabling S-Band on the backing engine *and* the zero-change
    /// fast-path gate for standing queries with `k ≤ k_max` (see
    /// [`subscribe`](StreamingMonitor::subscribe)). Call before the first
    /// push.
    pub fn with_skyband_bound(mut self, k_max: usize) -> Self {
        self.engine.set_skyband_bound(k_max);
        self
    }

    /// Builder: enables the backing engine's sealed-shard result cache
    /// with the given byte budget (see
    /// [`EngineConfig::result_cache`](crate::EngineConfig::result_cache))
    /// — repeated historical `DurTop` queries replay memoized per-shard
    /// answers instead of re-probing sealed tails.
    pub fn with_result_cache(mut self, budget_bytes: usize) -> Self {
        self.engine.set_result_cache(budget_bytes);
        self
    }

    /// Bootstraps the monitor from existing history. The given dataset
    /// seeds the history cache directly (preserving any wall-clock
    /// column), so no copy is rebuilt from the shards later.
    pub fn from_history(ds: Dataset, leaf_size: usize) -> Self {
        let mut monitor = Self::new(ds.dim(), leaf_size);
        for id in 0..ds.len() {
            monitor.engine.append(ds.row(id as RecordId));
        }
        *monitor.history.lock() = ds;
        monitor
    }

    /// Records ingested so far.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether no record was ingested.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// A contiguous view of the full ingested history (attribute rows by
    /// global arrival id), materialized lazily: the first call copies the
    /// rows out of the engine's shards (faulting any spilled chunks in
    /// through the storage backend), later calls only top up the records
    /// that arrived since. Rows pushed via [`push`](StreamingMonitor::push)
    /// carry no wall-clock stamps in this view.
    pub fn history(&self) -> TrackedMutexGuard<'_, Dataset> {
        let mut h = self.history.lock();
        let from = h.len();
        if from < self.engine.len() {
            self.engine.copy_history_into(&mut h, from);
        }
        h
    }

    /// The backing live sharded engine (shard counts, direct queries).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Cumulative physical page reads the per-arrival classification and
    /// subscription-refresh probes of [`push`](StreamingMonitor::push)
    /// paid to fault spilled chunks back in — the building-block path's
    /// cold-read ledger (always `0` under
    /// [`MemoryStorage`](crate::MemoryStorage)).
    pub fn probe_cold_page_hits(&self) -> u64 {
        self.ctx.cold_page_hits
    }

    /// Waits out every in-flight background shard seal of the backing
    /// engine. Queries are exact without this (pending snapshots serve
    /// through their forests); deterministic shard-state inspection and
    /// orderly teardown want it.
    pub fn quiesce(&mut self) {
        self.engine.quiesce();
    }

    /// Ingests a record and reports whether it is τ-durable (look-back,
    /// under `scorer` and `k`) at the moment of its arrival.
    ///
    /// Amortized cost: `O(polylog n)` index maintenance plus one top-k
    /// probe across the shards intersecting the τ-window. Any `tau` is
    /// accepted — the probe is a plain top-k, which the sharded engine
    /// answers exactly for arbitrary windows.
    ///
    /// # Panics
    /// Panics if `k == 0` or the attribute arity mismatches.
    pub fn push<S: OracleScorer + ?Sized>(
        &mut self,
        attrs: &[f64],
        scorer: &S,
        k: usize,
        tau: Time,
    ) -> bool {
        assert!(k > 0, "k must be positive");
        let id = self.engine.append(attrs);
        // Keep any standing queries current before answering for this
        // arrival. Inline (the monitor is single-threaded), and bounded:
        // the registry's skyband gate skips subscriptions this arrival
        // provably cannot enter.
        let plan = self.subs.plan_refresh(&self.engine, id);
        for sub in &plan.probes {
            sub.refresh(&self.engine, id, attrs, &mut self.ctx, &mut self.probe);
        }
        for sub in &plan.verifies {
            sub.verify(&self.engine);
        }
        self.engine.top_k_into(
            scorer,
            k,
            Window::lookback(id, tau),
            &mut self.ctx,
            &mut self.probe,
        );
        self.probe.admits_score(scorer.score(attrs))
    }

    /// Registers a standing `DurTop` query on the stream: the answer set
    /// over the already-pushed prefix is materialized once, then every
    /// [`push`](StreamingMonitor::push) keeps it current incrementally
    /// (with the same zero-change skyband gate the serving layer uses).
    /// Read it back with [`subscription`](StreamingMonitor::subscription)
    /// or drain increments with [`take_delta`](StreamingMonitor::take_delta).
    pub fn subscribe(&mut self, req: ServeRequest) -> Result<SubscriptionId, QueryError> {
        self.subs.register(&self.engine, req, false)
    }

    /// Like [`subscribe`](StreamingMonitor::subscribe), but re-verifies
    /// the materialized set against a full recompute at every shard seal.
    pub fn subscribe_verified(&mut self, req: ServeRequest) -> Result<SubscriptionId, QueryError> {
        self.subs.register(&self.engine, req, true)
    }

    /// A snapshot of one standing query's materialized answer set and
    /// counters, or `None` for an unknown id.
    pub fn subscription(&self, id: SubscriptionId) -> Option<SubscriptionSnapshot> {
        Some(self.subs.get(id)?.snapshot())
    }

    /// Drains the records a standing query admitted since the last drain,
    /// in arrival order, or `None` for an unknown id.
    pub fn take_delta(&self, id: SubscriptionId) -> Option<Vec<RecordId>> {
        Some(self.subs.get(id)?.take_delta())
    }

    /// Removes a standing query; returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.subs.unsubscribe(id)
    }

    /// Direct access to the building block: `Q(u, k, W)` over the ingested
    /// history, served by the sharded fan-out.
    pub fn top_k<S: OracleScorer + ?Sized>(&self, scorer: &S, k: usize, w: Window) -> TopKResult {
        self.engine.top_k(scorer, k, w)
    }

    /// Historical `DurTop(k, I, τ)` over everything ingested so far, served
    /// by T-Hop (or S-Hop for `score_prioritized = true`).
    ///
    /// For `τ ≤` the engine's `max_tau` the query fans out across the
    /// shards (exact, parallel). Beyond that bound the shard overlap
    /// cannot localize durability windows, so the monitor runs the same
    /// algorithm on the ingesting thread with the sharded top-k building
    /// block as its oracle (exact for *any* window) and flags the
    /// substitution as [`FallbackReason::TauBeyondOverlap`] — the
    /// *expected* overlap miss, still exact and still index-accelerated,
    /// just without the per-shard fan-out. The reason keeps it
    /// distinguishable from a genuinely missing index in regression
    /// gates.
    pub fn query<S: OracleScorer + Sync + ?Sized>(
        &self,
        scorer: &S,
        query: &DurableQuery,
        score_prioritized: bool,
    ) -> QueryResult {
        if query.tau <= self.engine.max_tau() {
            return if score_prioritized {
                self.engine.query(Algorithm::SHop, scorer, query)
            } else {
                self.engine.query(Algorithm::THop, scorer, query)
            };
        }
        let history = self.history();
        let oracle = EngineOracle { engine: &self.engine, ctx: RefCell::new(QueryContext::new()) };
        let mut ctx = QueryContext::new();
        let mut result = if score_prioritized {
            s_hop(&history, &oracle, scorer, query, RefillMode::TopK, &mut ctx)
        } else {
            t_hop(&history, &oracle, scorer, query, &mut ctx)
        };
        result.stats.fallback = Some(FallbackReason::TauBeyondOverlap);
        // The oracle's probes ran through `top_k_into`, whose cold reads
        // land in the context scratch rather than per-probe stats; drain
        // them so the fallback's answer carries its real cold-tier cost.
        result.stats.cold_page_hits += oracle.ctx.into_inner().take_cold_page_hits();
        result
    }

    /// Ids of the records currently in `π≤k` of the most recent τ-window
    /// (the "current champions" view of continuous monitoring).
    pub fn current_top<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        k: usize,
        tau: Time,
    ) -> Vec<RecordId> {
        if self.engine.is_empty() {
            return Vec::new();
        }
        let t = (self.engine.len() - 1) as Time;
        self.top_k(scorer, k, Window::lookback(t, tau))
            .items
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, DurableTopKEngine};
    use durable_topk_temporal::LinearScorer;
    use rand::prelude::*;

    #[test]
    fn push_classification_matches_offline_query() {
        let mut rng = StdRng::seed_from_u64(404);
        let mut monitor = StreamingMonitor::new(2, 8);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let (k, tau) = (3usize, 20u32);
        let mut online = Vec::new();
        for _ in 0..300 {
            let attrs = [rng.random_range(0..30) as f64, rng.random_range(0..30) as f64];
            if monitor.push(&attrs, &scorer, k, tau) {
                online.push((monitor.len() - 1) as RecordId);
            }
        }
        // Offline: which records were durable at their own arrival?
        let engine = DurableTopKEngine::new(monitor.history().clone());
        let q = DurableQuery { k, tau, interval: Window::new(0, 299) };
        let offline = engine.query(Algorithm::THop, &scorer, &q);
        assert_eq!(online, offline.records);
    }

    #[test]
    fn push_classification_survives_shard_sealing() {
        // Tight bounds force many seals mid-stream; classifications and
        // historical queries must not notice.
        let mut rng = StdRng::seed_from_u64(405);
        let mut monitor = StreamingMonitor::with_bounds(2, 4, 16, 24);
        let scorer = LinearScorer::new(vec![0.4, 0.6]);
        let (k, tau) = (2usize, 24u32);
        let mut online = Vec::new();
        for _ in 0..200 {
            let attrs = [rng.random_range(0..12) as f64, rng.random_range(0..12) as f64];
            if monitor.push(&attrs, &scorer, k, tau) {
                online.push((monitor.len() - 1) as RecordId);
            }
        }
        assert!(monitor.engine().sealed_shards() > 5, "bounds must force seals");
        let engine = DurableTopKEngine::new(monitor.history().clone());
        let q = DurableQuery { k, tau, interval: Window::new(0, 199) };
        assert_eq!(online, engine.query(Algorithm::THop, &scorer, &q).records);
        assert_eq!(monitor.query(&scorer, &q, false).records, online);
    }

    #[test]
    fn historical_queries_through_the_engine() {
        let mut monitor = StreamingMonitor::new(1, 4);
        let scorer = LinearScorer::new(vec![1.0]);
        for i in 0..200u32 {
            monitor.push(&[((i * 31) % 57) as f64], &scorer, 1, 10);
        }
        let q = DurableQuery { k: 2, tau: 25, interval: Window::new(50, 199) };
        let via_engine = monitor.query(&scorer, &q, false);
        let via_engine_shop = monitor.query(&scorer, &q, true);
        let engine = DurableTopKEngine::new(monitor.history().clone());
        let reference = engine.query(Algorithm::TBase, &scorer, &q);
        assert_eq!(via_engine.records, reference.records);
        assert_eq!(via_engine_shop.records, reference.records);
        assert!(via_engine.stats.fallback.is_none(), "tau within the bound needs no fallback");
    }

    #[test]
    fn tau_beyond_the_bound_falls_back_exactly() {
        let mut monitor = StreamingMonitor::with_bounds(1, 4, 32, 16);
        let scorer = LinearScorer::new(vec![1.0]);
        for i in 0..120u32 {
            monitor.push(&[((i * 13) % 37) as f64], &scorer, 1, 8);
        }
        let q = DurableQuery { k: 2, tau: 50, interval: Window::new(0, 119) };
        let got = monitor.query(&scorer, &q, false);
        assert_eq!(
            got.stats.fallback,
            Some(FallbackReason::TauBeyondOverlap),
            "tau 50 > max_tau 16 must be flagged as the expected overlap miss"
        );
        assert!(got.stats.fallback.expect("set").is_expected());
        let engine = DurableTopKEngine::new(monitor.history().clone());
        assert_eq!(got.records, engine.query(Algorithm::THop, &scorer, &q).records);
        let shop = monitor.query(&scorer, &q, true);
        assert_eq!(shop.records, got.records);
    }

    #[test]
    fn bootstrapping_from_history() {
        let ds = Dataset::from_rows(1, (0..50).map(|i| [i as f64]));
        let mut monitor = StreamingMonitor::from_history(ds, 4);
        assert_eq!(monitor.len(), 50);
        let scorer = LinearScorer::new(vec![1.0]);
        // Increasing data: every newcomer is durable.
        assert!(monitor.push(&[100.0], &scorer, 1, 30));
        // A low value is not.
        assert!(!monitor.push(&[-1.0], &scorer, 1, 30));
    }

    #[test]
    fn scan_fallback_survives_without_a_duplicate_history() {
        // Regression guard for the PR 6 dedup: the monitor no longer keeps
        // its own copy of every record, so the τ > max_tau scan fallback
        // must reconstruct the history from the shards — across sealed
        // tails, in-flight seals and the mutable head — and keep the cache
        // consistent as the stream grows between fallback queries.
        let mut monitor = StreamingMonitor::with_bounds(2, 4, 16, 8);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let row = |i: u32| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64];
        for i in 0..100u32 {
            monitor.push(&row(i), &scorer, 1, 4);
        }
        // First fallback: materializes the cache from the shards.
        let q1 = DurableQuery { k: 2, tau: 40, interval: Window::new(0, 99) };
        let got1 = monitor.query(&scorer, &q1, false);
        assert_eq!(got1.stats.fallback, Some(FallbackReason::TauBeyondOverlap));
        let flat1 = DurableTopKEngine::new(monitor.history().clone());
        assert_eq!(got1.records, flat1.query(Algorithm::THop, &scorer, &q1).records);
        // Keep streaming, then fall back again: the cache tops up with
        // exactly the new arrivals (no stale or duplicated rows).
        for i in 100..150u32 {
            monitor.push(&row(i), &scorer, 1, 4);
        }
        let q2 = DurableQuery { k: 2, tau: 40, interval: Window::new(0, 149) };
        let got2 = monitor.query(&scorer, &q2, true);
        assert_eq!(got2.stats.fallback, Some(FallbackReason::TauBeyondOverlap));
        assert_eq!(monitor.history().len(), 150);
        let expected = Dataset::from_rows(2, (0..150).map(row));
        assert_eq!(monitor.history().raw_attrs(), expected.raw_attrs());
        let flat2 = DurableTopKEngine::new(expected);
        assert_eq!(got2.records, flat2.query(Algorithm::SHop, &scorer, &q2).records);
    }

    #[test]
    fn standing_queries_track_the_stream_across_seals() {
        use crate::serve::{ScorerSpec, ServeRequest};
        let mut rng = StdRng::seed_from_u64(406);
        let mut monitor = StreamingMonitor::with_bounds(2, 4, 16, 24).with_skyband_bound(4);
        let push_scorer = LinearScorer::new(vec![0.5, 0.5]);
        let mut row = |_: u32| [rng.random_range(0..12) as f64, rng.random_range(0..12) as f64];
        for i in 0..60u32 {
            monitor.push(&row(i), &push_scorer, 1, 4);
        }
        // Subscribe mid-stream with a different scorer than push uses.
        let req = ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery { k: 2, tau: 20, interval: Window::new(10, u32::MAX) },
            scorer: ScorerSpec::Linear(vec![0.3, 0.7]),
        };
        let id = monitor.subscribe_verified(req).expect("valid");
        for i in 60..200u32 {
            monitor.push(&row(i), &push_scorer, 1, 4);
        }
        assert!(monitor.engine().sealed_shards() > 5, "bounds must force seals");
        let snap = monitor.subscription(id).expect("registered");
        assert!(!snap.diverged, "seal verifications must agree with the fast path");
        let sub_scorer = LinearScorer::new(vec![0.3, 0.7]);
        let q = DurableQuery { k: 2, tau: 20, interval: Window::new(10, 199) };
        let expected = monitor.engine().try_query(Algorithm::THop, &sub_scorer, &q).expect("ok");
        assert_eq!(snap.records, expected.records);
        assert!(snap.fast_path_skips > 0, "the skyband gate must fire on a random stream");
        assert!(monitor.unsubscribe(id));
        assert!(monitor.subscription(id).is_none());
    }

    #[test]
    fn current_top_reflects_recent_window() {
        let mut monitor = StreamingMonitor::new(1, 4);
        let scorer = LinearScorer::new(vec![1.0]);
        for v in [5.0, 9.0, 1.0, 7.0] {
            monitor.push(&[v], &scorer, 2, 2);
        }
        // Window [1, 3] (tau=2 back from t=3): values 9, 1, 7 -> top-2 = {1, 3}.
        assert_eq!(monitor.current_top(&scorer, 2, 2), vec![1, 3]);
    }
}
