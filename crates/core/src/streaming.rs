//! Continuous durable top-k monitoring over streaming arrivals.
//!
//! The paper studies the *offline* problem ("our query analyzes historical
//! data") and contrasts it with continuous monitoring à la Mouratidis et al.
//! This module closes the loop as an extension: an appendable engine that
//! ingests records online (amortized-cheap index maintenance via the
//! logarithmic segment-tree forest) and can

//! 1. classify each arriving record's durability *immediately*
//!    ([`StreamingMonitor::push`] — is the newcomer a τ-durable record right
//!    now?), and
//! 2. answer full historical `DurTop(k, I, τ)` queries at any point
//!    ([`StreamingMonitor::query`]), since the forest is a drop-in top-k
//!    oracle.

use crate::algorithms::{s_hop, t_hop, RefillMode};
use crate::context::QueryContext;
use crate::oracle::TopKOracle;
use crate::query::{DurableQuery, QueryResult};
use durable_topk_index::{AppendableTopKIndex, OracleScorer, OracleScratch, TopKResult};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};

/// An online durable top-k engine over an append-only record stream.
///
/// The monitor owns an [`OracleScratch`] and a result buffer, so the
/// per-arrival classification probe of [`push`](StreamingMonitor::push)
/// allocates nothing once warm.
#[derive(Debug)]
pub struct StreamingMonitor {
    ds: Dataset,
    index: AppendableTopKIndex,
    scratch: OracleScratch,
    probe: TopKResult,
}

impl StreamingMonitor {
    /// Creates an empty monitor for records with `dim` attributes.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `leaf_size == 0`.
    pub fn new(dim: usize, leaf_size: usize) -> Self {
        Self {
            ds: Dataset::new(dim),
            index: AppendableTopKIndex::new(leaf_size),
            scratch: OracleScratch::new(),
            probe: TopKResult::empty(),
        }
    }

    /// Bootstraps the monitor from existing history.
    pub fn from_history(ds: Dataset, leaf_size: usize) -> Self {
        let index = AppendableTopKIndex::build(&ds, leaf_size);
        Self { ds, index, scratch: OracleScratch::new(), probe: TopKResult::empty() }
    }

    /// Records ingested so far.
    pub fn len(&self) -> usize {
        self.ds.len()
    }

    /// Whether no record was ingested.
    pub fn is_empty(&self) -> bool {
        self.ds.is_empty()
    }

    /// The accumulated history.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Ingests a record and reports whether it is τ-durable (look-back,
    /// under `scorer` and `k`) at the moment of its arrival.
    ///
    /// Amortized cost: `O(polylog n)` index maintenance plus one top-k query.
    ///
    /// # Panics
    /// Panics if `k == 0` or the attribute arity mismatches.
    pub fn push<S: OracleScorer + ?Sized>(
        &mut self,
        attrs: &[f64],
        scorer: &S,
        k: usize,
        tau: Time,
    ) -> bool {
        assert!(k > 0, "k must be positive");
        let id = self.ds.push(attrs);
        self.index.append(&self.ds);
        self.index.top_k_with(
            &self.ds,
            scorer,
            k,
            Window::lookback(id, tau),
            &mut self.scratch,
            &mut self.probe,
        );
        self.probe.admits_score(scorer.score(attrs))
    }

    /// Direct access to the oracle: `Q(u, k, W)` over the ingested history.
    pub fn top_k<S: OracleScorer + ?Sized>(&self, scorer: &S, k: usize, w: Window) -> TopKResult {
        self.index.top_k(&self.ds, scorer, k, w)
    }

    /// Historical `DurTop(k, I, τ)` over everything ingested so far, served
    /// by T-Hop (or S-Hop for `score_prioritized = true`) against the
    /// forest oracle.
    pub fn query<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        query: &DurableQuery,
        score_prioritized: bool,
    ) -> QueryResult {
        struct ForestOracle<'a>(&'a AppendableTopKIndex);
        impl TopKOracle for ForestOracle<'_> {
            fn top_k_into<S: OracleScorer + ?Sized>(
                &self,
                ds: &Dataset,
                scorer: &S,
                k: usize,
                w: Window,
                scratch: &mut OracleScratch,
                out: &mut TopKResult,
            ) {
                self.0.top_k_with(ds, scorer, k, w, scratch, out);
            }
            fn queries_issued(&self) -> u64 {
                self.0.counters().queries()
            }
            fn reset_counters(&self) {
                self.0.counters().reset();
            }
        }
        let oracle = ForestOracle(&self.index);
        let mut ctx = QueryContext::new();
        if score_prioritized {
            s_hop(&self.ds, &oracle, scorer, query, RefillMode::TopK, &mut ctx)
        } else {
            t_hop(&self.ds, &oracle, scorer, query, &mut ctx)
        }
    }

    /// Ids of the records currently in `π≤k` of the most recent τ-window
    /// (the "current champions" view of continuous monitoring).
    pub fn current_top<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        k: usize,
        tau: Time,
    ) -> Vec<RecordId> {
        if self.ds.is_empty() {
            return Vec::new();
        }
        let t = (self.ds.len() - 1) as Time;
        self.top_k(scorer, k, Window::lookback(t, tau))
            .items
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, DurableTopKEngine};
    use durable_topk_temporal::LinearScorer;
    use rand::prelude::*;

    #[test]
    fn push_classification_matches_offline_query() {
        let mut rng = StdRng::seed_from_u64(404);
        let mut monitor = StreamingMonitor::new(2, 8);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let (k, tau) = (3usize, 20u32);
        let mut online = Vec::new();
        for _ in 0..300 {
            let attrs = [rng.random_range(0..30) as f64, rng.random_range(0..30) as f64];
            if monitor.push(&attrs, &scorer, k, tau) {
                online.push((monitor.len() - 1) as RecordId);
            }
        }
        // Offline: which records were durable at their own arrival?
        let engine = DurableTopKEngine::new(monitor.dataset().clone());
        let q = DurableQuery { k, tau, interval: Window::new(0, 299) };
        let offline = engine.query(Algorithm::THop, &scorer, &q);
        assert_eq!(online, offline.records);
    }

    #[test]
    fn historical_queries_through_the_forest() {
        let mut monitor = StreamingMonitor::new(1, 4);
        let scorer = LinearScorer::new(vec![1.0]);
        for i in 0..200u32 {
            monitor.push(&[((i * 31) % 57) as f64], &scorer, 1, 10);
        }
        let q = DurableQuery { k: 2, tau: 25, interval: Window::new(50, 199) };
        let via_forest = monitor.query(&scorer, &q, false);
        let via_forest_shop = monitor.query(&scorer, &q, true);
        let engine = DurableTopKEngine::new(monitor.dataset().clone());
        let reference = engine.query(Algorithm::TBase, &scorer, &q);
        assert_eq!(via_forest.records, reference.records);
        assert_eq!(via_forest_shop.records, reference.records);
    }

    #[test]
    fn bootstrapping_from_history() {
        let ds = Dataset::from_rows(1, (0..50).map(|i| [i as f64]));
        let mut monitor = StreamingMonitor::from_history(ds, 4);
        assert_eq!(monitor.len(), 50);
        let scorer = LinearScorer::new(vec![1.0]);
        // Increasing data: every newcomer is durable.
        assert!(monitor.push(&[100.0], &scorer, 1, 30));
        // A low value is not.
        assert!(!monitor.push(&[-1.0], &scorer, 1, 30));
    }

    #[test]
    fn current_top_reflects_recent_window() {
        let mut monitor = StreamingMonitor::new(1, 4);
        let scorer = LinearScorer::new(vec![1.0]);
        for v in [5.0, 9.0, 1.0, 7.0] {
            monitor.push(&[v], &scorer, 2, 2);
        }
        // Window [1, 3] (tau=2 back from t=3): values 9, 1, 7 -> top-2 = {1, 3}.
        assert_eq!(monitor.current_top(&scorer, 2, 2), vec![1, 3]);
    }
}
