//! Standing-query subscriptions: materialized `DurTop(k, I, τ)` answer
//! sets maintained incrementally from the append path.
//!
//! A dashboard serving the same durable top-k to many viewers should not
//! re-run the full query per page load. It registers the request once; the
//! registry keeps the answer set current as records arrive, for a fraction
//! of a full recompute.
//!
//! The whole design rests on one property of the paper's query: durability
//! is *look-back only*. Whether record `p` belongs to `DurTop(k, I, τ)`
//! depends solely on the `τ` records preceding `p` — later arrivals can
//! never evict it and never promote it. A standing result set is therefore
//! **append-monotone**: maintaining it exactly means deciding, once per
//! arrival, whether the newcomer joins — existing entries are settled
//! forever. That single decision is a bounded probe: one look-back top-k
//! (`Q(u, k, [t−τ, t])`) plus an admission check, the same classification
//! [`StreamingMonitor`](crate::StreamingMonitor) performs per push. No
//! eviction re-pull exists because no eviction exists.
//!
//! Three tiers of per-arrival work, cheapest first:
//!
//! 1. **Zero-change fast path** — the arrival is outside every
//!    subscription's interval, or (for monotone scorers, `k` within the
//!    engine's skyband bound) the head shard's [`SkybandMaintainer`]
//!    verdict — computed on append anyway — shows a skyband duration
//!    `< τ`, proving the arrival can never enter that standing top-k. No
//!    subscription is touched.
//! 2. **Bounded refresh** — only the affected subscriptions run the
//!    look-back probe; an admitted arrival is inserted in id order.
//! 3. **Full recompute** — registration materializes the initial set via
//!    [`ShardedEngine::try_query`], and subscriptions registered with
//!    seal-boundary verification re-run it whenever the engine rotates its
//!    head, reconciling the incremental state against the oracle answer
//!    (divergence is recorded, never silently patched). Non-monotone
//!    scorers skip tier 1 (the skyband gate argument needs monotonicity)
//!    but stay exact through tier 2: the probe itself is scorer-agnostic.
//!
//! The registry is engine-agnostic glue: [`ServeEngine`](crate::ServeEngine)
//! drives it from its append path (refresh jobs ride the persistent
//! [`WorkerPool`](crate::WorkerPool) as detached jobs), while
//! [`StreamingMonitor`](crate::StreamingMonitor) drives it inline per push.
//!
//! [`SkybandMaintainer`]: durable_topk_geom::SkybandMaintainer

use crate::check::{LockClass, TrackedMutex};
use crate::context::QueryContext;
use crate::error::QueryError;
use crate::query::DurableQuery;
use crate::serve::{ScorerSpec, ServeRequest};
use crate::sharded::ShardedEngine;
use crate::sync::lock;
use durable_topk_index::{OracleScorer, TopKResult};
use durable_topk_temporal::{CosineScorer, LinearScorer, RecordId, Time, Window};
use std::sync::Arc;

/// Identifies one registered subscription within its registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// A point-in-time view of one subscription: the materialized answer set
/// plus its maintenance counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionSnapshot {
    /// The standing answer set: τ-durable records of the subscribed
    /// interval, in increasing arrival order.
    pub records: Vec<RecordId>,
    /// Bounded per-arrival probes run for this subscription.
    pub refreshes: u64,
    /// Arrivals inside the interval skipped by the skyband gate without a
    /// probe (monotone scorers under the engine's skyband bound).
    pub fast_path_skips: u64,
    /// Full `try_query` recomputes (initial materialization plus any
    /// seal-boundary verifications).
    pub full_recomputes: u64,
    /// Whether the stream has passed the subscribed interval — the result
    /// set is final (durability never changes retroactively).
    pub complete: bool,
    /// Whether a seal-boundary verification ever contradicted the
    /// incremental state, or a refresh failed. Should stay `false`; a
    /// `true` is a bug surfaced, not repaired.
    pub diverged: bool,
}

/// Aggregate counters across a whole registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptionTotals {
    /// Currently registered subscriptions.
    pub subscriptions: usize,
    /// Bounded per-arrival probes run across all subscriptions.
    pub refreshes: u64,
    /// Appends (with at least one subscription registered) that touched
    /// no subscription at all — the zero-change fast path.
    pub fast_path_skips: u64,
    /// Full `try_query` recomputes (registrations plus seal-boundary
    /// verifications).
    pub full_recomputes: u64,
}

/// Checks a parameter vector's arity against the engine dimension.
pub(crate) fn check_arity(expected: usize, got: usize) -> Result<(), QueryError> {
    if expected != got {
        return Err(QueryError::Arity { expected, got });
    }
    Ok(())
}

/// Resolves a [`ScorerSpec`] into a concrete scorer and applies `f` to it
/// — the one place serving and subscriptions turn request data back into
/// scoring code. Arity of explicit weight vectors is checked against the
/// engine dimension first.
pub(crate) fn with_scorer<R>(
    dim: usize,
    spec: &ScorerSpec,
    f: impl FnOnce(&(dyn OracleScorer + Sync)) -> R,
) -> Result<R, QueryError> {
    match spec {
        ScorerSpec::Uniform => Ok(f(&LinearScorer::uniform(dim))),
        ScorerSpec::Linear(w) => {
            check_arity(dim, w.len())?;
            Ok(f(&LinearScorer::new(w.clone())))
        }
        ScorerSpec::Cosine(w) => {
            check_arity(dim, w.len())?;
            Ok(f(&CosineScorer::new(w.clone())))
        }
        ScorerSpec::Custom(scorer) => Ok(f(scorer.as_ref())),
    }
}

/// Whether the spec resolves to a monotone scorer (the precondition of
/// the skyband fast-path gate).
fn is_monotone(dim: usize, spec: &ScorerSpec) -> Result<bool, QueryError> {
    with_scorer(dim, spec, |s| s.is_monotone())
}

/// Mutable half of one subscription, behind its own lock so refresh jobs
/// running on pool workers never contend on the registry itself.
#[derive(Debug, Default)]
struct SubState {
    /// Materialized answer set, sorted by arrival id.
    records: Vec<RecordId>,
    /// Records admitted since the last [`Subscription::take_delta`].
    delta: Vec<RecordId>,
    refreshes: u64,
    fast_path_skips: u64,
    full_recomputes: u64,
    complete: bool,
    diverged: bool,
}

impl SubState {
    /// Sorted, idempotent insert — refresh jobs may land out of arrival
    /// order, and a seal-boundary verification may race an in-flight
    /// probe; both paths compute the same truth, so inserting a record
    /// twice must be a no-op.
    fn admit(&mut self, id: RecordId) {
        if let Err(pos) = self.records.binary_search(&id) {
            self.records.insert(pos, id);
            self.delta.push(id);
        }
    }
}

/// One standing request plus its materialized state. Shared (`Arc`)
/// between the registry and any in-flight refresh jobs.
#[derive(Debug)]
pub(crate) struct Subscription {
    id: u64,
    req: ServeRequest,
    /// Monotone scorer ⇒ the skyband gate applies.
    monotone: bool,
    /// Re-run the full recompute oracle at every seal boundary.
    verify_on_seal: bool,
    /// Ranked below the registry lock: `plan_refresh` locks it under the
    /// registry (and the engine write lock), refresh jobs under the engine
    /// read lock alone.
    state: TrackedMutex<SubState>,
}

impl Subscription {
    /// Tier 2: the bounded per-arrival check. One look-back top-k probe
    /// over the shards intersecting `[id − τ, id]` plus an admission
    /// test; an admitted arrival joins the materialized set. Exact for
    /// *any* scorer — monotonicity only matters for skipping this probe,
    /// never for running it.
    pub(crate) fn refresh(
        &self,
        engine: &ShardedEngine,
        id: RecordId,
        attrs: &[f64],
        ctx: &mut QueryContext,
        out: &mut TopKResult,
    ) {
        let q = &self.req.query;
        let admitted = with_scorer(engine.dim(), &self.req.scorer, |scorer| {
            engine.top_k_into(scorer, q.k, Window::lookback(id, q.tau), ctx, out);
            out.admits_score(scorer.score(attrs))
        });
        let mut state = lock(&self.state);
        state.refreshes += 1;
        match admitted {
            Ok(true) => state.admit(id),
            Ok(false) => {}
            // Arity was validated at registration; reaching this means the
            // engine changed shape underneath us — surface, don't guess.
            Err(_) => state.diverged = true,
        }
    }

    /// Tier 3: the correctness oracle. Recomputes the covered prefix via
    /// [`ShardedEngine::try_query`] and reconciles: the incremental state
    /// must be a *subset* of the oracle answer (in-flight probes may not
    /// have landed yet — they can only add records the oracle already
    /// agrees on); anything the oracle disowns marks the subscription
    /// diverged. Missing records are filled in, so a verified
    /// subscription is also fully caught up to the recompute point.
    pub(crate) fn verify(&self, engine: &ShardedEngine) {
        let q = &self.req.query;
        let len = engine.len();
        if len == 0 || (q.interval.start() as usize) >= len {
            return;
        }
        let upto = q.interval.end().min((len - 1) as Time);
        let full =
            DurableQuery { k: q.k, tau: q.tau, interval: Window::new(q.interval.start(), upto) };
        let fresh = with_scorer(engine.dim(), &self.req.scorer, |scorer| {
            engine.try_query(self.req.alg, scorer, &full)
        });
        let mut state = lock(&self.state);
        state.full_recomputes += 1;
        match fresh {
            Ok(Ok(fresh)) => {
                let false_positive = state
                    .records
                    .iter()
                    .take_while(|&&r| r <= upto)
                    .any(|r| fresh.records.binary_search(r).is_err());
                if false_positive {
                    state.diverged = true;
                }
                for &r in &fresh.records {
                    state.admit(r);
                }
            }
            _ => state.diverged = true,
        }
    }

    /// Marks the subscription diverged (a refresh job died mid-flight).
    pub(crate) fn mark_diverged(&self) {
        lock(&self.state).diverged = true;
    }

    /// A point-in-time copy of the materialized state.
    pub(crate) fn snapshot(&self) -> SubscriptionSnapshot {
        let state = lock(&self.state);
        SubscriptionSnapshot {
            records: state.records.clone(),
            refreshes: state.refreshes,
            fast_path_skips: state.fast_path_skips,
            full_recomputes: state.full_recomputes,
            complete: state.complete,
            diverged: state.diverged,
        }
    }

    /// Drains the records admitted since the last call, in arrival order.
    pub(crate) fn take_delta(&self) -> Vec<RecordId> {
        let mut delta = std::mem::take(&mut lock(&self.state).delta);
        delta.sort_unstable();
        delta
    }
}

/// The per-arrival work one append produced: subscriptions needing the
/// bounded probe, and subscriptions due a seal-boundary verification.
/// Built under the engine lock (classification reads the head skyband),
/// executed after it is released — on a pool worker for
/// [`ServeEngine`](crate::ServeEngine), inline for the monitor.
#[derive(Debug, Default)]
pub(crate) struct RefreshPlan {
    pub(crate) probes: Vec<Arc<Subscription>>,
    pub(crate) verifies: Vec<Arc<Subscription>>,
}

impl RefreshPlan {
    /// Whether the append touches no subscription (the zero-change fast
    /// path).
    pub(crate) fn is_empty(&self) -> bool {
        self.probes.is_empty() && self.verifies.is_empty()
    }
}

/// The subscription registry: registered standing requests plus the
/// classification logic the append path runs per arrival. Engine-agnostic
/// — the owner decides where plans execute.
#[derive(Debug, Default)]
pub(crate) struct SubscriptionRegistry {
    subs: Vec<Arc<Subscription>>,
    next_id: u64,
    /// Engine seal epoch as of the last planned append — a difference
    /// means a shard boundary was crossed since.
    last_seal_epoch: u64,
    refreshes: u64,
    fast_path_skips: u64,
    full_recomputes: u64,
}

impl SubscriptionRegistry {
    /// An empty registry anchored at the engine's current seal epoch (so
    /// pre-existing shards never trigger a spurious boundary event).
    pub(crate) fn anchored(engine: &ShardedEngine) -> Self {
        Self { last_seal_epoch: engine.seal_epoch(), ..Self::default() }
    }

    /// Registers a standing request and materializes its initial answer
    /// set over the already-ingested prefix (one full recompute).
    ///
    /// Validation mirrors the serving path: zero `k`/`τ`, `τ` beyond the
    /// engine's overlap bound, and weight-vector arity all come back as
    /// typed [`QueryError`]s.
    pub(crate) fn register(
        &mut self,
        engine: &ShardedEngine,
        req: ServeRequest,
        verify_on_seal: bool,
    ) -> Result<SubscriptionId, QueryError> {
        let q = req.query;
        if q.k == 0 {
            return Err(QueryError::ZeroK);
        }
        if q.tau == 0 {
            return Err(QueryError::ZeroTau);
        }
        if q.tau > engine.max_tau() {
            return Err(QueryError::TauExceedsOverlap { tau: q.tau, max_tau: engine.max_tau() });
        }
        let monotone = is_monotone(engine.dim(), &req.scorer)?;
        let len = engine.len();
        let mut state = SubState::default();
        if len > 0 && (q.interval.start() as usize) < len {
            let upto = q.interval.end().min((len - 1) as Time);
            let init = DurableQuery {
                k: q.k,
                tau: q.tau,
                interval: Window::new(q.interval.start(), upto),
            };
            let fresh = with_scorer(engine.dim(), &req.scorer, |scorer| {
                engine.try_query(req.alg, scorer, &init)
            })??;
            state.delta = fresh.records.clone();
            state.records = fresh.records;
            state.full_recomputes = 1;
            self.full_recomputes += 1;
        }
        state.complete = (q.interval.end() as usize) < len;
        let id = self.next_id;
        self.next_id += 1;
        self.subs.push(Arc::new(Subscription {
            id,
            req,
            monotone,
            verify_on_seal,
            state: TrackedMutex::new(LockClass::SubscriptionState, state),
        }));
        Ok(SubscriptionId(id))
    }

    /// Classifies one arrival against every subscription — tier 1 of the
    /// refresh ladder, run under the engine lock right after the append.
    /// Returns the (possibly empty) plan of probes and verifications to
    /// execute once the lock is released.
    pub(crate) fn plan_refresh(&mut self, engine: &ShardedEngine, id: RecordId) -> RefreshPlan {
        let epoch = engine.seal_epoch();
        let seal_crossed = epoch != self.last_seal_epoch;
        self.last_seal_epoch = epoch;
        let mut plan = RefreshPlan::default();
        if self.subs.is_empty() {
            return plan;
        }
        for sub in &self.subs {
            let q = &sub.req.query;
            let complete = {
                let mut state = lock(&sub.state);
                if !state.complete && q.interval.end() < id {
                    state.complete = true;
                }
                state.complete
            };
            if seal_crossed && sub.verify_on_seal && !complete {
                plan.verifies.push(Arc::clone(sub));
            }
            if complete || !q.interval.contains(id) {
                continue;
            }
            if sub.monotone {
                // The head maintainer classified this arrival on append;
                // a duration below the subscription's τ proves it cannot
                // be durable there. Sound only for monotone scorers (the
                // S-Band superset argument), hence the flag.
                if let Some(duration) = engine.arrival_skyband_duration(q.k) {
                    if duration < q.tau {
                        lock(&sub.state).fast_path_skips += 1;
                        continue;
                    }
                }
            }
            plan.probes.push(Arc::clone(sub));
        }
        if plan.is_empty() {
            self.fast_path_skips += 1;
        } else {
            self.refreshes += plan.probes.len() as u64;
            self.full_recomputes += plan.verifies.len() as u64;
        }
        plan
    }

    /// Removes a subscription; returns whether it existed.
    pub(crate) fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|s| s.id != id.0);
        self.subs.len() != before
    }

    /// The subscription behind an id, if still registered.
    pub(crate) fn get(&self, id: SubscriptionId) -> Option<Arc<Subscription>> {
        self.subs.iter().find(|s| s.id == id.0).map(Arc::clone)
    }

    /// Aggregate counters across every subscription.
    pub(crate) fn totals(&self) -> SubscriptionTotals {
        SubscriptionTotals {
            subscriptions: self.subs.len(),
            refreshes: self.refreshes,
            fast_path_skips: self.fast_path_skips,
            full_recomputes: self.full_recomputes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Algorithm;

    fn row(i: u32) -> [f64; 2] {
        [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]
    }

    fn request(k: usize, tau: Time, interval: Window) -> ServeRequest {
        ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery { k, tau, interval },
            scorer: ScorerSpec::Linear(vec![0.6, 0.4]),
        }
    }

    #[test]
    fn registration_materializes_and_appends_refresh_incrementally() {
        let mut engine =
            crate::EngineConfig::new(2, 32, 16).skyband_bound(4).build().expect("config");
        for i in 0..100u32 {
            engine.append(&row(i));
        }
        let mut registry = SubscriptionRegistry::anchored(&engine);
        let req = request(2, 10, Window::new(0, u32::MAX));
        let id = registry.register(&engine, req, true).expect("valid");
        let sub = registry.get(id).expect("registered");
        // Initial set matches the oracle over the ingested prefix.
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, 99) };
        let expected = engine.try_query(Algorithm::THop, &scorer, &q).expect("query");
        assert_eq!(sub.snapshot().records, expected.records);
        // Stream on, executing every plan inline.
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        for i in 100..220u32 {
            let attrs = row(i);
            let id = engine.append(&attrs);
            let plan = registry.plan_refresh(&engine, id);
            for sub in &plan.probes {
                sub.refresh(&engine, id, &attrs, &mut ctx, &mut out);
            }
            for sub in &plan.verifies {
                sub.verify(&engine);
            }
        }
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, 219) };
        let expected = engine.try_query(Algorithm::THop, &scorer, &q).expect("query");
        let snap = sub.snapshot();
        assert_eq!(snap.records, expected.records);
        assert!(!snap.diverged, "seal-boundary verifications must agree");
        assert!(snap.full_recomputes > 1, "220 appends over span 32 cross seal boundaries");
        // The gate spared real work: some arrivals probed, some skipped
        // without touching the subscription, and no append did both.
        let totals = registry.totals();
        assert_eq!(totals.subscriptions, 1);
        assert!(totals.refreshes > 0, "durable arrivals must probe");
        assert!(totals.fast_path_skips > 0, "the skyband gate must skip non-durable arrivals");
        // Per-sub skips can exceed the registry's: a seal-crossing append
        // may gate-skip the probe yet still plan a verification.
        assert!(snap.fast_path_skips >= totals.fast_path_skips);
        assert!(totals.refreshes + totals.fast_path_skips <= 120);
        // The delta drains exactly the standing set, once.
        let mut seen = sub.take_delta();
        seen.sort_unstable();
        assert_eq!(seen, snap.records);
        assert!(sub.take_delta().is_empty());
    }

    #[test]
    fn registration_validates_like_the_serving_path() {
        let mut engine = ShardedEngine::new_live(2, 32, 16);
        engine.append(&row(0));
        let mut registry = SubscriptionRegistry::anchored(&engine);
        let w = Window::new(0, u32::MAX);
        assert_eq!(
            registry.register(&engine, request(0, 8, w), false).unwrap_err(),
            QueryError::ZeroK
        );
        assert_eq!(
            registry.register(&engine, request(1, 0, w), false).unwrap_err(),
            QueryError::ZeroTau
        );
        assert_eq!(
            registry.register(&engine, request(1, 17, w), false).unwrap_err(),
            QueryError::TauExceedsOverlap { tau: 17, max_tau: 16 }
        );
        let skewed =
            ServeRequest { scorer: ScorerSpec::Linear(vec![1.0, 2.0, 3.0]), ..request(1, 8, w) };
        assert_eq!(
            registry.register(&engine, skewed, false).unwrap_err(),
            QueryError::Arity { expected: 2, got: 3 }
        );
        assert_eq!(registry.totals().subscriptions, 0);
    }

    #[test]
    fn fixed_intervals_complete_and_stop_matching() {
        let mut engine = ShardedEngine::new_live(2, 64, 8);
        for i in 0..10u32 {
            engine.append(&row(i));
        }
        let mut registry = SubscriptionRegistry::anchored(&engine);
        let id = registry.register(&engine, request(1, 4, Window::new(0, 19)), false).expect("ok");
        let sub = registry.get(id).expect("registered");
        assert!(!sub.snapshot().complete);
        let mut ctx = QueryContext::new();
        let mut out = TopKResult::empty();
        for i in 10..40u32 {
            let attrs = row(i);
            let at = engine.append(&attrs);
            let plan = registry.plan_refresh(&engine, at);
            for sub in &plan.probes {
                assert!(at <= 19, "arrivals past the interval must not probe");
                sub.refresh(&engine, at, &attrs, &mut ctx, &mut out);
            }
        }
        let snap = sub.snapshot();
        assert!(snap.complete, "the stream passed the interval end");
        assert!(snap.records.iter().all(|&r| r <= 19));
        // Unsubscribing removes it; the id stops resolving.
        assert!(registry.unsubscribe(id));
        assert!(!registry.unsubscribe(id));
        assert!(registry.get(id).is_none());
    }
}
