//! High-level query engine tying the dataset, indexes and algorithms
//! together.

use crate::algorithms::{s_band, s_base, s_hop, sband_fallback_reason, t_base, t_hop, RefillMode};
use crate::context::QueryContext;
use crate::duration::max_duration;
use crate::error::BuildError;
use crate::oracle::{SegTreeOracle, TopKOracle};
use crate::query::{DurableQuery, QueryResult};
use durable_topk_index::{DurableSkybandIndex, OracleScorer, SkybandCandidates};
use durable_topk_temporal::{Anchor, Dataset, RecordId, Time, Window};
use std::sync::Arc;

/// Which durable top-k algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Time-prioritized baseline (Section III-A).
    TBase,
    /// Time-prioritized hop algorithm (Section III-B).
    THop,
    /// Score-prioritized sorting baseline (Section IV-A).
    SBase,
    /// Durable k-skyband candidates (Section IV-B); monotone scorers only.
    /// Served by the index built with
    /// [`DurableTopKEngine::with_skyband_index`]; without one (or when `k`
    /// exceeds its build bound, or the scorer is not monotone) the engine
    /// falls back to S-Hop and flags
    /// [`QueryStats::fallback`](crate::QueryStats).
    SBand,
    /// Score-prioritized hop algorithm (Section IV-C).
    SHop,
    /// S-Hop with the footnote-5 top-1 refill variant.
    SHopTop1,
}

impl Algorithm {
    /// All algorithm variants (handy for agreement tests and sweeps).
    pub const ALL: [Algorithm; 6] = [
        Algorithm::TBase,
        Algorithm::THop,
        Algorithm::SBase,
        Algorithm::SBand,
        Algorithm::SHop,
        Algorithm::SHopTop1,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::TBase => "T-Base",
            Algorithm::THop => "T-Hop",
            Algorithm::SBase => "S-Base",
            Algorithm::SBand => "S-Band",
            Algorithm::SHop => "S-Hop",
            Algorithm::SHopTop1 => "S-Hop/1",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared per-substrate dispatch: runs `alg` over one dataset + oracle +
/// optional skyband candidate source, with S-Band's graceful degradation
/// to S-Hop (reason recorded in the stats). Both the sealed-engine
/// front-end and every arm of the sharded fan-out delegate here, so the
/// same request can never be dispatched differently depending on which
/// substrate serves it.
pub(crate) fn run_algorithm<O, C, S>(
    ds: &Dataset,
    oracle: &O,
    skyband: Option<&C>,
    alg: Algorithm,
    scorer: &S,
    query: &DurableQuery,
    ctx: &mut QueryContext,
) -> QueryResult
where
    O: TopKOracle + ?Sized,
    C: SkybandCandidates + ?Sized,
    S: OracleScorer + ?Sized,
{
    match alg {
        Algorithm::TBase => t_base(ds, oracle, scorer, query, ctx),
        Algorithm::THop => t_hop(ds, oracle, scorer, query, ctx),
        Algorithm::SBase => s_base(ds, scorer, query, ctx),
        Algorithm::SBand => match sband_fallback_reason(skyband, scorer, query.k) {
            None => {
                // lint: allow(expect) — sband_fallback_reason returned None,
                // which requires the index to be present.
                let idx = skyband.expect("reason checked Some");
                s_band(ds, oracle, idx, scorer, query, ctx)
            }
            Some(reason) => {
                // Graceful degradation: S-Hop answers the same query
                // without the candidate index, and the stats carry why.
                let mut result = s_hop(ds, oracle, scorer, query, RefillMode::TopK, ctx);
                result.stats.fallback = Some(reason);
                result
            }
        },
        Algorithm::SHop => s_hop(ds, oracle, scorer, query, RefillMode::TopK, ctx),
        Algorithm::SHopTop1 => s_hop(ds, oracle, scorer, query, RefillMode::Top1, ctx),
    }
}

/// A ready-to-query durable top-k engine over one dataset.
///
/// Holds the dataset as a shared [`Arc`] — the sharded engine's seal path
/// and the storage backends reference the same chunk without copying —
/// plus the segment-tree top-k oracle, and optionally the durable
/// k-skyband index (for S-Band) and a reversed twin (for look-ahead
/// durability).
#[derive(Debug)]
pub struct DurableTopKEngine {
    ds: Arc<Dataset>,
    oracle: SegTreeOracle,
    skyband: Option<DurableSkybandIndex>,
    /// Reversed dataset + oracle, built on demand for look-ahead queries.
    reversed: Option<Box<DurableTopKEngine>>,
}

impl DurableTopKEngine {
    /// Builds the engine (segment-tree oracle included) over a dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn new(ds: Dataset) -> Self {
        let oracle = SegTreeOracle::build(&ds);
        Self { ds: Arc::new(ds), oracle, skyband: None, reversed: None }
    }

    /// Builds the engine with a custom oracle leaf size (ablations).
    pub fn with_leaf_size(ds: Dataset, leaf_size: usize) -> Self {
        let oracle = SegTreeOracle::with_leaf_size(&ds, leaf_size);
        Self { ds: Arc::new(ds), oracle, skyband: None, reversed: None }
    }

    /// Assembles an engine from a dataset and an already-built oracle —
    /// the shard-sealing path, where a head shard's forest collapses into
    /// the tree the sealed shard serves (moved outright when the forest
    /// already holds a single tree).
    ///
    /// Errors on an empty dataset instead of panicking: sealing runs on
    /// pool workers in a serving deployment, where an abort is never the
    /// right failure mode.
    ///
    /// The dataset arrives as a shared `Arc`: sealing snapshots the head's
    /// chunk once and the storage backend, the sealed engine and any
    /// history view all reference that single copy.
    pub fn from_parts(ds: Arc<Dataset>, oracle: SegTreeOracle) -> Result<Self, BuildError> {
        if ds.is_empty() {
            return Err(BuildError::EmptyDataset);
        }
        Ok(Self { ds, oracle, skyband: None, reversed: None })
    }

    /// Adds the durable k-skyband index serving queries with `k <= k_max`
    /// (rounded up to a power of two), enabling [`Algorithm::SBand`].
    pub fn with_skyband_index(mut self, k_max: usize) -> Self {
        self.skyband = Some(DurableSkybandIndex::build(&self.ds, k_max));
        self
    }

    /// Installs an already-built skyband index — the shard-sealing path,
    /// where the head's incremental maintainer froze its durations into
    /// the static index so the seal never rescans the history.
    pub fn with_prebuilt_skyband(mut self, index: DurableSkybandIndex) -> Self {
        self.skyband = Some(index);
        self
    }

    /// Pre-builds the reversed twin enabling
    /// [`Anchor::LookAhead`] queries via
    /// [`query_anchored`](DurableTopKEngine::query_anchored).
    pub fn with_lookahead(mut self) -> Self {
        let mut rev = DurableTopKEngine::new(self.ds.reversed());
        if let Some(sb) = &self.skyband {
            rev = rev.with_skyband_index(sb.max_k());
        }
        self.reversed = Some(Box::new(rev));
        self
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The underlying dataset as a shared handle (no copy) — what the
    /// tiered storage and the history cache hold on to.
    pub fn dataset_arc(&self) -> Arc<Dataset> {
        Arc::clone(&self.ds)
    }

    /// The top-k oracle (for direct `Q(u, k, W)` queries).
    pub fn oracle(&self) -> &SegTreeOracle {
        &self.oracle
    }

    /// The skyband index, if built.
    pub fn skyband_index(&self) -> Option<&DurableSkybandIndex> {
        self.skyband.as_ref()
    }

    /// Answers `DurTop(k, I, τ)` with look-back durability windows,
    /// allocating a fresh [`QueryContext`].
    ///
    /// Repeated callers should hold a context and use
    /// [`query_with`](DurableTopKEngine::query_with) to reuse scratch
    /// buffers across queries.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn query<S: OracleScorer + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
    ) -> QueryResult {
        self.query_with(alg, scorer, query, &mut QueryContext::new())
    }

    /// Answers `DurTop(k, I, τ)` with look-back durability windows, drawing
    /// all working memory from `ctx` — the allocation-free path.
    ///
    /// [`Algorithm::SBand`] degrades gracefully: when no skyband index was
    /// built, `query.k` exceeds its largest level, or the scorer is not
    /// monotone, the engine answers with S-Hop instead and sets
    /// [`QueryStats::fallback`](crate::QueryStats).
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn query_with<S: OracleScorer + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
        ctx: &mut QueryContext,
    ) -> QueryResult {
        run_algorithm(&self.ds, &self.oracle, self.skyband.as_ref(), alg, scorer, query, ctx)
    }

    /// Answers `DurTop(k, I, τ)` under either window anchoring.
    ///
    /// Look-ahead durability runs the unmodified look-back algorithms on the
    /// reversed dataset (`p` is τ-durable looking ahead iff its mirror image
    /// is τ-durable looking back) and maps the ids home.
    ///
    /// # Panics
    /// As [`query`](DurableTopKEngine::query); for look-ahead additionally
    /// if [`with_lookahead`](DurableTopKEngine::with_lookahead) was not
    /// called.
    pub fn query_anchored<S: OracleScorer + ?Sized>(
        &self,
        alg: Algorithm,
        scorer: &S,
        query: &DurableQuery,
        anchor: Anchor,
    ) -> QueryResult {
        match anchor {
            Anchor::LookBack => self.query(alg, scorer, query),
            Anchor::LookAhead => {
                let rev = self
                    .reversed
                    .as_ref()
                    // lint: allow(expect) — documented-panic API: the method
                    // docs require with_lookahead() for look-ahead anchors.
                    .expect("look-ahead queries require with_lookahead() at engine build time");
                let n = self.ds.len() as Time;
                let interval = query.interval.clamp_to(self.ds.len());
                let mirrored = DurableQuery {
                    k: query.k,
                    tau: query.tau,
                    interval: Window::new(n - 1 - interval.end(), n - 1 - interval.start()),
                };
                let mut result = rev.query(alg, scorer, &mirrored);
                for id in &mut result.records {
                    *id = n - 1 - *id;
                }
                result.records.sort_unstable();
                result
            }
        }
    }

    /// The longest duration for which record `p` stays in the top-k
    /// (look-back), plus the number of top-k probes used.
    pub fn max_duration<S: OracleScorer + ?Sized>(
        &self,
        scorer: &S,
        p: RecordId,
        k: usize,
    ) -> (Time, u64) {
        max_duration(&self.ds, &self.oracle, scorer, p, k, &mut QueryContext::new())
    }

    /// Cumulative top-k queries issued by the engine's oracle.
    pub fn oracle_queries(&self) -> u64 {
        self.oracle.queries_issued()
    }

    /// Resets oracle instrumentation.
    pub fn reset_counters(&self) {
        self.oracle.reset_counters();
        if let Some(rev) = &self.reversed {
            rev.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::FallbackReason;
    use durable_topk_temporal::{LinearScorer, SingleAttributeScorer};
    use rand::prelude::*;

    fn random_engine(rng: &mut StdRng, n: usize, vals: u32) -> DurableTopKEngine {
        let rows: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.random_range(0..vals) as f64, rng.random_range(0..vals) as f64])
            .collect();
        DurableTopKEngine::new(Dataset::from_rows(2, rows)).with_skyband_index(8).with_lookahead()
    }

    /// Reference implementation: definition-level durability test.
    fn brute_durable(
        ds: &Dataset,
        scorer: &dyn crate::Scorer,
        q: &DurableQuery,
        anchor: Anchor,
    ) -> Vec<RecordId> {
        let interval = q.interval.clamp_to(ds.len());
        interval
            .iter()
            .filter(|&t| {
                let w = anchor.window(t, q.tau).clamp_to(ds.len());
                let my = scorer.score(ds.row(t));
                let better = w.iter().filter(|&u| scorer.score(ds.row(u)) > my).count();
                better < q.k
            })
            .collect()
    }

    #[test]
    fn all_algorithms_agree_with_definition() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..12 {
            let n = rng.random_range(5..120);
            // Small value range: plenty of score ties to stress tie paths.
            let engine = random_engine(&mut rng, n, 6);
            let scorer = LinearScorer::new(vec![rng.random::<f64>() + 0.1, 1.0]);
            for _ in 0..4 {
                let a = rng.random_range(0..n as Time);
                let b = rng.random_range(0..n as Time);
                let q = DurableQuery {
                    k: rng.random_range(1..6),
                    tau: rng.random_range(1..(n as Time + 4)),
                    interval: Window::new(a.min(b), a.max(b)),
                };
                let expected = brute_durable(engine.dataset(), &scorer, &q, Anchor::LookBack);
                for alg in Algorithm::ALL {
                    let got = engine.query(alg, &scorer, &q);
                    assert_eq!(got.records, expected, "trial={trial} alg={alg} q={q:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn lookahead_matches_definition() {
        let mut rng = StdRng::seed_from_u64(202);
        for _ in 0..8 {
            let n = rng.random_range(5..80);
            let engine = random_engine(&mut rng, n, 8);
            let scorer = SingleAttributeScorer::new(0);
            let a = rng.random_range(0..n as Time);
            let b = rng.random_range(0..n as Time);
            let q = DurableQuery {
                k: rng.random_range(1..4),
                tau: rng.random_range(1..(n as Time)),
                interval: Window::new(a.min(b), a.max(b)),
            };
            let expected = brute_durable(engine.dataset(), &scorer, &q, Anchor::LookAhead);
            for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::TBase] {
                let got = engine.query_anchored(alg, &scorer, &q, Anchor::LookAhead);
                assert_eq!(got.records, expected, "alg={alg}");
            }
        }
    }

    #[test]
    fn hop_algorithms_issue_fewer_checks_than_tbase_visits() {
        let mut rng = StdRng::seed_from_u64(303);
        let engine = random_engine(&mut rng, 2000, 1000);
        let scorer = LinearScorer::new(vec![0.5, 0.5]);
        let q = DurableQuery { k: 5, tau: 400, interval: Window::new(0, 1999) };
        let tb = engine.query(Algorithm::TBase, &scorer, &q);
        let th = engine.query(Algorithm::THop, &scorer, &q);
        let sh = engine.query(Algorithm::SHop, &scorer, &q);
        assert_eq!(tb.records, th.records);
        // T-Base touches every record; T-Hop's durability checks are far
        // fewer on a selective query.
        assert!(th.stats.durability_checks < tb.stats.candidates / 2);
        assert!(sh.stats.durability_checks <= th.stats.durability_checks * 3);
    }

    #[test]
    fn sband_without_index_falls_back_to_shop() {
        let ds = Dataset::from_rows(2, (0..40).map(|i| [((i * 7) % 11) as f64, (i % 5) as f64]));
        let engine = DurableTopKEngine::new(ds);
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 2, tau: 8, interval: Window::new(0, 39) };
        let got = engine.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(
            got.stats.fallback,
            Some(FallbackReason::MissingSkybandIndex),
            "missing index must be flagged with its reason"
        );
        assert!(!got.stats.fallback.expect("set").is_expected(), "missing index is gate-worthy");
        let reference = engine.query(Algorithm::SHop, &scorer, &q);
        assert_eq!(got.records, reference.records);
        assert!(reference.stats.fallback.is_none());
    }

    #[test]
    fn sband_with_k_above_build_bound_falls_back() {
        let mut rng = StdRng::seed_from_u64(77);
        let engine = random_engine(&mut rng, 120, 9); // skyband built for k <= 8
        let scorer = LinearScorer::new(vec![0.7, 0.3]);
        let q = DurableQuery { k: 11, tau: 20, interval: Window::new(0, 119) };
        let got = engine.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(
            got.stats.fallback,
            Some(FallbackReason::SkybandBoundExceeded),
            "k above the build bound must fall back with its reason"
        );
        assert_eq!(got.records, engine.query(Algorithm::THop, &scorer, &q).records);
        // Within the bound the real S-Band path serves the query.
        let in_bound = DurableQuery { k: 8, ..q };
        assert!(engine.query(Algorithm::SBand, &scorer, &in_bound).stats.fallback.is_none());
    }

    #[test]
    fn sband_with_non_monotone_scorer_falls_back() {
        let mut rng = StdRng::seed_from_u64(78);
        let engine = random_engine(&mut rng, 80, 12);
        let scorer = crate::CosineScorer::new(vec![0.6, 0.8]);
        let q = DurableQuery { k: 2, tau: 10, interval: Window::new(0, 79) };
        let got = engine.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.stats.fallback, Some(FallbackReason::NonMonotoneScorer));
        assert!(got.stats.fallback.expect("set").is_expected());
        assert_eq!(got.records, engine.query(Algorithm::SHop, &scorer, &q).records);
    }

    #[test]
    fn max_duration_via_engine() {
        let ds = Dataset::from_rows(1, (0..50).map(|i| [(i % 7) as f64]));
        let engine = DurableTopKEngine::new(ds);
        let scorer = SingleAttributeScorer::new(0);
        // Record 6 has value 6, the maximum; nothing beats it until the next
        // 6 (record 13)... looking back, it is durable for all of history.
        let (d, probes) = engine.max_duration(&scorer, 6, 1);
        assert_eq!(d, 50);
        assert!(probes >= 1);
    }
}
