//! Parallel batch query evaluation.
//!
//! The paper's evaluation runs every measurement over 100 random preference
//! vectors, and the motivating applications ("users may explore parameter
//! settings at run-time, interactively or automatically") issue many queries
//! against one index. All indexes here are read-only after construction and
//! instrumented with atomic counters, so a single engine serves concurrent
//! queries; this module fans a batch out over scoped threads.

use crate::engine::{Algorithm, DurableTopKEngine};
use crate::query::{DurableQuery, QueryResult};
use durable_topk_index::OracleScorer;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs the same `DurTop(k, I, τ)` under many scorers in parallel, returning
/// results in input order.
///
/// `threads = 0` uses the available parallelism. The engine is shared
/// read-only; per-query instrumentation lands in each result's stats while
/// the engine's cumulative oracle counters aggregate across the batch.
///
/// # Panics
/// Propagates panics from worker threads (invalid queries, missing S-Band
/// index, …).
pub fn batch_query<S: OracleScorer + Sync>(
    engine: &DurableTopKEngine,
    alg: Algorithm,
    scorers: &[S],
    query: &DurableQuery,
    threads: usize,
) -> Vec<QueryResult> {
    if scorers.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(scorers.len());

    if threads == 1 {
        return scorers.iter().map(|s| engine.query(alg, s, query)).collect();
    }

    let mut results: Vec<Option<QueryResult>> = (0..scorers.len()).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<QueryResult>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= scorers.len() {
                    break;
                }
                let r = engine.query(alg, &scorers[i], query);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    results.into_iter().map(|r| r.expect("every slot filled by the work loop")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::{Dataset, LinearScorer, Window};

    fn engine(n: usize) -> DurableTopKEngine {
        let rows: Vec<[f64; 2]> =
            (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]).collect();
        DurableTopKEngine::new(Dataset::from_rows(2, rows)).with_skyband_index(8)
    }

    #[test]
    fn parallel_matches_sequential() {
        let engine = engine(3_000);
        let scorers: Vec<LinearScorer> =
            (1..=8).map(|i| LinearScorer::new(vec![i as f64, (9 - i) as f64])).collect();
        let q = DurableQuery { k: 4, tau: 500, interval: Window::new(1_000, 2_999) };
        for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::SBand] {
            let seq = batch_query(&engine, alg, &scorers, &q, 1);
            let par = batch_query(&engine, alg, &scorers, &q, 4);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.records, p.records, "alg={alg}");
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let engine = engine(100);
        let q = DurableQuery { k: 1, tau: 10, interval: Window::new(0, 99) };
        let out = batch_query::<LinearScorer>(&engine, Algorithm::THop, &[], &q, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn oracle_counters_aggregate_across_threads() {
        let engine = engine(2_000);
        engine.reset_counters();
        let scorers: Vec<LinearScorer> =
            (1..=6).map(|i| LinearScorer::new(vec![1.0, i as f64])).collect();
        let q = DurableQuery { k: 3, tau: 300, interval: Window::new(500, 1_999) };
        let results = batch_query(&engine, Algorithm::THop, &scorers, &q, 3);
        let expected: u64 = results.iter().map(|r| r.stats.topk_queries()).sum();
        assert_eq!(engine.oracle_queries(), expected);
    }
}
