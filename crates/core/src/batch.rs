//! Parallel batch query evaluation.
//!
//! The paper's evaluation runs every measurement over 100 random preference
//! vectors, and the motivating applications ("users may explore parameter
//! settings at run-time, interactively or automatically") issue many queries
//! against one index. All indexes here are read-only after construction and
//! instrumented with atomic counters, so a single engine serves concurrent
//! queries; [`BatchExecutor`] fans batches out over the persistent
//! [`WorkerPool`], whose workers each own one long-lived [`QueryContext`] —
//! the hot path stays allocation-free across the whole batch and issues no
//! `thread::spawn` per query.

use crate::context::QueryContext;
use crate::engine::{Algorithm, DurableTopKEngine};
use crate::pool::WorkerPool;
use crate::query::{DurableQuery, QueryResult};
use durable_topk_index::OracleScorer;

/// A reusable parallel executor for durable top-k query batches.
///
/// Batches run on the process-wide persistent [`WorkerPool`]: results are
/// written through disjoint chunk borrows of the output vector (one lock
/// acquisition per chunk, not per slot), each participating worker reuses
/// its own long-lived [`QueryContext`], and no threads are spawned per
/// batch — `threads` only caps how many pool workers participate.
///
/// ```
/// use durable_topk::{Algorithm, BatchExecutor, DurableQuery, DurableTopKEngine};
/// use durable_topk_temporal::{Dataset, LinearScorer, Window};
///
/// let ds = Dataset::from_rows(2, (0..500).map(|i| {
///     [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]
/// }));
/// let engine = DurableTopKEngine::new(ds);
/// let scorers: Vec<LinearScorer> =
///     (1..=16).map(|i| LinearScorer::new(vec![i as f64, (17 - i) as f64])).collect();
/// let query = DurableQuery { k: 3, tau: 50, interval: Window::new(100, 499) };
///
/// let executor = BatchExecutor::new(4);
/// let results = executor.run(&engine, Algorithm::SHop, &scorers, &query);
/// assert_eq!(results.len(), scorers.len());
/// // Results arrive in input order: results[i] answers scorers[i].
/// assert_eq!(results[0].records, engine.query(Algorithm::SHop, &scorers[0], &query).records);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// Creates an executor; `threads = 0` uses the available parallelism.
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// The worker count used for a batch of `jobs` items.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.threads
        };
        threads.min(jobs).max(1)
    }

    /// Runs the same `DurTop(k, I, τ)` under many scorers in parallel,
    /// returning results in input order.
    ///
    /// # Panics
    /// Propagates panics from worker threads (invalid queries, …).
    pub fn run<S: OracleScorer + Sync>(
        &self,
        engine: &DurableTopKEngine,
        alg: Algorithm,
        scorers: &[S],
        query: &DurableQuery,
    ) -> Vec<QueryResult> {
        self.run_jobs(scorers.len(), |i, ctx| engine.query_with(alg, &scorers[i], query, ctx))
    }

    /// Runs one query under every algorithm in `algs` (an algorithm sweep),
    /// returning results in `algs` order.
    ///
    /// # Panics
    /// Propagates panics from worker threads.
    pub fn run_sweep<S: OracleScorer + Sync + ?Sized>(
        &self,
        engine: &DurableTopKEngine,
        algs: &[Algorithm],
        scorer: &S,
        query: &DurableQuery,
    ) -> Vec<QueryResult> {
        self.run_jobs(algs.len(), |i, ctx| engine.query_with(algs[i], scorer, query, ctx))
    }

    /// Runs many distinct queries under one scorer in parallel, returning
    /// results in input order.
    ///
    /// # Panics
    /// Propagates panics from worker threads.
    pub fn run_queries<S: OracleScorer + Sync + ?Sized>(
        &self,
        engine: &DurableTopKEngine,
        alg: Algorithm,
        scorer: &S,
        queries: &[DurableQuery],
    ) -> Vec<QueryResult> {
        self.run_jobs(queries.len(), |i, ctx| engine.query_with(alg, scorer, &queries[i], ctx))
    }

    /// Shared fan-out machinery: evaluates `job(i, ctx)` for `i in 0..jobs`
    /// on the persistent pool, capped at the executor's thread count.
    fn run_jobs<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut QueryContext) -> T + Sync,
    {
        WorkerPool::global().run_jobs(jobs, self.resolved_threads(jobs.max(1)), job)
    }
}

/// Runs the same `DurTop(k, I, τ)` under many scorers in parallel, returning
/// results in input order.
///
/// Convenience wrapper over [`BatchExecutor::run`]; `threads = 0` uses the
/// available parallelism. The engine is shared read-only; per-query
/// instrumentation lands in each result's stats while the engine's
/// cumulative oracle counters aggregate across the batch.
///
/// # Panics
/// Propagates panics from worker threads (invalid queries, …).
pub fn batch_query<S: OracleScorer + Sync>(
    engine: &DurableTopKEngine,
    alg: Algorithm,
    scorers: &[S],
    query: &DurableQuery,
    threads: usize,
) -> Vec<QueryResult> {
    BatchExecutor::new(threads).run(engine, alg, scorers, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::{Dataset, LinearScorer, Window};

    fn engine(n: usize) -> DurableTopKEngine {
        let rows: Vec<[f64; 2]> =
            (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]).collect();
        DurableTopKEngine::new(Dataset::from_rows(2, rows)).with_skyband_index(8)
    }

    #[test]
    fn parallel_matches_sequential() {
        let engine = engine(3_000);
        let scorers: Vec<LinearScorer> =
            (1..=8).map(|i| LinearScorer::new(vec![i as f64, (9 - i) as f64])).collect();
        let q = DurableQuery { k: 4, tau: 500, interval: Window::new(1_000, 2_999) };
        for alg in [Algorithm::THop, Algorithm::SHop, Algorithm::SBand] {
            let seq = batch_query(&engine, alg, &scorers, &q, 1);
            let par = batch_query(&engine, alg, &scorers, &q, 4);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.records, p.records, "alg={alg}");
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let engine = engine(100);
        let q = DurableQuery { k: 1, tau: 10, interval: Window::new(0, 99) };
        let out = batch_query::<LinearScorer>(&engine, Algorithm::THop, &[], &q, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn oracle_counters_aggregate_across_threads() {
        let engine = engine(2_000);
        engine.reset_counters();
        let scorers: Vec<LinearScorer> =
            (1..=6).map(|i| LinearScorer::new(vec![1.0, i as f64])).collect();
        let q = DurableQuery { k: 3, tau: 300, interval: Window::new(500, 1_999) };
        let results = batch_query(&engine, Algorithm::THop, &scorers, &q, 3);
        let expected: u64 = results.iter().map(|r| r.stats.topk_queries()).sum();
        assert_eq!(engine.oracle_queries(), expected);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let engine = engine(400);
        let scorers = vec![LinearScorer::uniform(2), LinearScorer::new(vec![3.0, 1.0])];
        let q = DurableQuery { k: 2, tau: 40, interval: Window::new(0, 399) };
        let out = batch_query(&engine, Algorithm::SHop, &scorers, &q, 64);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].records, engine.query(Algorithm::SHop, &scorers[0], &q).records);
        assert_eq!(out[1].records, engine.query(Algorithm::SHop, &scorers[1], &q).records);
    }

    #[test]
    fn algorithm_sweep_agrees_across_algorithms() {
        let engine = engine(1_500);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let q = DurableQuery { k: 3, tau: 200, interval: Window::new(500, 1_499) };
        let algs = Algorithm::ALL;
        let results = BatchExecutor::new(0).run_sweep(&engine, &algs, &scorer, &q);
        assert_eq!(results.len(), algs.len());
        for (alg, r) in algs.iter().zip(&results) {
            assert_eq!(r.records, results[0].records, "alg={alg}");
        }
    }

    #[test]
    fn query_batches_run_in_input_order() {
        let engine = engine(800);
        let scorer = LinearScorer::uniform(2);
        let queries: Vec<DurableQuery> = (1..=5)
            .map(|i| DurableQuery { k: i, tau: 60 * i as u32, interval: Window::new(0, 799) })
            .collect();
        let par = BatchExecutor::new(3).run_queries(&engine, Algorithm::THop, &scorer, &queries);
        for (q, r) in queries.iter().zip(&par) {
            assert_eq!(r.records, engine.query(Algorithm::THop, &scorer, q).records);
        }
    }
}
