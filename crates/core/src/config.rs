//! One validated builder for every [`ShardedEngine`] knob.
//!
//! The engine grew its options one chainable method at a time —
//! `try_new_live_with_leaf` + `with_skyband_bound` + `with_storage` +
//! `with_result_cache` — which meant half the knobs were applied after
//! construction (sometimes with real work, like a storage migration over an
//! engine that was empty a microsecond earlier) and none of them were
//! validated together. [`EngineConfig`] replaces that chain: describe the
//! engine declaratively, then [`build`](EngineConfig::build) an empty live
//! engine or [`build_from`](EngineConfig::build_from) a batch engine over
//! an existing dataset, with every parameter checked up front and reported
//! as a typed [`BuildError`].
//!
//! ```
//! use durable_topk::{EngineConfig, SealMode};
//!
//! let mut engine = EngineConfig::new(2, 1_024, 64)
//!     .skyband_bound(10)
//!     .result_cache(1 << 20)
//!     .seal_mode(SealMode::Synchronous)
//!     .build()
//!     .expect("valid configuration");
//! engine.append(&[1.0, 2.0]);
//! ```
//!
//! The old chainable methods survive as `#[deprecated]` shims so downstream
//! code keeps compiling while it migrates; the only post-construction
//! mutation with standalone semantics —
//! [`migrate_storage`](ShardedEngine::migrate_storage), which re-homes the
//! sealed tails of a *running* engine — remains a first-class method.

use crate::error::BuildError;
use crate::sharded::{SealMode, ShardedEngine};
use crate::storage::ShardStorage;
use durable_topk_index::DEFAULT_LEAF_SIZE;
use durable_topk_temporal::{Dataset, Time};
use std::sync::Arc;

/// Declarative configuration for a [`ShardedEngine`]: required shape
/// parameters up front, optional subsystems as chainable setters, one
/// validated build step.
#[derive(Clone)]
pub struct EngineConfig {
    pub(crate) dim: usize,
    pub(crate) shard_span: usize,
    pub(crate) max_tau: Time,
    pub(crate) leaf_size: usize,
    pub(crate) skyband_bound: Option<usize>,
    pub(crate) merge_limit: Option<usize>,
    pub(crate) seal_mode: SealMode,
    pub(crate) storage: Option<Arc<dyn ShardStorage>>,
    pub(crate) result_cache_bytes: Option<usize>,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("dim", &self.dim)
            .field("shard_span", &self.shard_span)
            .field("max_tau", &self.max_tau)
            .field("leaf_size", &self.leaf_size)
            .field("skyband_bound", &self.skyband_bound)
            .field("merge_limit", &self.merge_limit)
            .field("seal_mode", &self.seal_mode)
            .field("storage", &self.storage.as_ref().map(|_| "<backend>"))
            .field("result_cache_bytes", &self.result_cache_bytes)
            .finish()
    }
}

impl EngineConfig {
    /// Starts a configuration from the three required shape parameters:
    /// attribute arity, owned records per sealed shard, and the largest
    /// `τ` the engine must answer exactly.
    pub fn new(dim: usize, shard_span: usize, max_tau: Time) -> Self {
        Self {
            dim,
            shard_span,
            max_tau,
            leaf_size: DEFAULT_LEAF_SIZE,
            skyband_bound: None,
            merge_limit: None,
            seal_mode: SealMode::Background,
            storage: None,
            result_cache_bytes: None,
        }
    }

    /// Index leaf granularity for the head forest and sealed trees
    /// (default: [`DEFAULT_LEAF_SIZE`]). Streaming callers ingesting few
    /// records per query may prefer smaller leaves.
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size;
        self
    }

    /// Maintains the durable k-skyband for `k <= k_max`, serving
    /// [`Algorithm::SBand`](crate::Algorithm::SBand) natively (without
    /// fallback) on every substrate — head, in-flight seals, sealed tails.
    pub fn skyband_bound(mut self, k_max: usize) -> Self {
        self.skyband_bound = Some(k_max);
        self
    }

    /// Caps the head forest's merge cascade at `cap` records per merge
    /// instead of the span-derived default (`span/4`, clamped) — the knob
    /// previously reached through the index-level `with_merge_limit`.
    pub fn merge_limit(mut self, cap: usize) -> Self {
        self.merge_limit = Some(cap);
        self
    }

    /// Selects how head seals are executed (default:
    /// [`SealMode::Background`]).
    pub fn seal_mode(mut self, mode: SealMode) -> Self {
        self.seal_mode = mode;
        self
    }

    /// Storage backend for sealed tails' record chunks (default:
    /// [`MemoryStorage`](crate::MemoryStorage)). In
    /// [`build_from`](EngineConfig::build_from) the freshly built tails
    /// are stored straight into this backend, so a
    /// [`PagedStorage`](crate::PagedStorage) starts spilling immediately.
    pub fn storage(mut self, storage: Arc<dyn ShardStorage>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Enables the sealed-shard result cache with the given byte budget
    /// (see [`ShardResultCache`](crate::ShardResultCache)).
    pub fn result_cache(mut self, budget_bytes: usize) -> Self {
        self.result_cache_bytes = Some(budget_bytes);
        self
    }

    /// Validates every parameter that does not depend on a dataset.
    fn validate(&self) -> Result<(), BuildError> {
        if self.dim == 0 {
            return Err(BuildError::ZeroParam("dim"));
        }
        if self.shard_span == 0 {
            return Err(BuildError::ZeroParam("shard_span"));
        }
        if self.max_tau == 0 {
            return Err(BuildError::ZeroParam("max_tau"));
        }
        if self.leaf_size == 0 {
            return Err(BuildError::ZeroParam("leaf size"));
        }
        if self.skyband_bound == Some(0) {
            return Err(BuildError::ZeroParam("skyband bound"));
        }
        if self.merge_limit == Some(0) {
            return Err(BuildError::ZeroParam("merge limit"));
        }
        if self.result_cache_bytes == Some(0) {
            return Err(BuildError::ZeroParam("result cache budget"));
        }
        Ok(())
    }

    /// Builds an empty, appendable engine: records arrive via
    /// [`append`](ShardedEngine::append), shards seal every `shard_span`
    /// records, and queries are exact for `τ ≤ max_tau`.
    pub fn build(self) -> Result<ShardedEngine, BuildError> {
        self.validate()?;
        ShardedEngine::live_from_config(self)
    }

    /// Builds an engine over `ds` partitioned into `shard_count`
    /// contiguous time shards (capped at the dataset size), then applies
    /// every configured subsystem. The engine stays appendable.
    ///
    /// The partition supersedes [`shard_span`](EngineConfig::new): each
    /// sealed shard owns `ceil(ds.len() / shard_count)` records, and that
    /// figure also becomes the span at which future appends seal.
    pub fn build_from(self, ds: &Dataset, shard_count: usize) -> Result<ShardedEngine, BuildError> {
        self.validate()?;
        if ds.dim() != self.dim {
            return Err(BuildError::DimMismatch { config: self.dim, data: ds.dim() });
        }
        ShardedEngine::batch_from_config(self, ds, shard_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, DurableTopKEngine};
    use crate::query::DurableQuery;
    use crate::storage::PagedStorage;
    use durable_topk_temporal::{LinearScorer, Window};

    fn dataset(n: usize) -> Dataset {
        Dataset::from_rows(2, (0..n).map(|i| [((i * 37) % 101) as f64, ((i * 73) % 97) as f64]))
    }

    #[test]
    fn zero_parameters_are_rejected_by_name() {
        assert_eq!(EngineConfig::new(0, 8, 4).build().unwrap_err(), BuildError::ZeroParam("dim"));
        assert_eq!(
            EngineConfig::new(2, 0, 4).build().unwrap_err(),
            BuildError::ZeroParam("shard_span")
        );
        assert_eq!(
            EngineConfig::new(2, 8, 0).build().unwrap_err(),
            BuildError::ZeroParam("max_tau")
        );
        assert_eq!(
            EngineConfig::new(2, 8, 4).leaf_size(0).build().unwrap_err(),
            BuildError::ZeroParam("leaf size")
        );
        assert_eq!(
            EngineConfig::new(2, 8, 4).skyband_bound(0).build().unwrap_err(),
            BuildError::ZeroParam("skyband bound")
        );
        assert_eq!(
            EngineConfig::new(2, 8, 4).merge_limit(0).build().unwrap_err(),
            BuildError::ZeroParam("merge limit")
        );
        assert_eq!(
            EngineConfig::new(2, 8, 4).result_cache(0).build().unwrap_err(),
            BuildError::ZeroParam("result cache budget")
        );
    }

    #[test]
    fn build_from_checks_the_dataset_too() {
        let ds = dataset(10);
        assert_eq!(
            EngineConfig::new(2, 8, 4).build_from(&Dataset::new(2), 2).unwrap_err(),
            BuildError::EmptyDataset
        );
        assert_eq!(
            EngineConfig::new(2, 8, 4).build_from(&ds, 0).unwrap_err(),
            BuildError::ZeroParam("shard_count")
        );
        assert_eq!(
            EngineConfig::new(3, 8, 4).build_from(&ds, 2).unwrap_err(),
            BuildError::DimMismatch { config: 3, data: 2 }
        );
    }

    #[test]
    fn configured_live_engine_matches_flat_and_keeps_every_subsystem() {
        let ds = dataset(300);
        let mut live = EngineConfig::new(2, 48, 24)
            .skyband_bound(4)
            .result_cache(1 << 20)
            .storage(Arc::new(PagedStorage::with_temp_file(2).expect("paged backend")))
            .build()
            .expect("valid configuration");
        for id in 0..300u32 {
            live.append(ds.row(id));
        }
        live.quiesce();
        assert!(live.result_cache().is_some(), "result cache configured");
        assert!(live.storage().stats().spilled_chunks > 0, "paged backend spills");
        let flat = DurableTopKEngine::new(ds).with_skyband_index(4);
        let scorer = LinearScorer::new(vec![0.6, 0.4]);
        let q = DurableQuery { k: 3, tau: 20, interval: Window::new(0, 299) };
        for alg in Algorithm::ALL {
            let got = live.query(alg, &scorer, &q);
            assert_eq!(got.records, flat.query(alg, &scorer, &q).records, "alg={alg}");
            assert!(got.stats.fallback.is_none(), "alg={alg} must not fall back");
        }
    }

    #[test]
    fn build_from_partitions_and_serves_sband_without_fallback() {
        let ds = dataset(400);
        let engine = EngineConfig::new(2, 9_999, 40)
            .skyband_bound(6)
            .build_from(&ds, 5)
            .expect("valid configuration");
        assert_eq!(engine.sealed_shards(), 5);
        let flat = DurableTopKEngine::new(ds).with_skyband_index(6);
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        let q = DurableQuery { k: 4, tau: 30, interval: Window::new(0, 399) };
        let got = engine.query(Algorithm::SBand, &scorer, &q);
        assert_eq!(got.records, flat.query(Algorithm::SBand, &scorer, &q).records);
        assert!(got.stats.fallback.is_none());
    }

    #[test]
    fn merge_limit_and_leaf_size_only_change_performance_shape() {
        let ds = dataset(200);
        let mut tuned = EngineConfig::new(2, 32, 16)
            .leaf_size(8)
            .merge_limit(64)
            .build()
            .expect("valid configuration");
        let mut stock = EngineConfig::new(2, 32, 16).build().expect("valid configuration");
        for id in 0..200u32 {
            tuned.append(ds.row(id));
            stock.append(ds.row(id));
        }
        let scorer = LinearScorer::uniform(2);
        let q = DurableQuery { k: 2, tau: 12, interval: Window::new(0, 199) };
        assert_eq!(
            tuned.query(Algorithm::THop, &scorer, &q).records,
            stock.query(Algorithm::THop, &scorer, &q).records
        );
    }
}
