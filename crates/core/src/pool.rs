//! A persistent worker pool for the parallel execution layer.
//!
//! PR 2 parallelized batch queries and shard fan-out with scoped
//! `thread::spawn`, paying thread-creation cost (~10 µs per worker) on
//! every query. This module replaces those spawns with a pool of
//! long-lived workers: each worker owns one [`QueryContext`] for its whole
//! lifetime, so the allocation-free pipeline stays warm *across* queries,
//! not just within one, and the query path issues zero `thread::spawn`
//! calls. Batches reach the workers through a channel of wake-up tokens;
//! the actual work items live in a per-batch chunk queue that workers and
//! the submitting thread drain cooperatively.
//!
//! The submitting thread always participates in its own batch, so a busy
//! (or small) pool degrades to caller-inline execution instead of queueing
//! behind unrelated work, and nested submissions cannot deadlock: whoever
//! submitted the batch can always finish it alone.
//!
//! One process-wide pool ([`WorkerPool::global`]) is shared by
//! [`BatchExecutor`](crate::BatchExecutor) and
//! [`ShardedEngine`](crate::ShardedEngine); dedicated pools can be built
//! for tests or isolation.

use crate::check::{LockClass, TrackedCondvar, TrackedMutex};
use crate::context::QueryContext;
use crate::sync::lock;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Worker threads spawned by every pool in this process, cumulatively.
///
/// The regression guard for "the query path spawns nothing" reads this
/// before and after a query storm and asserts it stayed flat.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Detached jobs accepted by every pool in this process, cumulatively.
///
/// The companion guard to [`THREADS_SPAWNED`]: background work
/// (shard seals, serving requests, subscription refreshes) must show up
/// here — as pool jobs — rather than as spawned threads.
static DETACHED_JOBS: AtomicU64 = AtomicU64::new(0);

/// One batch's work, type-erased. The object lives on the submitting
/// thread's stack; the pool only dereferences it under the visitor
/// protocol of [`Batch`].
trait Work: Sync {
    /// Pops one chunk and runs it; `Ok(false)` when the queue is empty,
    /// `Err(payload)` if the chunk's job panicked.
    fn run_chunk(&self, ctx: &mut QueryContext) -> Result<bool, Box<dyn Any + Send>>;

    /// Discards all queued chunks (after a panic), returning how many.
    fn abort(&self) -> usize;
}

/// Typed work: the job closure plus a queue of disjoint output chunks.
///
/// Results are written through exclusive chunk borrows of the output
/// vector: participants pop whole chunks (one lock acquisition per chunk,
/// not per slot) and fill their chunk exclusively, so results arrive in
/// input order with no per-slot synchronization.
/// An exclusive output chunk: global offset plus its result slots.
type Chunk<'a, T> = (usize, &'a mut [Option<T>]);

struct TypedWork<'a, T, F> {
    job: &'a F,
    /// Exclusive output chunks, popped by participants.
    queue: TrackedMutex<Vec<Chunk<'a, T>>>,
}

impl<T, F> Work for TypedWork<'_, T, F>
where
    T: Send,
    F: Fn(usize, &mut QueryContext) -> T + Sync,
{
    fn run_chunk(&self, ctx: &mut QueryContext) -> Result<bool, Box<dyn Any + Send>> {
        let Some((offset, slice)) = lock(&self.queue).pop() else {
            return Ok(false);
        };
        catch_unwind(AssertUnwindSafe(|| {
            for (i, slot) in slice.iter_mut().enumerate() {
                *slot = Some((self.job)(offset + i, ctx));
            }
        }))
        .map(|()| true)
    }

    fn abort(&self) -> usize {
        let mut q = lock(&self.queue);
        let n = q.len();
        q.clear();
        n
    }
}

/// Progress accounting for one in-flight batch.
struct BatchState {
    /// Chunks not yet completed (queued plus in flight).
    pending: usize,
    /// Threads currently inside the batch (may dereference `work`).
    visitors: usize,
}

/// A standalone fire-and-forget job: runs once on whichever worker pops
/// it, with that worker's persistent context. Used for background shard
/// seals and queued serving requests — work that outlives the submitting
/// call instead of being awaited by it.
type DetachedJob = Box<dyn FnOnce(&mut QueryContext) + Send + 'static>;

/// What travels down the wake-up channel.
enum Token {
    /// Join a cooperative batch (the `run_jobs` path).
    Batch(Arc<Batch>),
    /// Run one detached job to completion.
    Detached(DetachedJob),
}

/// A submitted batch: shared progress state plus a raw pointer to the
/// caller-owned [`Work`].
///
/// # Safety protocol
///
/// `work` points into the stack frame of [`WorkerPool::run_jobs`], which
/// does not return until `pending == 0 && visitors == 0`. A thread may
/// dereference `work` only between registering as a visitor (under the
/// state lock, having observed `pending > 0`) and deregistering. Wake-up
/// tokens that arrive after the batch completed observe `pending == 0`
/// and never touch `work`, so stale tokens in the channel are harmless.
struct Batch {
    state: TrackedMutex<BatchState>,
    done: TrackedCondvar,
    /// First panic payload observed by any participant.
    panic: TrackedMutex<Option<Box<dyn Any + Send>>>,
    work: *const dyn Work,
}

// SAFETY: the raw `work` pointer is only dereferenced under the visitor
// protocol documented on `Batch`; all other state is lock-protected.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Drains chunks from the batch until its queue is empty, then
    /// deregisters. Safe to call at any time, including after completion.
    fn participate(&self, ctx: &mut QueryContext) {
        {
            let mut s = lock(&self.state);
            if s.pending == 0 {
                return; // stale wake-up: the batch already completed
            }
            s.visitors += 1;
        }
        // SAFETY: `pending > 0` while we registered as a visitor, so the
        // submitting frame is still alive and stays alive until we
        // deregister (it waits for `visitors == 0`).
        let work = unsafe { &*self.work };
        loop {
            match work.run_chunk(ctx) {
                Ok(true) => {
                    let mut s = lock(&self.state);
                    s.pending -= 1;
                    if s.pending == 0 {
                        self.done.notify_all();
                    }
                }
                Ok(false) => break,
                Err(payload) => {
                    let discarded = work.abort();
                    let mut first = lock(&self.panic);
                    if first.is_none() {
                        *first = Some(payload);
                    }
                    drop(first);
                    let mut s = lock(&self.state);
                    s.pending -= 1 + discarded;
                    if s.pending == 0 {
                        self.done.notify_all();
                    }
                    break;
                }
            }
        }
        let mut s = lock(&self.state);
        s.visitors -= 1;
        if s.pending == 0 && s.visitors == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every chunk completed and every participant left.
    fn wait(&self) {
        let mut s = lock(&self.state);
        while s.pending > 0 || s.visitors > 0 {
            s = self.done.wait(s);
        }
    }
}

/// A pool of persistent worker threads, each owning one [`QueryContext`].
///
/// Submitting a batch costs channel sends (wake-up tokens), not thread
/// spawns; workers persist across batches and queries. See the module
/// docs for the cooperative draining model.
#[derive(Debug)]
pub struct WorkerPool {
    /// Wake-up channel; `None` only during drop.
    injector: Option<Sender<Token>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// Contexts loaned to submitting threads for their own participation,
    /// so repeated batches from the same caller stay allocation-free too.
    spares: TrackedMutex<Vec<QueryContext>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers (`0` = available
    /// parallelism). This is the only place the execution layer creates
    /// threads.
    pub fn new(threads: usize) -> Self {
        let workers = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        let (tx, rx) = channel::<Token>();
        let rx = Arc::new(TrackedMutex::new(LockClass::PoolQueue, rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("durable-topk-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    // lint: allow(expect) — OS refusing to spawn at pool
                    // construction is unrecoverable by design.
                    .expect("spawn pool worker")
            })
            .collect();
        THREADS_SPAWNED.fetch_add(workers as u64, Ordering::Relaxed);
        Self {
            injector: Some(tx),
            handles,
            workers,
            spares: TrackedMutex::new(LockClass::PoolQueue, Vec::new()),
        }
    }

    /// The process-wide pool shared by [`BatchExecutor`](crate::BatchExecutor)
    /// and [`ShardedEngine`](crate::ShardedEngine), created on first use
    /// with one worker per available core.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.workers
    }

    /// Cumulative worker threads spawned by every pool in this process.
    ///
    /// Flat across queries by construction: only [`WorkerPool::new`]
    /// spawns, and the global pool is created once.
    pub fn threads_spawned() -> u64 {
        THREADS_SPAWNED.load(Ordering::Relaxed)
    }

    /// Evaluates `job(i, ctx)` for `i in 0..jobs` with at most
    /// `parallelism` concurrent participants, returning results in input
    /// order. `parallelism <= 1` runs inline on the calling thread.
    ///
    /// Worker contexts persist across calls; the calling thread borrows a
    /// context from the pool's spare list, so steady-state batches
    /// allocate only their output vector.
    ///
    /// # Panics
    /// Propagates the first panic raised by any job.
    pub fn run_jobs<T, F>(&self, jobs: usize, parallelism: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut QueryContext) -> T + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let parallelism = parallelism.clamp(1, jobs);
        let mut ctx = self.checkout();
        if parallelism == 1 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                (0..jobs).map(|i| job(i, &mut ctx)).collect::<Vec<T>>()
            }));
            self.give_back(ctx);
            return result.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        }

        let mut results: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        // Several chunks per participant keep the load balanced when
        // per-job costs are skewed.
        let chunk_len = jobs.div_ceil(parallelism * 4);
        let typed = TypedWork {
            job: &job,
            queue: TrackedMutex::new(
                LockClass::PoolQueue,
                results
                    .chunks_mut(chunk_len)
                    .enumerate()
                    .map(|(c, slice)| (c * chunk_len, slice))
                    .collect(),
            ),
        };
        let pending = lock(&typed.queue).len();
        // SAFETY: widen the borrow to 'static for storage in `Batch`; the
        // protocol on `Batch` guarantees no dereference outlives `typed`.
        let work: *const dyn Work = unsafe {
            std::mem::transmute::<*const (dyn Work + '_), *const (dyn Work + 'static)>(
                &typed as &dyn Work as *const (dyn Work + '_),
            )
        };
        let batch = Arc::new(Batch {
            state: TrackedMutex::new(LockClass::PoolQueue, BatchState { pending, visitors: 0 }),
            done: TrackedCondvar::new(),
            panic: TrackedMutex::new(LockClass::PoolQueue, None),
            work,
        });
        let helpers = (parallelism - 1).min(self.workers);
        if let Some(tx) = &self.injector {
            for _ in 0..helpers {
                // A send can only fail if every worker exited (pool mid-
                // drop); the caller then drains the batch alone.
                let _ = tx.send(Token::Batch(Arc::clone(&batch)));
            }
        }
        batch.participate(&mut ctx);
        batch.wait();
        self.give_back(ctx);
        if let Some(payload) = lock(&batch.panic).take() {
            std::panic::resume_unwind(payload);
        }
        // lint: allow(expect) — `pending == 0` and no panic payload imply
        // every output slot was filled by exactly one participant.
        results.into_iter().map(|r| r.expect("every chunk drained")).collect()
    }

    /// Hands a standalone job to the pool: it runs once, on whichever
    /// worker pops it, with that worker's persistent [`QueryContext`] —
    /// the substrate for background shard seals and queued serving
    /// requests. Submission never blocks and never spawns.
    ///
    /// A panic inside the job is caught at the worker (the worker
    /// survives and keeps serving); the job itself is responsible for
    /// reporting failures to whoever awaits its effect.
    ///
    /// Returns `false` when the pool is shutting down and cannot take the
    /// job — the caller should then run it inline.
    pub fn submit(&self, job: impl FnOnce(&mut QueryContext) + Send + 'static) -> bool {
        match &self.injector {
            Some(tx) => {
                let accepted = tx.send(Token::Detached(Box::new(job))).is_ok();
                if accepted {
                    DETACHED_JOBS.fetch_add(1, Ordering::Relaxed);
                }
                accepted
            }
            None => false,
        }
    }

    /// Cumulative detached jobs accepted by every pool in this process.
    ///
    /// Tests assert this *grows* where [`WorkerPool::threads_spawned`]
    /// stays flat: background work rides the pool instead of new threads.
    pub fn detached_jobs() -> u64 {
        DETACHED_JOBS.load(Ordering::Relaxed)
    }

    /// Borrows a spare context (or creates one on cold start).
    fn checkout(&self) -> QueryContext {
        lock(&self.spares).pop().unwrap_or_default()
    }

    /// Returns a borrowed context to the spare list.
    fn give_back(&self, ctx: QueryContext) {
        lock(&self.spares).push(ctx);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with a disconnect.
        drop(self.injector.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A worker: one persistent context, fed wake-up tokens until the pool
/// closes its channel.
fn worker_loop(rx: &TrackedMutex<Receiver<Token>>) {
    let mut ctx = QueryContext::new();
    loop {
        // Holding the lock while blocked is the classic shared-receiver
        // pattern: exactly one idle worker waits at a time, the rest queue
        // on the mutex, and every token wakes exactly one of them.
        let token = lock(rx).recv();
        match token {
            Ok(Token::Batch(batch)) => batch.participate(&mut ctx),
            Ok(Token::Detached(job)) => {
                // The worker outlives any single job: a panicking request
                // must cost only that request, never the worker.
                let _ = catch_unwind(AssertUnwindSafe(|| job(&mut ctx)));
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_arrive_in_input_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run_jobs(100, 3, |i, _ctx| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_one_runs_inline() {
        let pool = WorkerPool::new(2);
        let main_thread = std::thread::current().id();
        let out = pool.run_jobs(5, 1, |i, _ctx| {
            assert_eq!(std::thread::current().id(), main_thread);
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_batches_return_empty() {
        let pool = WorkerPool::new(1);
        let out: Vec<u32> = pool.run_jobs(0, 4, |_, _| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = WorkerPool::new(2);
        let before = WorkerPool::threads_spawned();
        for round in 0..20usize {
            let out = pool.run_jobs(17, 4, move |i, _ctx| i + round);
            assert_eq!(out[16], 16 + round);
        }
        assert_eq!(WorkerPool::threads_spawned(), before, "batches must not spawn");
    }

    #[test]
    fn panics_propagate_and_leave_the_pool_usable() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_jobs(8, 4, |i, _ctx| {
                assert!(i != 5, "job five exploded");
                i
            })
        }));
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic message");
        assert!(msg.contains("job five exploded"), "msg={msg}");
        // The pool survives: workers caught the unwind at chunk level.
        assert_eq!(pool.run_jobs(4, 4, |i, _ctx| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let out = pool.run_jobs(257, 4, |i, _ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn detached_jobs_run_on_pool_workers() {
        let pool = WorkerPool::new(2);
        let pair =
            Arc::new((TrackedMutex::new(LockClass::ServeQueue, 0usize), TrackedCondvar::new()));
        for _ in 0..16 {
            let pair = Arc::clone(&pair);
            assert!(pool.submit(move |_ctx| {
                let mut done = lock(&pair.0);
                *done += 1;
                pair.1.notify_all();
            }));
        }
        let mut done = lock(&pair.0);
        while *done < 16 {
            done = pair.1.wait(done);
        }
    }

    #[test]
    fn a_panicking_detached_job_costs_only_itself() {
        let pool = WorkerPool::new(1);
        let pair =
            Arc::new((TrackedMutex::new(LockClass::ServeQueue, false), TrackedCondvar::new()));
        assert!(pool.submit(|_ctx| panic!("request blew up")));
        // The single worker must survive to run both the next detached job
        // and cooperative batches.
        let after = Arc::clone(&pair);
        assert!(pool.submit(move |_ctx| {
            *lock(&after.0) = true;
            after.1.notify_all();
        }));
        let mut done = lock(&pair.0);
        while !*done {
            done = pair.1.wait(done);
        }
        drop(done);
        assert_eq!(pool.run_jobs(3, 3, |i, _ctx| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_submission_completes() {
        // A batch job that itself submits to the same pool must finish
        // even when every worker is busy: submitters drain their own work.
        let pool = WorkerPool::new(1);
        let out = pool.run_jobs(3, 3, |i, _ctx| {
            let inner = WorkerPool::global().run_jobs(4, 2, |j, _ctx| j * 10);
            inner[i] + i
        });
        assert_eq!(out, vec![0, 11, 22]);
    }
}
