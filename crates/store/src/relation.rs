//! The stored index relation and the disk-backed top-k building block.
//!
//! Mirrors the paper's DBMS setup: besides the data table, an *index table*
//! holds the tree-based top-k index. Here every tree node is a
//! variable-length record `(lo, hi, left, right, skyline…)` with the skyline
//! entries' attribute vectors inlined, so computing an interval max score
//! costs only index-region I/O; the data region is touched exclusively when
//! a candidate leaf interval is actually scanned — exactly the access
//! pattern the PostgreSQL experiments measure.

use crate::pager::{BufferPool, IoStats, PAGE_SIZE};
use crate::table::Table;
use durable_topk_geom::{skyline_indices, skyline_merge};
use durable_topk_index::{OracleScorer, OracleScratch, OrdF64, TopKResult};
use durable_topk_temporal::{Dataset, RecordId, Time, Window};
use std::cmp::Reverse;
use std::io;
use std::path::Path;

const MAGIC: u64 = 0x00D7_DB70_90CE_2021;
const NO_CHILD: u64 = u64::MAX;

/// A disk-backed durable-top-k store: data table + index relation behind one
/// buffer pool.
pub struct RelStore {
    pool: BufferPool,
    table: Table,
    root: u64,
    leaf_size: usize,
}

impl RelStore {
    /// Creates the store file at `path`, bulk-loading `ds` and building the
    /// index relation.
    ///
    /// `pool_pages` bounds the in-memory cache — keep it small relative to
    /// the data size to observe the I/O behaviour the experiments are about.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `leaf_size == 0`.
    pub fn create<P: AsRef<Path>>(
        path: P,
        ds: &Dataset,
        leaf_size: usize,
        pool_pages: usize,
    ) -> io::Result<RelStore> {
        assert!(!ds.is_empty(), "cannot store an empty dataset");
        assert!(leaf_size > 0, "leaf size must be positive");
        let mut pool = BufferPool::create(path, pool_pages)?;
        let table = Table::create(&mut pool, 1, ds)?;
        let index_start = table.end_page() * PAGE_SIZE as u64;
        let mut builder = NodeWriter { pool: &mut pool, cursor: index_start, dim: ds.dim() };
        let (root, _) = builder.build(ds, 0, (ds.len() - 1) as Time, leaf_size)?;

        // Header page.
        let mut header = Vec::with_capacity(64);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        for m in table.to_meta() {
            header.extend_from_slice(&m.to_le_bytes());
        }
        header.extend_from_slice(&root.to_le_bytes());
        header.extend_from_slice(&(leaf_size as u64).to_le_bytes());
        pool.write_bytes(0, &header)?;
        pool.flush()?;
        Ok(RelStore { pool, table, root, leaf_size })
    }

    /// Opens an existing store file.
    pub fn open<P: AsRef<Path>>(path: P, pool_pages: usize) -> io::Result<RelStore> {
        let mut pool = BufferPool::open(path, pool_pages)?;
        let mut header = [0u8; 64];
        pool.read_bytes(0, &mut header)?;
        let magic = crate::codec::le_u64(&header[0..8]);
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a RelStore file"));
        }
        let mut meta = [0u64; 4];
        for (i, m) in meta.iter_mut().enumerate() {
            *m = crate::codec::le_u64(&header[8 + i * 8..16 + i * 8]);
        }
        let root = crate::codec::le_u64(&header[40..48]);
        let leaf_size = crate::codec::le_u64(&header[48..56]) as usize;
        Ok(RelStore { pool, table: Table::from_meta(meta), root, leaf_size })
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the store is empty (never true for created stores).
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Attribute arity.
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Leaf granularity of the index relation.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Buffer-pool statistics.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Resets buffer-pool statistics.
    pub fn reset_io_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Drops the page cache (cold-start experiments).
    pub fn clear_cache(&mut self) -> io::Result<()> {
        self.pool.clear_cache()
    }

    /// Reads record `id`'s attributes.
    pub fn read_row(&mut self, id: RecordId, out: &mut [f64]) -> io::Result<()> {
        self.table.read_row(&mut self.pool, id, out)
    }

    /// Disk-backed `Q(u, k, W)` with the same semantics as the in-memory
    /// oracle (top-k plus ties of the k-th score).
    ///
    /// Convenience wrapper over [`top_k_with`](RelStore::top_k_with) that
    /// allocates fresh scratch; the stored procedures hold an
    /// [`OracleScratch`] and call `top_k_with` directly.
    ///
    /// # Panics
    /// Panics if `k == 0` or the scorer is not monotone (the stored index
    /// carries only skylines, which bound monotone scorers exactly).
    pub fn top_k<S: OracleScorer + ?Sized>(
        &mut self,
        scorer: &S,
        k: usize,
        w: Window,
    ) -> io::Result<TopKResult> {
        let mut scratch = OracleScratch::new();
        let mut out = TopKResult::empty();
        self.top_k_with(scorer, k, w, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Disk-backed `Q(u, k, W)` into `out`, drawing the search frontier,
    /// threshold heap and row/byte buffers from `scratch` — the
    /// allocation-free counterpart of [`top_k`](RelStore::top_k) used by
    /// the stored procedures.
    ///
    /// # Panics
    /// Panics if `k == 0` or the scorer is not monotone.
    pub fn top_k_with<S: OracleScorer + ?Sized>(
        &mut self,
        scorer: &S,
        k: usize,
        w: Window,
        scratch: &mut OracleScratch,
        out: &mut TopKResult,
    ) -> io::Result<()> {
        assert!(k > 0, "k must be positive");
        assert!(scorer.is_monotone(), "the stored index supports monotone scorers");
        out.clear();
        let n = self.table.len();
        if (w.start() as usize) >= n {
            return Ok(());
        }
        let w = w.clamp_to(n);

        // Best-first over stored nodes: (bound, node offset, window slice).
        scratch.pq_ext.clear();
        scratch.best_ext.clear();
        scratch.row.clear();
        scratch.row.resize(self.table.dim(), 0.0);
        self.seed(self.root, w, scorer, scratch)?;
        // Extract max-bound entries until the bound falls below the running
        // k-th best score; candidates accumulate directly in `out`.
        while let Some((bound, off, lo, hi)) = scratch.pq_ext.pop() {
            let threshold = if scratch.best_ext.len() >= k {
                // lint: allow(expect) — `k > 0` is asserted at top_k entry,
                // so len() >= k implies a non-empty heap.
                scratch.best_ext.peek().expect("non-empty").0 .0
            } else {
                f64::NEG_INFINITY
            };
            if bound.0 < threshold {
                break;
            }
            let node = self.read_node_header(off)?;
            if node.left == NO_CHILD {
                for id in lo..=hi {
                    self.table.read_row(&mut self.pool, id, &mut scratch.row)?;
                    let s = scorer.score(&scratch.row);
                    let threshold = if scratch.best_ext.len() >= k {
                        // lint: allow(expect) — k > 0 asserted at entry.
                        scratch.best_ext.peek().expect("non-empty").0 .0
                    } else {
                        f64::NEG_INFINITY
                    };
                    if s >= threshold {
                        out.items.push((id, s));
                        scratch.best_ext.push(Reverse(OrdF64(s)));
                        if scratch.best_ext.len() > k {
                            scratch.best_ext.pop();
                        }
                    }
                }
            } else {
                for child_off in [node.left, node.right] {
                    let child = self.read_node_header(child_off)?;
                    let cw = Window::new(child.lo, child.hi);
                    if let Some(iw) = cw.intersect(Window::new(lo, hi)) {
                        let b = self.node_bound(
                            child_off,
                            &child,
                            scorer,
                            &mut scratch.bytes,
                            &mut scratch.row,
                        )?;
                        scratch.pq_ext.push((OrdF64(b), child_off, iw.start(), iw.end()));
                    }
                }
            }
        }
        out.finalize_in_place(k);
        Ok(())
    }

    fn seed<S: OracleScorer + ?Sized>(
        &mut self,
        off: u64,
        w: Window,
        scorer: &S,
        scratch: &mut OracleScratch,
    ) -> io::Result<()> {
        let node = self.read_node_header(off)?;
        let range = Window::new(node.lo, node.hi);
        let Some(iw) = range.intersect(w) else { return Ok(()) };
        if w.contains_window(range) || node.left == NO_CHILD {
            let b = self.node_bound(off, &node, scorer, &mut scratch.bytes, &mut scratch.row)?;
            scratch.pq_ext.push((OrdF64(b), off, iw.start(), iw.end()));
            return Ok(());
        }
        self.seed(node.left, w, scorer, scratch)?;
        self.seed(node.right, w, scorer, scratch)
    }

    fn read_node_header(&mut self, off: u64) -> io::Result<NodeHeader> {
        let mut buf = [0u8; 28];
        self.pool.read_bytes(off, &mut buf)?;
        Ok(NodeHeader {
            lo: crate::codec::le_u32(&buf[0..4]),
            hi: crate::codec::le_u32(&buf[4..8]),
            left: crate::codec::le_u64(&buf[8..16]),
            right: crate::codec::le_u64(&buf[16..24]),
            sky_len: crate::codec::le_u32(&buf[24..28]),
        })
    }

    /// Max score over the node's inlined skyline entries, using the
    /// caller's byte and attribute buffers.
    fn node_bound<S: OracleScorer + ?Sized>(
        &mut self,
        off: u64,
        node: &NodeHeader,
        scorer: &S,
        bytes: &mut Vec<u8>,
        attrs: &mut Vec<f64>,
    ) -> io::Result<f64> {
        let d = self.table.dim();
        let entry = 4 + 8 * d;
        bytes.clear();
        bytes.resize(node.sky_len as usize * entry, 0);
        self.pool.read_bytes(off + 28, bytes)?;
        attrs.clear();
        attrs.resize(d, 0.0);
        let mut bound = f64::NEG_INFINITY;
        for e in bytes.chunks_exact(entry) {
            for (j, a) in attrs.iter_mut().enumerate() {
                *a = crate::codec::le_f64(&e[4 + j * 8..12 + j * 8]);
            }
            bound = bound.max(scorer.score(attrs));
        }
        Ok(bound)
    }
}

struct NodeHeader {
    lo: Time,
    hi: Time,
    left: u64,
    right: u64,
    sky_len: u32,
}

struct NodeWriter<'a> {
    pool: &'a mut BufferPool,
    cursor: u64,
    dim: usize,
}

impl NodeWriter<'_> {
    /// Serializes the subtree over `[lo, hi]` post-order; returns the node's
    /// byte offset and skyline.
    fn build(
        &mut self,
        ds: &Dataset,
        lo: Time,
        hi: Time,
        leaf_size: usize,
    ) -> io::Result<(u64, Vec<RecordId>)> {
        if ((hi - lo) as usize) < leaf_size {
            let ids: Vec<RecordId> = (lo..=hi).collect();
            let skyline = skyline_indices(ds, &ids);
            let off = self.write_node(ds, lo, hi, NO_CHILD, NO_CHILD, &skyline)?;
            return Ok((off, skyline));
        }
        let mid = lo + (hi - lo) / 2;
        let (left, lsky) = self.build(ds, lo, mid, leaf_size)?;
        let (right, rsky) = self.build(ds, mid + 1, hi, leaf_size)?;
        let skyline = skyline_merge(ds, &lsky, &rsky);
        let off = self.write_node(ds, lo, hi, left, right, &skyline)?;
        Ok((off, skyline))
    }

    fn write_node(
        &mut self,
        ds: &Dataset,
        lo: Time,
        hi: Time,
        left: u64,
        right: u64,
        skyline: &[RecordId],
    ) -> io::Result<u64> {
        let off = self.cursor;
        let mut buf = Vec::with_capacity(28 + skyline.len() * (4 + 8 * self.dim));
        buf.extend_from_slice(&lo.to_le_bytes());
        buf.extend_from_slice(&hi.to_le_bytes());
        buf.extend_from_slice(&left.to_le_bytes());
        buf.extend_from_slice(&right.to_le_bytes());
        buf.extend_from_slice(&(skyline.len() as u32).to_le_bytes());
        for &id in skyline {
            buf.extend_from_slice(&id.to_le_bytes());
            for &x in ds.row(id) {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        self.pool.write_bytes(off, &buf)?;
        self.cursor += buf.len() as u64;
        Ok(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_index::scan_top_k;
    use durable_topk_temporal::LinearScorer;
    use rand::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-rel-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    #[test]
    fn stored_topk_matches_scan() {
        let mut rng = StdRng::seed_from_u64(13);
        let rows: Vec<[f64; 2]> = (0..3_000)
            .map(|_| [rng.random_range(0..40) as f64, rng.random_range(0..40) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let mut store = RelStore::create(tmp("topk.db"), &ds, 32, 64).expect("create");
        let scorer = LinearScorer::new(vec![0.3, 0.7]);
        for _ in 0..25 {
            let a = rng.random_range(0..3_000u32);
            let b = rng.random_range(0..3_000u32);
            let w = Window::new(a.min(b), a.max(b));
            let k = rng.random_range(1..7);
            let got = store.top_k(&scorer, k, w).expect("query");
            assert_eq!(got, scan_top_k(&ds, &scorer, k, w));
        }
    }

    #[test]
    fn reopen_preserves_queries() {
        let ds = Dataset::from_rows(2, (0..500).map(|i| [(i % 17) as f64, (i % 5) as f64]));
        let path = tmp("reopen.db");
        {
            RelStore::create(&path, &ds, 16, 32).expect("create");
        }
        let mut store = RelStore::open(&path, 32).expect("open");
        assert_eq!(store.len(), 500);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.leaf_size(), 16);
        let scorer = LinearScorer::uniform(2);
        let got = store.top_k(&scorer, 3, Window::new(0, 499)).expect("query");
        assert_eq!(got, scan_top_k(&ds, &scorer, 3, Window::new(0, 499)));
    }

    #[test]
    fn narrow_query_reads_fewer_pages_than_full_scan() {
        let ds = Dataset::from_rows(2, (0..60_000).map(|i| [(i % 997) as f64, (i % 31) as f64]));
        let mut store = RelStore::create(tmp("io.db"), &ds, 128, 128).expect("create");
        let scorer = LinearScorer::uniform(2);
        store.clear_cache().expect("cold");
        store.reset_io_stats();
        store.top_k(&scorer, 5, Window::new(30_000, 30_500)).expect("query");
        let narrow = store.io_stats().misses;
        store.clear_cache().expect("cold");
        store.reset_io_stats();
        let mut row = [0.0f64; 2];
        for id in 0..60_000u32 {
            store.read_row(id, &mut row).expect("read");
        }
        let scan = store.io_stats().misses;
        assert!(
            narrow * 10 < scan,
            "indexed query ({narrow} misses) should beat full scan ({scan})"
        );
    }

    #[test]
    fn open_rejects_foreign_files() {
        let path = tmp("bogus.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).expect("write");
        assert!(RelStore::open(&path, 4).is_err());
    }
}
