//! Embedded paged storage engine: the DBMS substrate for the durable top-k
//! stored-procedure experiments (paper Section VI-C, Tables IV–VI).
//!
//! The paper implements T-Base and T-Hop as PL/Python stored procedures over
//! PostgreSQL tables plus an "index table" mirroring the tree-based top-k
//! index. This crate reproduces the storage behaviour those experiments
//! measure without requiring a PostgreSQL installation:
//!
//! * [`pager`] — 8 KiB pages in a single file behind an LRU
//!   [`pager::BufferPool`] with hit/miss/physical-I/O
//!   accounting;
//! * [`table`] — a fixed-width row table over the data region (row id =
//!   arrival instant, so time-window scans are sequential page reads);
//! * [`relation`] — the index relation: the skyline tree serialized as
//!   variable-length node records with skyline entries inlined (so interval
//!   max scores never touch the data region), plus the stored best-first
//!   top-k query;
//! * [`procedures`] — T-Base and T-Hop as stored procedures issuing all
//!   record and node accesses through the buffer pool.
//!
//! The experimental claim this substrate preserves: T-Base pays page I/O
//! linear in `|I|`, while T-Hop touches only the pages needed for
//! `O(|S| + k⌈|I|/τ⌉)` top-k probes — a >100× gap at scale (Table VI).
//!
//! Since PR 6 the same pager also backs the core crate's tiered shard
//! storage: [`chunk`] serializes sealed record chunks page-aligned (bit
//! identical on reload), and the pool's pinning API keeps a faulted
//! chunk's pages warm against eviction.

#![warn(missing_docs)]

pub mod chunk;
mod codec;
pub mod pager;
pub mod procedures;
pub mod relation;
pub mod table;

pub use chunk::{chunk_page_len, read_chunk, write_chunk};
pub use pager::{BufferPool, IoStats, PAGE_SIZE};
pub use procedures::{t_base_proc, t_hop_proc, ProcStats};
pub use relation::RelStore;
pub use table::Table;
