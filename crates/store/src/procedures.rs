//! T-Base and T-Hop as stored procedures over [`RelStore`].
//!
//! These mirror the paper's PL/Python stored procedures (Section VI-C):
//! every record and index-node access flows through the buffer pool, so the
//! reported I/O counts reflect what a DBMS-resident implementation pays.
//! (S-Hop "requires a more delicate query procedure and data structures …
//! more suitable … as a wrapper function outside the DBMS" — the paper makes
//! the same scoping choice.)

use crate::pager::IoStats;
use crate::relation::RelStore;
use durable_topk_index::{OracleScorer, OracleScratch, SkybandBuffer, TopKResult};
use durable_topk_temporal::{RecordId, Time, Window};
use std::io;

/// Instrumentation for one stored-procedure execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcStats {
    /// Top-k queries executed against the index relation.
    pub topk_queries: u64,
    /// Individual rows fetched from the data table.
    pub rows_read: u64,
    /// Buffer-pool deltas during the call.
    pub io: IoStats,
}

fn io_delta(after: IoStats, before: IoStats) -> IoStats {
    IoStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        reads: after.reads - before.reads,
        writes: after.writes - before.writes,
    }
}

/// T-Hop (Algorithm 1) as a stored procedure.
///
/// Holds one [`OracleScratch`] and one result buffer for the whole
/// execution, so every top-k probe runs through the allocation-free
/// [`RelStore::top_k_with`] path.
///
/// # Panics
/// Panics if `k == 0`, `tau == 0` or the interval lies outside the table.
pub fn t_hop_proc<S: OracleScorer + ?Sized>(
    store: &mut RelStore,
    scorer: &S,
    k: usize,
    interval: Window,
    tau: Time,
) -> io::Result<(Vec<RecordId>, ProcStats)> {
    assert!(k > 0 && tau > 0, "k and tau must be positive");
    let interval = interval.clamp_to(store.len());
    let before = store.io_stats();
    let mut stats = ProcStats::default();
    let mut answers = Vec::new();
    let mut row = vec![0.0f64; store.dim()];
    let mut scratch = OracleScratch::new();
    let mut pi = TopKResult::empty();

    let mut t = interval.end();
    loop {
        stats.topk_queries += 1;
        store.top_k_with(scorer, k, Window::lookback(t, tau), &mut scratch, &mut pi)?;
        store.read_row(t, &mut row)?;
        stats.rows_read += 1;
        if pi.admits_score(scorer.score(&row)) {
            answers.push(t);
            if t == interval.start() {
                break;
            }
            t -= 1;
        } else {
            // lint: allow(expect) — a record is non-durable only when some
            // top-k set rejected it, and a rejecting set cannot be empty.
            let hop = pi.max_time().expect("non-durable implies non-empty top-k");
            if hop < interval.start() {
                break;
            }
            t = hop;
        }
    }
    answers.sort_unstable();
    stats.io = io_delta(store.io_stats(), before);
    Ok((answers, stats))
}

/// T-Base (Section III-A) as a stored procedure: backward sliding window
/// with incremental top-k maintenance, recomputing from the index relation
/// only when a `π≤k` member expires.
///
/// Like [`t_hop_proc`], one [`OracleScratch`] and one result buffer serve
/// every recomputation; the skyband buffer refills in place.
///
/// # Panics
/// Panics if `k == 0`, `tau == 0` or the interval lies outside the table.
pub fn t_base_proc<S: OracleScorer + ?Sized>(
    store: &mut RelStore,
    scorer: &S,
    k: usize,
    interval: Window,
    tau: Time,
) -> io::Result<(Vec<RecordId>, ProcStats)> {
    assert!(k > 0 && tau > 0, "k and tau must be positive");
    let interval = interval.clamp_to(store.len());
    let before = store.io_stats();
    let mut stats = ProcStats::default();
    let mut answers = Vec::new();
    let mut row = vec![0.0f64; store.dim()];
    let mut scratch = OracleScratch::new();
    let mut pi = TopKResult::empty();

    let mut t = interval.end();
    stats.topk_queries += 1;
    store.top_k_with(scorer, k, Window::lookback(t, tau), &mut scratch, &mut pi)?;
    let mut buffer = SkybandBuffer::from_result(k, &pi);
    loop {
        store.read_row(t, &mut row)?;
        stats.rows_read += 1;
        if buffer.admits(scorer.score(&row)) {
            answers.push(t);
        }
        if t == interval.start() {
            break;
        }
        let expiring = t;
        t -= 1;
        if buffer.contains(expiring) {
            stats.topk_queries += 1;
            store.top_k_with(scorer, k, Window::lookback(t, tau), &mut scratch, &mut pi)?;
            buffer.refill(&pi);
        } else if t >= tau {
            let incoming = t - tau;
            store.read_row(incoming, &mut row)?;
            stats.rows_read += 1;
            buffer.insert(incoming, scorer.score(&row));
        }
    }
    answers.sort_unstable();
    stats.io = io_delta(store.io_stats(), before);
    Ok((answers, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_topk_temporal::{Dataset, LinearScorer, Scorer};
    use rand::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-proc-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    fn brute_durable(
        ds: &Dataset,
        scorer: &dyn Scorer,
        k: usize,
        i: Window,
        tau: Time,
    ) -> Vec<RecordId> {
        i.iter()
            .filter(|&t| {
                let w = Window::lookback(t, tau);
                let my = scorer.score(ds.row(t));
                let better =
                    w.clamp_to(ds.len()).iter().filter(|&u| scorer.score(ds.row(u)) > my).count();
                better < k
            })
            .collect()
    }

    #[test]
    fn procedures_match_definition() {
        let mut rng = StdRng::seed_from_u64(55);
        let rows: Vec<[f64; 2]> = (0..800)
            .map(|_| [rng.random_range(0..15) as f64, rng.random_range(0..15) as f64])
            .collect();
        let ds = Dataset::from_rows(2, rows);
        let mut store = RelStore::create(tmp("agree.db"), &ds, 16, 64).expect("create");
        let scorer = LinearScorer::new(vec![0.4, 0.6]);
        for (k, tau) in [(1usize, 50u32), (3, 120), (5, 400)] {
            let i = Window::new(100, 799);
            let expected = brute_durable(&ds, &scorer, k, i, tau);
            let (hop, _) = t_hop_proc(&mut store, &scorer, k, i, tau).expect("t-hop");
            let (base, _) = t_base_proc(&mut store, &scorer, k, i, tau).expect("t-base");
            assert_eq!(hop, expected, "t-hop k={k} tau={tau}");
            assert_eq!(base, expected, "t-base k={k} tau={tau}");
        }
    }

    #[test]
    fn thop_does_less_io_than_tbase() {
        let mut rng = StdRng::seed_from_u64(56);
        let rows: Vec<[f64; 2]> =
            (0..40_000).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let ds = Dataset::from_rows(2, rows);
        let mut store = RelStore::create(tmp("io.db"), &ds, 128, 96).expect("create");
        let scorer = LinearScorer::uniform(2);
        let i = Window::new(10_000, 39_999);
        let tau = 8_000;

        store.clear_cache().expect("cold");
        let (a, hop_stats) = t_hop_proc(&mut store, &scorer, 10, i, tau).expect("t-hop");
        store.clear_cache().expect("cold");
        let (b, base_stats) = t_base_proc(&mut store, &scorer, 10, i, tau).expect("t-base");
        assert_eq!(a, b);
        assert!(
            hop_stats.topk_queries * 5 < base_stats.rows_read,
            "hop queries {} vs base rows {}",
            hop_stats.topk_queries,
            base_stats.rows_read
        );
        assert!(
            hop_stats.io.misses < base_stats.io.misses,
            "hop misses {} vs base misses {}",
            hop_stats.io.misses,
            base_stats.io.misses
        );
    }
}
