//! Page-aligned (de)serialization of sealed record chunks.
//!
//! The tiered shard storage of the core crate spills a sealed tail's record
//! chunk — one immutable [`Dataset`] covering the shard's extended time
//! range — to pager-backed pages and faults it back in on demand. This
//! module defines that on-page format:
//!
//! ```text
//! page k:   magic u64 | records u64 | dim u64 | wall-clock flag u64
//!           attrs: records × dim × f64, row-major, little-endian
//!           wall-clock column: records × i64 (only when flagged)
//! ```
//!
//! Every chunk starts on a page boundary so chunks can be pinned, evicted
//! and read back independently. All scalars are fixed-width little-endian;
//! `f64` values travel through [`f64::to_le_bytes`]/[`f64::from_le_bytes`],
//! so a spill/reload roundtrip is **bit-identical** — the exactness
//! contract the storage-equivalence proptests pin down.

use crate::pager::{BufferPool, PageId, PAGE_SIZE};
use durable_topk_temporal::Dataset;
use std::io;

/// Format tag guarding against reading a foreign page range as a chunk.
const CHUNK_MAGIC: u64 = 0x00D7_C40C_2021_0006;

/// Bytes of the fixed chunk header (magic, record count, dim, wall-clock
/// flag).
const HEADER_BYTES: usize = 32;

/// Serialized size of a chunk in bytes (header + payload).
fn chunk_byte_len(records: usize, dim: usize, wall_clock: bool) -> u64 {
    let attrs = (records * dim * std::mem::size_of::<f64>()) as u64;
    let wc = if wall_clock { (records * std::mem::size_of::<i64>()) as u64 } else { 0 };
    HEADER_BYTES as u64 + attrs + wc
}

/// Number of pages a serialized `ds` occupies (chunks are page-aligned, so
/// this is also the allocation granularity of the chunk directory).
pub fn chunk_page_len(ds: &Dataset) -> u64 {
    chunk_byte_len(ds.len(), ds.dim(), ds.raw_wall_clock().is_some())
        .div_ceil(PAGE_SIZE as u64)
        .max(1)
}

/// Serializes `ds` starting at the first byte of `first_page`, returning
/// the number of pages written (= [`chunk_page_len`]).
///
/// The write goes through the buffer pool: pages land in cache frames and
/// reach the file on eviction or flush, so an immediately following read is
/// warm.
pub fn write_chunk(pool: &mut BufferPool, first_page: PageId, ds: &Dataset) -> io::Result<u64> {
    let wall_clock = ds.raw_wall_clock();
    let mut buf =
        Vec::with_capacity(chunk_byte_len(ds.len(), ds.dim(), wall_clock.is_some()) as usize);
    buf.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(ds.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(ds.dim() as u64).to_le_bytes());
    buf.extend_from_slice(&u64::from(wall_clock.is_some()).to_le_bytes());
    for &x in ds.raw_attrs() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    if let Some(wc) = wall_clock {
        for &t in wc {
            buf.extend_from_slice(&t.to_le_bytes());
        }
    }
    pool.write_bytes(first_page * PAGE_SIZE as u64, &buf)?;
    Ok(chunk_page_len(ds))
}

/// Reads back a chunk previously written by [`write_chunk`] at
/// `first_page`. The reload is bit-identical to the dataset that was
/// spilled.
pub fn read_chunk(pool: &mut BufferPool, first_page: PageId) -> io::Result<Dataset> {
    let base = first_page * PAGE_SIZE as u64;
    let mut header = [0u8; HEADER_BYTES];
    pool.read_bytes(base, &mut header)?;
    let word = |i: usize| crate::codec::le_u64(&header[i * 8..(i + 1) * 8]);
    if word(0) != CHUNK_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a record chunk"));
    }
    let records = word(1) as usize;
    let dim = word(2) as usize;
    let has_wc = word(3) != 0;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "chunk with zero dim"));
    }

    let mut bytes = vec![0u8; records * dim * std::mem::size_of::<f64>()];
    pool.read_bytes(base + HEADER_BYTES as u64, &mut bytes)?;
    let attrs: Vec<f64> = bytes.chunks_exact(8).map(crate::codec::le_f64).collect();

    let wall_clock = if has_wc {
        let mut wc_bytes = vec![0u8; records * std::mem::size_of::<i64>()];
        pool.read_bytes(base + HEADER_BYTES as u64 + bytes.len() as u64, &mut wc_bytes)?;
        Some(wc_bytes.chunks_exact(8).map(crate::codec::le_i64).collect())
    } else {
        None
    };
    Ok(Dataset::from_raw_parts(dim, attrs, wall_clock))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-chunk-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_identical_including_awkward_floats() {
        let mut ds = Dataset::new(3);
        ds.push(&[0.1 + 0.2, -0.0, f64::MIN_POSITIVE]);
        ds.push(&[1e300, -1e-300, 42.0]);
        let mut pool = BufferPool::create(tmp("exact.db"), 4).expect("create");
        let pages = write_chunk(&mut pool, 0, &ds).expect("write");
        assert_eq!(pages, 1);
        let back = read_chunk(&mut pool, 0).expect("read");
        assert_eq!(back.dim(), 3);
        // Bit-level comparison, not numeric: -0.0 must stay -0.0.
        let bits = |d: &Dataset| d.raw_attrs().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&ds));
    }

    #[test]
    fn multi_page_chunks_roundtrip_after_a_cold_restart() {
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<[f64; 4]> =
            (0..2_000).map(|_| std::array::from_fn(|_| rng.random())).collect();
        let ds = Dataset::from_rows(4, rows);
        let mut pool = BufferPool::create(tmp("multi.db"), 3).expect("create");
        let pages = write_chunk(&mut pool, 2, &ds).expect("write");
        assert!(pages > 1, "2000×4 f64 rows must span pages");
        assert_eq!(pages, chunk_page_len(&ds));
        pool.clear_cache().expect("cold");
        let back = read_chunk(&mut pool, 2).expect("read");
        assert_eq!(back.raw_attrs(), ds.raw_attrs());
    }

    #[test]
    fn wall_clock_column_is_preserved() {
        let mut ds = Dataset::new(1);
        ds.push_with_wall_clock(&[5.0], -123);
        ds.push_with_wall_clock(&[6.0], i64::MAX);
        let mut pool = BufferPool::create(tmp("wc.db"), 4).expect("create");
        write_chunk(&mut pool, 0, &ds).expect("write");
        let back = read_chunk(&mut pool, 0).expect("read");
        assert_eq!(back.wall_clock(0), Some(-123));
        assert_eq!(back.wall_clock(1), Some(i64::MAX));
    }

    #[test]
    fn adjacent_chunks_do_not_interfere() {
        let a = Dataset::from_rows(2, (0..700).map(|i| [i as f64, -(i as f64)]));
        let b = Dataset::from_rows(2, (0..5).map(|i| [100.0 + i as f64, 0.5]));
        let mut pool = BufferPool::create(tmp("adjacent.db"), 4).expect("create");
        let pages_a = write_chunk(&mut pool, 0, &a).expect("write a");
        write_chunk(&mut pool, pages_a, &b).expect("write b");
        assert_eq!(read_chunk(&mut pool, 0).expect("a").raw_attrs(), a.raw_attrs());
        assert_eq!(read_chunk(&mut pool, pages_a).expect("b").raw_attrs(), b.raw_attrs());
    }

    #[test]
    fn foreign_pages_are_rejected() {
        let mut pool = BufferPool::create(tmp("foreign.db"), 4).expect("create");
        pool.write_bytes(0, &[0xAB; 64]).expect("write");
        assert!(read_chunk(&mut pool, 0).is_err());
    }
}
