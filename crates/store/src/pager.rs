//! Page-granular file I/O behind an LRU buffer pool.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Page size in bytes (PostgreSQL's default, 8 KiB).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page: its index within the backing file.
pub type PageId = u64;

/// Buffer-pool I/O accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests satisfied from the pool.
    pub hits: u64,
    /// Page requests that required a physical read.
    pub misses: u64,
    /// Physical page reads.
    pub reads: u64,
    /// Physical page writes (evictions of dirty pages + flushes).
    pub writes: u64,
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    last_used: u64,
    dirty: bool,
    /// Pinned frames are exempt from LRU eviction until unpinned.
    pinned: bool,
}

/// An LRU buffer pool over one backing file.
///
/// All reads and writes go through fixed-size frames; byte-granular helpers
/// walk pages so callers can store variable-length records that cross page
/// boundaries (each crossed page counts as its own request, exactly as a
/// real slotted-blob layout would behave).
pub struct BufferPool {
    file: File,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    capacity: usize,
    tick: u64,
    len_pages: u64,
    stats: IoStats,
}

impl BufferPool {
    /// Creates (truncating) a pool over `path` with room for `capacity`
    /// pages in memory.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn create<P: AsRef<Path>>(path: P, capacity: usize) -> io::Result<Self> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self {
            file,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            len_pages: 0,
            stats: IoStats::default(),
        })
    }

    /// Opens an existing file.
    pub fn open<P: AsRef<Path>>(path: P, capacity: usize) -> io::Result<Self> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            len_pages: len.div_ceil(PAGE_SIZE as u64),
            stats: IoStats::default(),
        })
    }

    /// Number of pages in the backing file (allocated high-water mark).
    pub fn len_pages(&self) -> u64 {
        self.len_pages
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets I/O statistics (keeps pool contents).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Drops every cached page (dirty pages are flushed first), simulating a
    /// cold cache. Pins are released: a cleared pool starts from nothing.
    pub fn clear_cache(&mut self) -> io::Result<()> {
        self.flush()?;
        self.frames.clear();
        self.map.clear();
        Ok(())
    }

    /// Pins `page` in the pool: the page is faulted in if absent and its
    /// frame is exempt from LRU eviction until [`unpin`](BufferPool::unpin)
    /// (or [`clear_cache`](BufferPool::clear_cache)) releases it.
    ///
    /// Callers keeping a working set warm (e.g. a spilled chunk that a
    /// query just faulted back in) pin well below the pool capacity;
    /// requesting a new page while every frame is pinned is an error.
    pub fn pin(&mut self, page: PageId) -> io::Result<()> {
        let idx = self.frame_for(page)?;
        self.frames[idx].pinned = true;
        Ok(())
    }

    /// Releases a pin taken by [`pin`](BufferPool::pin). A no-op if the
    /// page is not cached (it may have been dropped by
    /// [`clear_cache`](BufferPool::clear_cache)) or not pinned.
    pub fn unpin(&mut self, page: PageId) {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].pinned = false;
        }
    }

    /// Number of currently pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pinned).count()
    }

    fn frame_for(&mut self, page: PageId) -> io::Result<usize> {
        self.tick += 1;
        if let Some(&idx) = self.map.get(&page) {
            self.stats.hits += 1;
            self.frames[idx].last_used = self.tick;
            return Ok(idx);
        }
        self.stats.misses += 1;
        // Load (zero-filled past EOF so fresh pages need no prior write).
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let offset = page * PAGE_SIZE as u64;
        let file_len = self.len_pages * PAGE_SIZE as u64;
        if offset < file_len {
            self.stats.reads += 1;
            read_full_at(&self.file, &mut data, offset)?;
        }
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page,
                data,
                last_used: self.tick,
                dirty: false,
                pinned: false,
            });
            self.frames.len() - 1
        } else {
            // Evict the least-recently-used unpinned frame.
            let idx = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.pinned)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| {
                    io::Error::other("every buffer-pool frame is pinned; cannot evict")
                })?;
            let old = &mut self.frames[idx];
            if old.dirty {
                self.stats.writes += 1;
                self.file.write_all_at(&old.data, old.page * PAGE_SIZE as u64)?;
            }
            self.map.remove(&old.page);
            old.page = page;
            old.data = data;
            old.last_used = self.tick;
            old.dirty = false;
            idx
        };
        self.map.insert(page, idx);
        self.len_pages = self.len_pages.max(page + 1);
        Ok(idx)
    }

    /// Reads `buf.len()` bytes starting at byte `offset`, walking pages
    /// through the pool.
    pub fn read_bytes(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(buf.len() - done);
            let idx = self.frame_for(page)?;
            buf[done..done + take].copy_from_slice(&self.frames[idx].data[in_page..in_page + take]);
            done += take;
        }
        Ok(())
    }

    /// Writes `buf` at byte `offset`, walking pages through the pool.
    pub fn write_bytes(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(buf.len() - done);
            let idx = self.frame_for(page)?;
            self.frames[idx].data[in_page..in_page + take].copy_from_slice(&buf[done..done + take]);
            self.frames[idx].dirty = true;
            done += take;
        }
        Ok(())
    }

    /// Flushes every dirty page to the file.
    pub fn flush(&mut self) -> io::Result<()> {
        for f in &mut self.frames {
            if f.dirty {
                self.stats.writes += 1;
                self.file.write_all_at(&f.data, f.page * PAGE_SIZE as u64)?;
                f.dirty = false;
            }
        }
        self.file.sync_data()?;
        Ok(())
    }
}

/// Debug-build pin-leak detector: a pool must not be torn down while any
/// frame is still pinned. A leaked pin means some fetch path took a pin it
/// never paired with [`unpin`](BufferPool::unpin) (or
/// [`clear_cache`](BufferPool::clear_cache), which releases every pin
/// explicitly) — under eviction pressure that pin would have silently
/// shrunk the evictable pool for the process lifetime. Release builds skip
/// the check entirely.
impl Drop for BufferPool {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let leaked = self.pinned_frames();
            assert!(
                leaked == 0,
                "buffer-pool pin leak: {leaked} frame(s) still pinned at drop; \
                 pair every pin with unpin (or clear_cache) before the pool \
                 releases its last reference"
            );
        }
    }
}

fn read_full_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // Past-EOF tails read as zeros (fresh page semantics).
    let len = file.metadata()?.len();
    if offset >= len {
        buf.fill(0);
        return Ok(());
    }
    let avail = ((len - offset) as usize).min(buf.len());
    file.read_exact_at(&mut buf[..avail], offset)?;
    buf[avail..].fill(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-store-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_within_one_page() {
        let mut pool = BufferPool::create(tmp("roundtrip.db"), 4).expect("create");
        pool.write_bytes(100, b"hello world").expect("write");
        let mut buf = [0u8; 11];
        pool.read_bytes(100, &mut buf).expect("read");
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn roundtrip_across_page_boundary() {
        let mut pool = BufferPool::create(tmp("cross.db"), 4).expect("create");
        let payload: Vec<u8> = (0..=255u8).cycle().take(3 * PAGE_SIZE + 17).collect();
        pool.write_bytes(PAGE_SIZE as u64 - 9, &payload).expect("write");
        let mut buf = vec![0u8; payload.len()];
        pool.read_bytes(PAGE_SIZE as u64 - 9, &mut buf).expect("read");
        assert_eq!(buf, payload);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let path = tmp("evict.db");
        let mut pool = BufferPool::create(&path, 2).expect("create");
        for p in 0..6u64 {
            pool.write_bytes(p * PAGE_SIZE as u64, &[p as u8 + 1; 32]).expect("write");
        }
        // Pool holds 2 frames; earlier pages were evicted (written out).
        for p in 0..6u64 {
            let mut buf = [0u8; 32];
            pool.read_bytes(p * PAGE_SIZE as u64, &mut buf).expect("read");
            assert_eq!(buf, [p as u8 + 1; 32], "page {p}");
        }
        assert!(pool.stats().writes >= 4, "evictions must write dirty pages");
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut pool = BufferPool::create(tmp("stats.db"), 4).expect("create");
        let mut buf = [0u8; 8];
        pool.read_bytes(0, &mut buf).expect("read");
        pool.read_bytes(8, &mut buf).expect("read");
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn flush_and_reopen() {
        let path = tmp("reopen.db");
        {
            let mut pool = BufferPool::create(&path, 4).expect("create");
            pool.write_bytes(3 * PAGE_SIZE as u64 + 5, b"persisted").expect("write");
            pool.flush().expect("flush");
        }
        let mut pool = BufferPool::open(&path, 4).expect("open");
        let mut buf = [0u8; 9];
        pool.read_bytes(3 * PAGE_SIZE as u64 + 5, &mut buf).expect("read");
        assert_eq!(&buf, b"persisted");
        assert_eq!(pool.len_pages(), 4);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut pool = BufferPool::create(tmp("pin.db"), 2).expect("create");
        pool.write_bytes(0, &[7u8; 16]).expect("write");
        pool.pin(0).expect("pin");
        // Stream enough pages through the remaining frame to evict page 0
        // many times over, were it evictable.
        for p in 1..10u64 {
            pool.write_bytes(p * PAGE_SIZE as u64, &[p as u8; 16]).expect("write");
        }
        assert_eq!(pool.pinned_frames(), 1);
        pool.reset_stats();
        let mut buf = [0u8; 16];
        pool.read_bytes(0, &mut buf).expect("read");
        assert_eq!(buf, [7u8; 16]);
        assert_eq!(pool.stats().reads, 0, "a pinned page is always a cache hit");
        pool.unpin(0);
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn fully_pinned_pool_rejects_new_pages() {
        let mut pool = BufferPool::create(tmp("pin-full.db"), 1).expect("create");
        pool.pin(0).expect("pin");
        let mut buf = [0u8; 4];
        assert!(pool.read_bytes(PAGE_SIZE as u64, &mut buf).is_err());
        pool.unpin(0);
        assert!(pool.read_bytes(PAGE_SIZE as u64, &mut buf).is_ok());
    }

    #[test]
    fn unpin_of_uncached_page_is_a_noop() {
        let mut pool = BufferPool::create(tmp("pin-gone.db"), 2).expect("create");
        pool.pin(3).expect("pin");
        pool.clear_cache().expect("clear");
        pool.unpin(3);
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "pin-leak detector is debug-only")]
    #[should_panic(expected = "pin leak")]
    fn dropping_a_pool_with_a_live_pin_panics_in_debug() {
        let mut pool = BufferPool::create(tmp("pin-leak.db"), 2).expect("create");
        pool.write_bytes(0, &[1u8; 8]).expect("write");
        pool.pin(0).expect("pin");
        drop(pool);
    }

    #[test]
    fn clear_cache_releases_pins_before_drop() {
        let mut pool = BufferPool::create(tmp("pin-clear.db"), 2).expect("create");
        pool.pin(1).expect("pin");
        pool.clear_cache().expect("clear");
        // Drop runs the debug pin-leak check; a cleared pool passes it.
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let mut pool = BufferPool::create(tmp("cold.db"), 4).expect("create");
        pool.write_bytes(0, b"x").expect("write");
        pool.clear_cache().expect("clear");
        pool.reset_stats();
        let mut buf = [0u8; 1];
        pool.read_bytes(0, &mut buf).expect("read");
        assert_eq!(pool.stats().misses, 1);
    }
}
