//! Little-endian field decoding for the fixed on-page layouts.
//!
//! Every on-disk structure in this crate stores fixed-width little-endian
//! fields. These decoders centralize the one slice-width proof obligation
//! (the input must be exactly the field width) so call sites stay free of
//! `try_into().expect(..)` noise — and the workspace lint
//! (`cargo run -p xtask -- lint`) can hold the rest of the crate to a
//! no-expect rule.

/// Decodes a little-endian `u64` from exactly 8 bytes.
///
/// # Panics
/// Panics if `bytes.len() != 8` — a caller bug: every field offset in this
/// crate is a compile-time constant.
pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    // lint: allow(expect) — the single place the fixed-width contract is
    // enforced; callers slice compile-time-constant widths.
    u64::from_le_bytes(bytes.try_into().expect("le_u64 needs exactly 8 bytes"))
}

/// Decodes a little-endian `u32` from exactly 4 bytes.
///
/// # Panics
/// Panics if `bytes.len() != 4` (see [`le_u64`]).
pub(crate) fn le_u32(bytes: &[u8]) -> u32 {
    // lint: allow(expect) — see le_u64.
    u32::from_le_bytes(bytes.try_into().expect("le_u32 needs exactly 4 bytes"))
}

/// Decodes a little-endian `i64` from exactly 8 bytes.
///
/// # Panics
/// Panics if `bytes.len() != 8` (see [`le_u64`]).
pub(crate) fn le_i64(bytes: &[u8]) -> i64 {
    // lint: allow(expect) — see le_u64.
    i64::from_le_bytes(bytes.try_into().expect("le_i64 needs exactly 8 bytes"))
}

/// Decodes a little-endian `f64` from exactly 8 bytes.
///
/// # Panics
/// Panics if `bytes.len() != 8` (see [`le_u64`]).
pub(crate) fn le_f64(bytes: &[u8]) -> f64 {
    // lint: allow(expect) — see le_u64.
    f64::from_le_bytes(bytes.try_into().expect("le_f64 needs exactly 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(le_u64(&0xdead_beef_u64.to_le_bytes()), 0xdead_beef);
        assert_eq!(le_u32(&7u32.to_le_bytes()), 7);
        assert_eq!(le_i64(&(-42i64).to_le_bytes()), -42);
        assert_eq!(le_f64(&1.5f64.to_le_bytes()), 1.5);
    }

    #[test]
    #[should_panic(expected = "exactly 8 bytes")]
    fn width_mismatch_is_a_caller_bug() {
        le_u64(&[0u8; 4]);
    }
}
