//! Fixed-width row tables over the data region.
//!
//! Rows are `dim` little-endian f64s; the row id is the arrival instant, so
//! the table *is* the time index: a time-window scan touches exactly the
//! pages spanning the window. Rows never cross page boundaries (slotted by
//! `rows_per_page`), mirroring how a clustered heap file behaves.

use crate::pager::{BufferPool, PAGE_SIZE};
use durable_topk_temporal::{Dataset, RecordId};
use std::io;

/// A fixed-width row table occupying a page range of the backing file.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    first_page: u64,
    dim: usize,
    n: usize,
    rows_per_page: usize,
}

impl Table {
    /// Bulk-loads a dataset into pages starting at `first_page`.
    ///
    /// # Panics
    /// Panics if the dataset is empty or a row does not fit in a page.
    pub fn create(pool: &mut BufferPool, first_page: u64, ds: &Dataset) -> io::Result<Table> {
        assert!(!ds.is_empty(), "cannot store an empty dataset");
        let dim = ds.dim();
        let row_bytes = dim * 8;
        assert!(row_bytes <= PAGE_SIZE, "row of {row_bytes} bytes exceeds a page");
        let rows_per_page = PAGE_SIZE / row_bytes;
        let table = Table { first_page, dim, n: ds.len(), rows_per_page };
        let mut buf = vec![0u8; row_bytes];
        for id in 0..ds.len() as RecordId {
            for (j, &x) in ds.row(id).iter().enumerate() {
                buf[j * 8..(j + 1) * 8].copy_from_slice(&x.to_le_bytes());
            }
            pool.write_bytes(table.row_offset(id), &buf)?;
        }
        Ok(table)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table holds no rows (never true for created tables).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Attribute arity.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// First page past the table's data (where the next region may start).
    pub fn end_page(&self) -> u64 {
        self.first_page + (self.n as u64).div_ceil(self.rows_per_page as u64)
    }

    fn row_offset(&self, id: RecordId) -> u64 {
        let page = self.first_page + id as u64 / self.rows_per_page as u64;
        let slot = id as u64 % self.rows_per_page as u64;
        page * PAGE_SIZE as u64 + slot * (self.dim as u64 * 8)
    }

    /// Reads row `id` into `out`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds or `out.len() != dim`.
    pub fn read_row(&self, pool: &mut BufferPool, id: RecordId, out: &mut [f64]) -> io::Result<()> {
        assert!((id as usize) < self.n, "row {id} out of bounds");
        assert_eq!(out.len(), self.dim, "output arity mismatch");
        let mut buf = vec![0u8; self.dim * 8];
        pool.read_bytes(self.row_offset(id), &mut buf)?;
        for (j, x) in out.iter_mut().enumerate() {
            *x = crate::codec::le_f64(&buf[j * 8..(j + 1) * 8]);
        }
        Ok(())
    }

    /// Serialization of the table metadata (for the store header).
    pub(crate) fn to_meta(self) -> [u64; 4] {
        [self.first_page, self.dim as u64, self.n as u64, self.rows_per_page as u64]
    }

    pub(crate) fn from_meta(meta: [u64; 4]) -> Table {
        Table {
            first_page: meta[0],
            dim: meta[1] as usize,
            n: meta[2] as usize,
            rows_per_page: meta[3] as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("durable-topk-table-tests");
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_rows() {
        let ds = Dataset::from_rows(3, (0..1000).map(|i| [i as f64, -(i as f64), 0.5 * i as f64]));
        let mut pool = BufferPool::create(tmp("rows.db"), 8).expect("create");
        let table = Table::create(&mut pool, 1, &ds).expect("load");
        let mut row = [0.0f64; 3];
        for id in [0u32, 1, 341, 999] {
            table.read_row(&mut pool, id, &mut row).expect("read");
            assert_eq!(&row, ds.row(id), "row {id}");
        }
        assert_eq!(table.len(), 1000);
        assert_eq!(table.dim(), 3);
    }

    #[test]
    fn sequential_scan_is_page_efficient() {
        let ds = Dataset::from_rows(2, (0..10_000).map(|i| [i as f64, 1.0]));
        let mut pool = BufferPool::create(tmp("scan.db"), 64).expect("create");
        let table = Table::create(&mut pool, 0, &ds).expect("load");
        pool.clear_cache().expect("cold");
        pool.reset_stats();
        let mut row = [0.0f64; 2];
        for id in 0..10_000u32 {
            table.read_row(&mut pool, id, &mut row).expect("read");
        }
        let stats = pool.stats();
        // 512 rows/page at d=2: 10_000 rows span ~20 pages.
        assert!(stats.misses <= 25, "sequential scan misses {}", stats.misses);
        assert!(stats.hits > 9_000);
    }

    #[test]
    fn meta_roundtrip() {
        let ds = Dataset::from_rows(2, [[1.0, 2.0]]);
        let mut pool = BufferPool::create(tmp("meta.db"), 4).expect("create");
        let table = Table::create(&mut pool, 5, &ds).expect("load");
        let back = Table::from_meta(table.to_meta());
        assert_eq!(back.len(), table.len());
        assert_eq!(back.end_page(), table.end_page());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let ds = Dataset::from_rows(1, [[1.0]]);
        let mut pool = BufferPool::create(tmp("oob.db"), 4).expect("create");
        let table = Table::create(&mut pool, 0, &ds).expect("load");
        let mut row = [0.0f64; 1];
        table.read_row(&mut pool, 1, &mut row).expect("read");
    }
}
