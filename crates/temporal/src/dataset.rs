//! Instant-stamped record datasets ordered by arrival time.

use crate::{Time, Window};

/// Identifier of a record: its position in arrival order.
///
/// Because records are stored sorted by arrival instant and arrival instants
/// are distinct (ties in source data are broken arbitrarily but consistently,
/// as in the paper's NBA preparation), the identifier doubles as the record's
/// discrete arrival time.
pub type RecordId = u32;

/// A borrowed view of one record: its arrival time and attribute vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordRef<'a> {
    /// Discrete arrival time (= position in the dataset).
    pub t: Time,
    /// The `d` real-valued ranking attributes.
    pub attrs: &'a [f64],
}

/// A dataset `P` of `n` records with `d` real-valued attributes each,
/// organized by increasing arrival time.
///
/// Attributes are stored row-major in a single flat allocation so that a
/// record's attribute slice is one contiguous cache line run; this matters
/// because the top-k building block scores millions of records per query.
///
/// An optional `wall_clock` column carries real-world timestamps (e.g. epoch
/// days) purely for presentation; all query semantics operate on discrete
/// positions.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    attrs: Vec<f64>,
    wall_clock: Option<Vec<i64>>,
}

impl Dataset {
    /// Creates an empty dataset of records with `dim` attributes.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "datasets must have at least one attribute");
        Self { dim, attrs: Vec::new(), wall_clock: None }
    }

    /// Creates an empty dataset with capacity for `n` records.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "datasets must have at least one attribute");
        Self { dim, attrs: Vec::with_capacity(dim * n), wall_clock: None }
    }

    /// Builds a dataset from an iterator of attribute rows.
    ///
    /// Rows are interpreted in arrival order: the first row arrives at time 0.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<I, R>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut ds = Self::new(dim);
        for row in rows {
            ds.push(row.as_ref());
        }
        ds
    }

    /// Appends a record, assigning it the next arrival instant.
    ///
    /// Returns the new record's id. This is the online-arrival path: the
    /// paper's indexes support appends with polylogarithmic amortized cost,
    /// and the index crate mirrors that via right-spine rebuilds.
    ///
    /// # Panics
    /// Panics if `attrs.len() != self.dim()` or the dataset is full
    /// (`u32::MAX` records).
    pub fn push(&mut self, attrs: &[f64]) -> RecordId {
        assert_eq!(attrs.len(), self.dim, "attribute arity mismatch");
        let id = self.len();
        assert!(id < u32::MAX as usize, "dataset full");
        self.attrs.extend_from_slice(attrs);
        if let Some(wc) = &mut self.wall_clock {
            // Keep the auxiliary column aligned even for mixed pushes.
            wc.push(id as i64);
        }
        id as RecordId
    }

    /// Appends a record together with a wall-clock timestamp.
    ///
    /// The first call on a dataset without wall-clock data backfills earlier
    /// records with their positions.
    pub fn push_with_wall_clock(&mut self, attrs: &[f64], wall_clock: i64) -> RecordId {
        if self.wall_clock.is_none() {
            self.wall_clock = Some((0..self.len() as i64).collect());
        }
        let id = self.push(attrs);
        // `push` appended a placeholder; overwrite it with the real value.
        let wc = self.wall_clock.as_mut().expect("initialized above");
        *wc.last_mut().expect("just pushed") = wall_clock;
        id
    }

    /// Number of records `n` (also the size of the time domain `|T|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len() / self.dim
    }

    /// Whether the dataset holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The attribute vector of record `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn row(&self, id: RecordId) -> &[f64] {
        let start = id as usize * self.dim;
        &self.attrs[start..start + self.dim]
    }

    /// A [`RecordRef`] view of record `id`.
    #[inline]
    pub fn record(&self, id: RecordId) -> RecordRef<'_> {
        RecordRef { t: id, attrs: self.row(id) }
    }

    /// Single attribute access: attribute `j` of record `id`.
    #[inline]
    pub fn value(&self, id: RecordId, j: usize) -> f64 {
        debug_assert!(j < self.dim);
        self.attrs[id as usize * self.dim + j]
    }

    /// The wall-clock timestamp of record `id`, if the dataset carries one.
    pub fn wall_clock(&self, id: RecordId) -> Option<i64> {
        self.wall_clock.as_ref().map(|wc| wc[id as usize])
    }

    /// Iterates over all records in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = RecordRef<'_>> + '_ {
        (0..self.len() as RecordId).map(move |id| self.record(id))
    }

    /// Iterates over the records inside `w` (clamped to the dataset).
    pub fn iter_window(&self, w: Window) -> impl Iterator<Item = RecordRef<'_>> + '_ {
        let w = w.clamp_to(self.len());
        w.iter().map(move |id| self.record(id))
    }

    /// The full time domain as a window, `[0, n-1]`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn domain(&self) -> Window {
        assert!(!self.is_empty(), "empty dataset has no time domain");
        Window::new(0, (self.len() - 1) as Time)
    }

    /// Projects the dataset onto a subset of attributes (the paper's NBA-X /
    /// Network-X constructions choose attribute subsets of a master dataset).
    ///
    /// # Panics
    /// Panics if `attrs` is empty or any index is out of range.
    pub fn project(&self, attrs: &[usize]) -> Dataset {
        assert!(!attrs.is_empty(), "projection needs at least one attribute");
        for &j in attrs {
            assert!(j < self.dim, "projection attribute {j} out of range");
        }
        let n = self.len();
        let mut out = Vec::with_capacity(n * attrs.len());
        for i in 0..n {
            let row = self.row(i as RecordId);
            out.extend(attrs.iter().map(|&j| row[j]));
        }
        Dataset { dim: attrs.len(), attrs: out, wall_clock: self.wall_clock.clone() }
    }

    /// Keeps only the first `n` records (used to carve size-X subsets like
    /// the paper's Syn-X family).
    pub fn truncate(&mut self, n: usize) {
        self.attrs.truncate(n * self.dim);
        if let Some(wc) = &mut self.wall_clock {
            wc.truncate(n);
        }
    }

    /// Returns a dataset whose arrival order is reversed.
    ///
    /// Reversal converts look-ahead durability into look-back durability:
    /// record `p` at time `t` is τ-durable looking *ahead* in `P` iff the
    /// corresponding record at time `n-1-t` is τ-durable looking *back* in
    /// the reversed dataset. The query layer uses this to serve
    /// [`Anchor::LookAhead`](crate::Anchor) with unmodified algorithms.
    pub fn reversed(&self) -> Dataset {
        let n = self.len();
        let mut out = Vec::with_capacity(self.attrs.len());
        for i in (0..n).rev() {
            out.extend_from_slice(self.row(i as RecordId));
        }
        Dataset {
            dim: self.dim,
            attrs: out,
            wall_clock: self.wall_clock.as_ref().map(|wc| wc.iter().rev().copied().collect()),
        }
    }

    /// Rescales every attribute to `[0, 1]` via min-max normalization, as the
    /// paper does for the Network dataset ("since these attributes have
    /// different measurement units").
    ///
    /// Constant columns map to `0`.
    pub fn minmax_normalize(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let d = self.dim;
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for i in 0..n {
            let row = &self.attrs[i * d..(i + 1) * d];
            for j in 0..d {
                lo[j] = lo[j].min(row[j]);
                hi[j] = hi[j].max(row[j]);
            }
        }
        for i in 0..n {
            let row = &mut self.attrs[i * d..(i + 1) * d];
            for j in 0..d {
                let span = hi[j] - lo[j];
                row[j] = if span > 0.0 { (row[j] - lo[j]) / span } else { 0.0 };
            }
        }
    }

    /// Raw row-major attribute storage (for bulk serialization by the store
    /// substrate).
    pub fn raw_attrs(&self) -> &[f64] {
        &self.attrs
    }

    /// The raw wall-clock column, if present (for bulk serialization by the
    /// store substrate).
    pub fn raw_wall_clock(&self) -> Option<&[i64]> {
        self.wall_clock.as_deref()
    }

    /// Reassembles a dataset from raw parts — the inverse of
    /// [`raw_attrs`](Dataset::raw_attrs) /
    /// [`raw_wall_clock`](Dataset::raw_wall_clock), used by the store
    /// substrate's chunk deserialization. No value is inspected or
    /// converted, so a serialize/deserialize roundtrip is bit-identical.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `attrs.len()` is not a multiple of `dim`, or a
    /// wall-clock column's length differs from the record count.
    pub fn from_raw_parts(dim: usize, attrs: Vec<f64>, wall_clock: Option<Vec<i64>>) -> Self {
        assert!(dim > 0, "datasets must have at least one attribute");
        assert!(attrs.len() % dim == 0, "attribute storage must hold whole rows");
        if let Some(wc) = &wall_clock {
            assert_eq!(wc.len(), attrs.len() / dim, "wall-clock column length mismatch");
        }
        Self { dim, attrs, wall_clock }
    }

    /// Heap bytes held by the attribute and wall-clock storage (capacity,
    /// not just length) — the resident-set accounting the storage bench
    /// reports chunk-deduplication savings with.
    pub fn heap_bytes(&self) -> usize {
        self.attrs.capacity() * std::mem::size_of::<f64>()
            + self.wall_clock.as_ref().map_or(0, |wc| wc.capacity() * std::mem::size_of::<i64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(2, [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]])
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut ds = Dataset::new(3);
        assert_eq!(ds.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(ds.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn record_time_equals_position() {
        let ds = sample();
        for (i, r) in ds.iter().enumerate() {
            assert_eq!(r.t as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_rejects_wrong_arity() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0]);
    }

    #[test]
    fn projection_selects_attributes() {
        let ds = Dataset::from_rows(3, [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let p = ds.project(&[2, 0]);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.row(0), &[3.0, 1.0]);
        assert_eq!(p.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn reversal_is_involutive_and_flips_times() {
        let ds = sample();
        let rev = ds.reversed();
        assert_eq!(rev.row(0), ds.row(3));
        assert_eq!(rev.row(3), ds.row(0));
        let back = rev.reversed();
        assert_eq!(back.raw_attrs(), ds.raw_attrs());
    }

    #[test]
    fn minmax_normalizes_to_unit_range_and_zeroes_constants() {
        let mut ds = Dataset::from_rows(2, [[0.0, 7.0], [5.0, 7.0], [10.0, 7.0]]);
        ds.minmax_normalize();
        assert_eq!(ds.row(0), &[0.0, 0.0]);
        assert_eq!(ds.row(1), &[0.5, 0.0]);
        assert_eq!(ds.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn wall_clock_backfills_positions() {
        let mut ds = Dataset::new(1);
        ds.push(&[1.0]);
        ds.push_with_wall_clock(&[2.0], 1000);
        assert_eq!(ds.wall_clock(0), Some(0));
        assert_eq!(ds.wall_clock(1), Some(1000));
    }

    #[test]
    fn iter_window_clamps() {
        let ds = sample();
        let got: Vec<_> = ds.iter_window(Window::new(2, 9)).map(|r| r.t).collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn raw_parts_roundtrip_is_bit_identical() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.5, -0.0]);
        ds.push_with_wall_clock(&[f64::MIN_POSITIVE, 3.25], 7);
        let back = Dataset::from_raw_parts(
            ds.dim(),
            ds.raw_attrs().to_vec(),
            ds.raw_wall_clock().map(<[i64]>::to_vec),
        );
        assert_eq!(back.raw_attrs(), ds.raw_attrs());
        assert_eq!(back.wall_clock(1), Some(7));
        assert!(back.heap_bytes() >= 4 * 8);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn from_raw_parts_rejects_ragged_storage() {
        Dataset::from_raw_parts(2, vec![1.0, 2.0, 3.0], None);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut ds = sample();
        ds.truncate(2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[2.0, 20.0]);
    }
}
