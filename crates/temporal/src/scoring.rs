//! User-specified scoring functions.
//!
//! The paper's algorithms are agnostic to the scoring function `f`: they only
//! require a top-k "building block" that ranks records under `f`. This module
//! defines the scoring interface and the three preference-function families
//! the paper highlights (Section II):
//!
//! * **linear**: `f_u(p) = Σ u_i · p.x_i` ([`LinearScorer`]),
//! * **linear combination of monotone functions**:
//!   `f_u(p) = Σ u_i · h(p.x_i)` with monotone `h` such as `log`
//!   ([`MonotoneCombinationScorer`]),
//! * **cosine**: `f_u(p) = (Σ u_i · p.x_i) / (|p||u|)` ([`CosineScorer`]).
//!
//! The preference vector `u` is a query-time parameter: constructing a scorer
//! is cheap and done per query.

/// A user-specified scoring function mapping an attribute vector to a score.
///
/// Implementations must be deterministic and total (no NaNs) over the data
/// they are used with; the query algorithms compare scores with `f64`
/// ordering and treat exactly-equal scores as ties (ties can be co-durable,
/// matching the paper's "tying for the top record" semantics).
pub trait Scorer {
    /// Scores one attribute vector.
    fn score(&self, attrs: &[f64]) -> f64;

    /// Whether the scorer is monotone non-decreasing in every attribute.
    ///
    /// Monotone scorers admit exact node bounds from skylines in the top-k
    /// index and are eligible for the S-Band algorithm (Section IV-B, which
    /// applies "to monotone scoring functions only").
    fn is_monotone(&self) -> bool;
}

/// Linear preference scorer `f_u(p) = Σ u_i · p.x_i`.
///
/// Weights must be non-negative for the scorer to be monotone (this is the
/// paper's setting: "`u_i` is the (non-negative) weight for the i-th
/// attribute").
#[derive(Debug, Clone, PartialEq)]
pub struct LinearScorer {
    weights: Vec<f64>,
}

impl LinearScorer {
    /// Creates a linear scorer with the given preference vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "preference vector must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "preference weights must be finite and non-negative"
        );
        Self { weights }
    }

    /// Uniform preference over `d` attributes (each weight `1/d`).
    pub fn uniform(d: usize) -> Self {
        Self::new(vec![1.0 / d as f64; d])
    }

    /// The preference vector `u`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Scorer for LinearScorer {
    #[inline]
    fn score(&self, attrs: &[f64]) -> f64 {
        debug_assert_eq!(attrs.len(), self.weights.len());
        // Manual loop: tight inner kernel of every top-k query.
        let mut s = 0.0;
        for (w, x) in self.weights.iter().zip(attrs) {
            s += w * x;
        }
        s
    }

    fn is_monotone(&self) -> bool {
        true
    }
}

/// A monotone per-attribute transform `h` for
/// [`MonotoneCombinationScorer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonotoneTransform {
    /// Identity: `h(x) = x`.
    Identity,
    /// `h(x) = ln(1 + max(x, 0))` — the paper's `log` example made total
    /// over non-negative data.
    Log1p,
    /// `h(x) = sqrt(max(x, 0))`.
    Sqrt,
    /// `h(x) = x³` (odd power, monotone over all reals).
    Cube,
}

impl MonotoneTransform {
    /// Applies the transform.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            MonotoneTransform::Identity => x,
            MonotoneTransform::Log1p => x.max(0.0).ln_1p(),
            MonotoneTransform::Sqrt => x.max(0.0).sqrt(),
            MonotoneTransform::Cube => x * x * x,
        }
    }
}

/// Linear combination of monotone transforms:
/// `f_u(p) = Σ u_i · h_i(p.x_i)` with `u_i ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCombinationScorer {
    weights: Vec<f64>,
    transforms: Vec<MonotoneTransform>,
}

impl MonotoneCombinationScorer {
    /// Creates the scorer; one transform per attribute.
    ///
    /// # Panics
    /// Panics on empty/negative weights or arity mismatch.
    pub fn new(weights: Vec<f64>, transforms: Vec<MonotoneTransform>) -> Self {
        assert_eq!(weights.len(), transforms.len(), "one transform per weight");
        assert!(!weights.is_empty(), "preference vector must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "preference weights must be finite and non-negative"
        );
        Self { weights, transforms }
    }

    /// Applies `Log1p` to every attribute with the given weights.
    pub fn log1p(weights: Vec<f64>) -> Self {
        let transforms = vec![MonotoneTransform::Log1p; weights.len()];
        Self::new(weights, transforms)
    }

    /// The preference vector `u`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The per-attribute transforms `h_i`, one per weight.
    pub fn transforms(&self) -> &[MonotoneTransform] {
        &self.transforms
    }
}

impl Scorer for MonotoneCombinationScorer {
    #[inline]
    fn score(&self, attrs: &[f64]) -> f64 {
        debug_assert_eq!(attrs.len(), self.weights.len());
        let mut s = 0.0;
        for ((w, tr), x) in self.weights.iter().zip(&self.transforms).zip(attrs) {
            s += w * tr.apply(*x);
        }
        s
    }

    fn is_monotone(&self) -> bool {
        true
    }
}

/// Cosine similarity scorer `f_u(p) = (u · p) / (|u||p|)`.
///
/// Cosine is **not** monotone in the attributes, so it cannot use skyline
/// node bounds or the S-Band candidate index; the top-k oracle falls back to
/// admissible bounding-box bounds for it, and only the generally-applicable
/// algorithms (T-Base, T-Hop, S-Base, S-Hop) accept it.
#[derive(Debug, Clone, PartialEq)]
pub struct CosineScorer {
    weights: Vec<f64>,
    norm: f64,
}

impl CosineScorer {
    /// Creates a cosine scorer for the preference vector `u`.
    ///
    /// # Panics
    /// Panics if `u` is empty, non-finite, or has zero norm.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "preference vector must be non-empty");
        assert!(weights.iter().all(|w| w.is_finite()), "weights must be finite");
        let norm = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm > 0.0, "preference vector must be non-zero");
        Self { weights, norm }
    }

    /// The preference vector `u`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `|u|`.
    pub fn weight_norm(&self) -> f64 {
        self.norm
    }
}

impl Scorer for CosineScorer {
    #[inline]
    fn score(&self, attrs: &[f64]) -> f64 {
        debug_assert_eq!(attrs.len(), self.weights.len());
        let mut dot = 0.0;
        let mut sq = 0.0;
        for (w, x) in self.weights.iter().zip(attrs) {
            dot += w * x;
            sq += x * x;
        }
        if sq == 0.0 {
            return 0.0; // zero vector: define cosine as 0
        }
        dot / (self.norm * sq.sqrt())
    }

    fn is_monotone(&self) -> bool {
        false
    }
}

/// Ranks records by a single attribute (the paper's Example I.1: rebounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleAttributeScorer {
    attr: usize,
}

impl SingleAttributeScorer {
    /// Scores by attribute `attr`.
    pub fn new(attr: usize) -> Self {
        Self { attr }
    }

    /// The scored attribute's index.
    pub fn attr(&self) -> usize {
        self.attr
    }
}

impl Scorer for SingleAttributeScorer {
    #[inline]
    fn score(&self, attrs: &[f64]) -> f64 {
        attrs[self.attr]
    }

    fn is_monotone(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scores_dot_product() {
        let s = LinearScorer::new(vec![2.0, 0.5]);
        assert_eq!(s.score(&[3.0, 4.0]), 8.0);
        assert!(s.is_monotone());
    }

    #[test]
    fn uniform_weights_average() {
        let s = LinearScorer::uniform(4);
        assert!((s.score(&[4.0, 4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn linear_rejects_negative_weights() {
        LinearScorer::new(vec![1.0, -0.1]);
    }

    #[test]
    fn monotone_combination_applies_transforms() {
        let s = MonotoneCombinationScorer::new(
            vec![1.0, 1.0],
            vec![MonotoneTransform::Identity, MonotoneTransform::Log1p],
        );
        let expected = 2.0 + (1.0f64 + 7.0).ln();
        assert!((s.score(&[2.0, 7.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn transforms_are_monotone() {
        for tr in [
            MonotoneTransform::Identity,
            MonotoneTransform::Log1p,
            MonotoneTransform::Sqrt,
            MonotoneTransform::Cube,
        ] {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..100 {
                let v = tr.apply(i as f64 * 0.37 - 5.0);
                assert!(v >= prev, "{tr:?} not monotone");
                prev = v;
            }
        }
    }

    #[test]
    fn cosine_is_scale_invariant_in_record() {
        let s = CosineScorer::new(vec![1.0, 2.0]);
        let a = s.score(&[3.0, 4.0]);
        let b = s.score(&[6.0, 8.0]);
        assert!((a - b).abs() < 1e-12);
        assert!(!s.is_monotone());
    }

    #[test]
    fn cosine_of_parallel_vector_is_one() {
        let s = CosineScorer::new(vec![1.0, 2.0, 2.0]);
        assert!((s.score(&[0.5, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(s.score(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn single_attribute_picks_column() {
        let s = SingleAttributeScorer::new(1);
        assert_eq!(s.score(&[9.0, 7.0, 5.0]), 7.0);
    }
}
