//! Discrete time windows and durability-window anchoring.

use crate::Time;

/// An inclusive discrete time window `[start, end]`.
///
/// Windows are always well-formed (`start <= end`); constructors panic on
/// inversion. Positions may exceed the dataset bounds — call
/// [`Window::clamp_to`] before iterating records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    start: Time,
    end: Time,
}

impl Window {
    /// Creates the window `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(start <= end, "inverted window [{start}, {end}]");
        Self { start, end }
    }

    /// The look-back durability window `[t − τ, t]`, clamped at time 0.
    ///
    /// This is the paper's default anchoring: a record is τ-durable iff it is
    /// in the top-k of this window.
    #[inline]
    pub fn lookback(t: Time, tau: Time) -> Self {
        Self { start: t.saturating_sub(tau), end: t }
    }

    /// The look-ahead durability window `[t, t + τ]` (saturating).
    #[inline]
    pub fn lookahead(t: Time, tau: Time) -> Self {
        Self { start: t, end: t.saturating_add(tau) }
    }

    /// Inclusive left endpoint.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Inclusive right endpoint.
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// Number of discrete instants in the window.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize + 1
    }

    /// Windows are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether instant `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` is fully inside `self`.
    #[inline]
    pub fn contains_window(&self, other: Window) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Intersection of two windows, or `None` if disjoint.
    #[inline]
    pub fn intersect(&self, other: Window) -> Option<Window> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Window { start, end })
    }

    /// Restricts the window to a dataset of `n` records, or `None` if the
    /// window lies entirely past the end.
    #[inline]
    pub fn clamp_to(&self, n: usize) -> Window {
        debug_assert!(n > 0 && (self.start as usize) < n, "window outside dataset");
        Window { start: self.start, end: self.end.min((n - 1) as Time) }
    }

    /// Iterates the instants in the window.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Time> {
        self.start..=self.end
    }

    /// Splits the window into consecutive `len`-sized chunks; the final chunk
    /// may be shorter. This is the τ-length partition used by S-Hop
    /// (Algorithm 3, line 2) and by tumbling-window queries.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn chunks(&self, len: Time) -> Vec<Window> {
        assert!(len > 0, "chunk length must be positive");
        let mut out = Vec::with_capacity(self.len() / len as usize + 1);
        let mut lo = self.start;
        loop {
            let hi = lo.saturating_add(len - 1).min(self.end);
            out.push(Window { start: lo, end: hi });
            if hi == self.end {
                break;
            }
            lo = hi + 1;
        }
        out
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// How the durability window of length τ is positioned relative to a
/// record's arrival time.
///
/// The paper stipulates only that the anchoring is *consistent* across
/// records; both media-style variants are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Anchor {
    /// Window ends at the record: `[p.t − τ, p.t]` ("best in the past τ").
    #[default]
    LookBack,
    /// Window starts at the record: `[p.t, p.t + τ]` ("unbeaten for τ").
    LookAhead,
}

impl Anchor {
    /// The durability window for a record arriving at `t`.
    #[inline]
    pub fn window(&self, t: Time, tau: Time) -> Window {
        match self {
            Anchor::LookBack => Window::lookback(t, tau),
            Anchor::LookAhead => Window::lookahead(t, tau),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookback_clamps_at_zero() {
        let w = Window::lookback(3, 10);
        assert_eq!((w.start(), w.end()), (0, 3));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn lookahead_extends_forward() {
        let w = Window::lookahead(3, 2);
        assert_eq!((w.start(), w.end()), (3, 5));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_panics() {
        Window::new(5, 4);
    }

    #[test]
    fn containment_and_intersection() {
        let a = Window::new(2, 8);
        let b = Window::new(4, 6);
        assert!(a.contains_window(b));
        assert!(!b.contains_window(a));
        assert_eq!(a.intersect(Window::new(7, 12)), Some(Window::new(7, 8)));
        assert_eq!(a.intersect(Window::new(9, 12)), None);
        assert!(a.contains(2) && a.contains(8) && !a.contains(9));
    }

    #[test]
    fn chunks_partition_exactly() {
        let w = Window::new(0, 9);
        let parts = w.chunks(4);
        assert_eq!(parts, vec![Window::new(0, 3), Window::new(4, 7), Window::new(8, 9)]);
        let total: usize = parts.iter().map(Window::len).sum();
        assert_eq!(total, w.len());
    }

    #[test]
    fn chunks_cover_single_instant() {
        let w = Window::new(5, 5);
        assert_eq!(w.chunks(3), vec![Window::new(5, 5)]);
    }

    #[test]
    fn anchor_windows() {
        assert_eq!(Anchor::LookBack.window(10, 4), Window::new(6, 10));
        assert_eq!(Anchor::LookAhead.window(10, 4), Window::new(10, 14));
    }
}
