//! CSV import/export for datasets.
//!
//! Instant-stamped data usually arrives as CSV (box scores, connection logs,
//! sensor dumps). This module reads and writes a minimal dialect — an
//! optional header row, comma-separated numeric columns, rows in arrival
//! order — without external dependencies. An optional leading `t` column
//! carries wall-clock timestamps; query semantics always use row order.

use crate::Dataset;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// 0-based column index of the offending cell.
        column: usize,
        /// The raw cell contents.
        cell: String,
    },
    /// A row's arity differs from the first row's.
    Arity {
        /// 1-based line number of the offending row.
        line: usize,
        /// Column count established by the first row.
        expected: usize,
        /// Column count actually found.
        got: usize,
    },
    /// The input contains no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, column, cell } => {
                write!(f, "line {line}, column {column}: cannot parse {cell:?} as a number")
            }
            CsvError::Arity { line, expected, got } => {
                write!(f, "line {line}: expected {expected} columns, got {got}")
            }
            CsvError::Empty => write!(f, "no data rows in input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Result of a CSV import: the dataset plus column names (when a header was
/// present).
#[derive(Debug)]
pub struct CsvImport {
    /// The imported dataset, rows in file order.
    pub dataset: Dataset,
    /// Column names from the header row, if one was detected.
    pub columns: Option<Vec<String>>,
}

/// Reads a dataset from CSV text.
///
/// A first row whose cells do not all parse as numbers is treated as a
/// header. A leading column named `t` (case-insensitive, header required) is
/// stored as wall-clock timestamps rather than as an attribute.
pub fn read_csv<R: Read>(reader: R) -> Result<CsvImport, CsvError> {
    let reader = BufReader::new(reader);
    let mut dataset: Option<Dataset> = None;
    let mut columns: Option<Vec<String>> = None;
    let mut time_column = false;
    let mut expected = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if dataset.is_none() && columns.is_none() {
            // First contentful row: header iff any cell is non-numeric.
            if cells.iter().any(|c| c.parse::<f64>().is_err()) {
                time_column = cells.first().is_some_and(|c| c.eq_ignore_ascii_case("t"));
                let names: Vec<String> = if time_column {
                    cells[1..].iter().map(|s| s.to_string()).collect()
                } else {
                    cells.iter().map(|s| s.to_string()).collect()
                };
                expected = cells.len();
                columns = Some(names);
                continue;
            }
        }
        if dataset.is_none() {
            if columns.is_none() {
                expected = cells.len();
            }
            let dim = expected - usize::from(time_column);
            if dim == 0 {
                return Err(CsvError::Arity { line: lineno + 1, expected: 2, got: 1 });
            }
            dataset = Some(Dataset::new(dim));
        }
        if cells.len() != expected {
            return Err(CsvError::Arity { line: lineno + 1, expected, got: cells.len() });
        }
        let parse = |idx: usize| -> Result<f64, CsvError> {
            cells[idx].parse::<f64>().map_err(|_| CsvError::Parse {
                line: lineno + 1,
                column: idx + 1,
                cell: cells[idx].to_string(),
            })
        };
        let ds = dataset.as_mut().expect("initialized above");
        if time_column {
            let wall = parse(0)? as i64;
            let attrs: Vec<f64> = (1..expected).map(parse).collect::<Result<_, _>>()?;
            ds.push_with_wall_clock(&attrs, wall);
        } else {
            let attrs: Vec<f64> = (0..expected).map(parse).collect::<Result<_, _>>()?;
            ds.push(&attrs);
        }
    }
    let dataset = dataset.ok_or(CsvError::Empty)?;
    Ok(CsvImport { dataset, columns })
}

/// Reads a dataset from a CSV file.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<CsvImport, CsvError> {
    read_csv(std::fs::File::open(path)?)
}

/// Writes a dataset as CSV, with an optional header.
pub fn write_csv<W: Write>(
    writer: &mut W,
    ds: &Dataset,
    columns: Option<&[&str]>,
) -> std::io::Result<()> {
    let mut buf = String::new();
    if let Some(cols) = columns {
        assert_eq!(cols.len(), ds.dim(), "one column name per attribute");
        buf.push_str(&cols.join(","));
        buf.push('\n');
    }
    for r in ds.iter() {
        for (j, x) in r.attrs.iter().enumerate() {
            if j > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{x}");
        }
        buf.push('\n');
        if buf.len() > 1 << 20 {
            writer.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    writer.write_all(buf.as_bytes())
}

/// Writes a dataset to a CSV file.
pub fn write_csv_file<P: AsRef<Path>>(
    path: P,
    ds: &Dataset,
    columns: Option<&[&str]>,
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_csv(&mut f, ds, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_header() {
        let ds = Dataset::from_rows(2, [[1.5, 2.0], [3.0, -4.25]]);
        let mut out = Vec::new();
        write_csv(&mut out, &ds, Some(&["points", "assists"])).expect("write");
        let imported = read_csv(&out[..]).expect("read");
        assert_eq!(
            imported.columns.as_deref(),
            Some(&["points".to_string(), "assists".to_string()][..])
        );
        assert_eq!(imported.dataset.raw_attrs(), ds.raw_attrs());
    }

    #[test]
    fn headerless_numeric_input() {
        let text = "1,2\n3,4\n5,6\n";
        let imp = read_csv(text.as_bytes()).expect("read");
        assert!(imp.columns.is_none());
        assert_eq!(imp.dataset.len(), 3);
        assert_eq!(imp.dataset.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn time_column_becomes_wall_clock() {
        let text = "t,score\n1000,5\n2000,7\n";
        let imp = read_csv(text.as_bytes()).expect("read");
        assert_eq!(imp.dataset.dim(), 1);
        assert_eq!(imp.dataset.wall_clock(0), Some(1000));
        assert_eq!(imp.dataset.wall_clock(1), Some(2000));
        assert_eq!(imp.dataset.row(1), &[7.0]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# generated\n\n1,2\n\n3,4\n";
        let imp = read_csv(text.as_bytes()).expect("read");
        assert_eq!(imp.dataset.len(), 2);
    }

    #[test]
    fn parse_error_reports_location() {
        let text = "a,b\n1,2\n3,oops\n";
        match read_csv(text.as_bytes()) {
            Err(CsvError::Parse { line, column, cell }) => {
                assert_eq!((line, column), (3, 2));
                assert_eq!(cell, "oops");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn arity_error_reports_line() {
        let text = "1,2\n3\n";
        match read_csv(text.as_bytes()) {
            Err(CsvError::Arity { line, expected, got }) => {
                assert_eq!((line, expected, got), (2, 2, 1));
            }
            other => panic!("expected arity error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(read_csv("".as_bytes()), Err(CsvError::Empty)));
        assert!(matches!(read_csv("# only comments\n".as_bytes()), Err(CsvError::Empty)));
    }
}
