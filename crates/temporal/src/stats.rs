//! Dataset summary statistics (used by the Fig. 7 distribution report and
//! for workload validation).

use crate::Dataset;

/// Per-attribute summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Summary statistics for a whole dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of records.
    pub n: usize,
    /// One [`ColumnStats`] per attribute.
    pub columns: Vec<ColumnStats>,
    /// Mean Euclidean norm of the attribute vectors (distinguishes IND from
    /// ANTI data at a glance: ANTI concentrates on an annulus).
    pub mean_norm: f64,
    /// Standard deviation of the Euclidean norm.
    pub std_norm: f64,
}

impl DatasetStats {
    /// Computes summary statistics over the dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn compute(ds: &Dataset) -> Self {
        assert!(!ds.is_empty(), "cannot summarize an empty dataset");
        let n = ds.len();
        let d = ds.dim();
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        let mut sum = vec![0.0; d];
        let mut sumsq = vec![0.0; d];
        let mut norm_sum = 0.0;
        let mut norm_sumsq = 0.0;
        for r in ds.iter() {
            let mut sq = 0.0;
            for (j, &x) in r.attrs.iter().enumerate() {
                min[j] = min[j].min(x);
                max[j] = max[j].max(x);
                sum[j] += x;
                sumsq[j] += x * x;
                sq += x * x;
            }
            let norm = sq.sqrt();
            norm_sum += norm;
            norm_sumsq += sq;
        }
        let columns = (0..d)
            .map(|j| {
                let mean = sum[j] / n as f64;
                let var = (sumsq[j] / n as f64 - mean * mean).max(0.0);
                ColumnStats { min: min[j], max: max[j], mean, std: var.sqrt() }
            })
            .collect();
        let mean_norm = norm_sum / n as f64;
        let var_norm = (norm_sumsq / n as f64 - mean_norm * mean_norm).max(0.0);
        Self { n, columns, mean_norm, std_norm: var_norm.sqrt() }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "n = {}, |p| = {:.4} ± {:.4}", self.n, self.mean_norm, self.std_norm)?;
        for (j, c) in self.columns.iter().enumerate() {
            writeln!(
                f,
                "  x{j}: min {:.4}  max {:.4}  mean {:.4}  std {:.4}",
                c.min, c.max, c.mean, c.std
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_data() {
        let ds = Dataset::from_rows(2, [[0.0, 2.0], [4.0, 2.0]]);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.n, 2);
        assert_eq!(s.columns[0].min, 0.0);
        assert_eq!(s.columns[0].max, 4.0);
        assert_eq!(s.columns[0].mean, 2.0);
        assert_eq!(s.columns[0].std, 2.0);
        assert_eq!(s.columns[1].std, 0.0);
        let expected_norm = (2.0 + (16.0f64 + 4.0).sqrt()) / 2.0;
        assert!((s.mean_norm - expected_norm).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn stats_reject_empty() {
        DatasetStats::compute(&Dataset::new(1));
    }
}
