//! Temporal data model for durable top-k queries.
//!
//! This crate provides the data model from Section II of *"Durable Top-K
//! Instant-Stamped Temporal Records with User-Specified Scoring Functions"*
//! (ICDE 2021): a dataset `P` of `n` records, each with `d` real-valued
//! attributes and a distinct arrival instant, organized in increasing order
//! of arrival time over the discrete time domain `T = {0, 1, …, n-1}`.
//!
//! The central types are:
//!
//! * [`Dataset`] — an immutable-by-default, append-friendly columnless
//!   (row-major) store of records ordered by arrival time. A record's
//!   *position* in the dataset **is** its discrete arrival time, exactly as
//!   the paper sets `p_i.t = i`.
//! * [`Window`] — an inclusive discrete time window `[start, end] ⊆ T`.
//! * [`Anchor`] — how a durability window is positioned relative to a
//!   record's arrival time (look-back `[p.t − τ, p.t]` or look-ahead
//!   `[p.t, p.t + τ]`).
//! * [`Scorer`] — the user-specified scoring function interface `f : R^d → R`,
//!   with the three concrete preference-function families from the paper
//!   (linear, linear combination of monotone transforms, cosine).

pub mod dataset;
pub mod io;
pub mod scoring;
pub mod stats;
pub mod window;

pub use dataset::{Dataset, RecordId, RecordRef};
pub use io::{read_csv, read_csv_file, write_csv, write_csv_file, CsvError, CsvImport};
pub use scoring::{
    CosineScorer, LinearScorer, MonotoneCombinationScorer, MonotoneTransform, Scorer,
    SingleAttributeScorer,
};
pub use stats::{ColumnStats, DatasetStats};
pub use window::{Anchor, Window};

/// Discrete time instant: the position of a record in arrival order.
///
/// The paper's time domain is `T = {1, …, n}`; we use zero-based positions
/// `{0, …, n-1}` throughout, which only shifts notation.
pub type Time = u32;
