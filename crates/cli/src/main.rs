//! `durable-topk` — command-line durable top-k queries over CSV data.
//!
//! ```text
//! durable-topk generate ind --n 100000 --dim 2 --out data.csv
//! durable-topk stats data.csv
//! durable-topk topk data.csv --k 5 --window 1000:2000 --weights 0.7,0.3
//! durable-topk query data.csv --k 10 --tau 5000 --interval 50000:99999 \
//!               --weights 0.7,0.3 --alg shop --durations
//! ```

mod args;

use args::{parse_algorithms, parse_range, parse_stream, parse_threads, parse_weights, Args};
use durable_topk::{
    Algorithm, Anchor, BatchExecutor, DurableQuery, DurableTopKEngine, LinearScorer, ShardedEngine,
    Window,
};
use durable_topk_temporal::{read_csv_file, write_csv_file, Dataset, DatasetStats};
use durable_topk_workloads as workloads;
use std::process::ExitCode;

const USAGE: &str = "\
durable-topk — durable top-k queries over instant-stamped CSV data

USAGE:
  durable-topk generate <ind|anti|nba|network> --n N [--dim D] [--seed S] --out FILE
  durable-topk stats    FILE
  durable-topk topk     FILE --k K --window A:B [--weights W1,W2,..]
  durable-topk query    FILE --k K --tau T [--interval A:B] [--weights ..]
                             [--alg tbase|thop|sbase|sband|shop|shop1|all]
                             [--threads N] [--lookahead] [--durations] [--limit N]
                             [--stream [--every M]]

Records are rows in arrival order; an optional header row names columns and
an optional leading `t` column holds wall-clock stamps. Weights default to
uniform. `query` defaults to --alg shop over the whole history; --alg all
sweeps every algorithm through the parallel batch executor (--threads 0 =
use all cores). --stream replays the file into a live sharded engine,
interleaving appends with a progress query every M arrivals (default: a
tenth of the file); incompatible with --alg all, --lookahead, --durations,
and --threads.";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command.as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "topk" => topk(&args),
        "query" => query(&args),
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &Args) -> Result<Dataset, String> {
    let path = args.positional.first().ok_or_else(|| "missing input file".to_string())?;
    let imp = read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(cols) = &imp.columns {
        eprintln!(
            "loaded {} records x {} attributes ({})",
            imp.dataset.len(),
            imp.dataset.dim(),
            cols.join(", ")
        );
    } else {
        eprintln!("loaded {} records x {} attributes", imp.dataset.len(), imp.dataset.dim());
    }
    Ok(imp.dataset)
}

fn scorer_for(args: &Args, dim: usize) -> Result<LinearScorer, String> {
    match args.options.get("weights") {
        None => Ok(LinearScorer::uniform(dim)),
        Some(w) => {
            let weights = parse_weights(w)?;
            if weights.len() != dim {
                return Err(format!(
                    "--weights has {} entries but the data has {dim} attributes",
                    weights.len()
                ));
            }
            Ok(LinearScorer::new(weights))
        }
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let family = args
        .positional
        .first()
        .ok_or_else(|| "generate needs a family: ind|anti|nba|network".to_string())?;
    let n: usize = args.parse_or("n", 100_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.require("out")?;
    let (ds, header): (Dataset, Option<Vec<&str>>) = match family.as_str() {
        "ind" => {
            let dim: usize = args.parse_or("dim", 2)?;
            (workloads::ind(n, dim, seed), None)
        }
        "anti" => (workloads::anti(n, seed), None),
        "nba" => (workloads::nba_like(n, seed), Some(workloads::NBA_ATTRIBUTES.to_vec())),
        "network" => (workloads::network_like(n, seed), None),
        other => return Err(format!("unknown family {other:?}")),
    };
    write_csv_file(out, &ds, header.as_deref()).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {} records x {} attributes to {out}", ds.len(), ds.dim());
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    print!("{}", DatasetStats::compute(&ds));
    Ok(())
}

/// Parses `--flag` as a positive integer; the engine asserts positivity, so
/// catch it here with a proper error instead of a panic.
fn parse_positive<T>(args: &Args, key: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr + PartialOrd + Default,
{
    let v: T = args.parse_or(key, default)?;
    if v <= T::default() {
        return Err(format!("--{key} must be at least 1"));
    }
    Ok(v)
}

fn topk(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    let k: usize = parse_positive(args, "k", 10)?;
    let (a, b) = parse_range(args.require("window")?)?;
    let scorer = scorer_for(args, ds.dim())?;
    let engine = DurableTopKEngine::new(ds);
    let result = engine.oracle().tree().top_k(engine.dataset(), &scorer, k, Window::new(a, b));
    println!("top-{k} of [{a}, {b}] (ties of the k-th score included):");
    for (id, score) in result.items {
        println!("  t={id}  score={score:.6}  attrs={:?}", engine.dataset().row(id));
    }
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    let n = ds.len() as u32;
    let k: usize = parse_positive(args, "k", 10)?;
    let tau: u32 = parse_positive(args, "tau", (n / 10).max(1))?;
    let interval = match args.options.get("interval") {
        Some(r) => {
            let (a, b) = parse_range(r)?;
            Window::new(a, b.min(n - 1))
        }
        None => Window::new(0, n - 1),
    };
    let algs = parse_algorithms(args.get_or("alg", "shop"))?;
    let threads = parse_threads(args)?;
    let stream = parse_stream(args, &algs)?;
    let scorer = scorer_for(args, ds.dim())?;
    let limit: usize = args.parse_or("limit", 50)?;
    let lookahead = args.has("lookahead");
    if lookahead && algs.len() > 1 {
        return Err("--alg all cannot be combined with --lookahead".to_string());
    }
    let q = DurableQuery { k, tau, interval };
    if let Some(mode) = stream {
        return stream_replay(&ds, algs[0], &scorer, &q, mode, limit);
    }

    let mut engine = DurableTopKEngine::new(ds);
    if algs.contains(&Algorithm::SBand) {
        engine = engine.with_skyband_index(k);
    }
    if lookahead {
        engine = engine.with_lookahead();
    }

    if algs.len() > 1 {
        return sweep(&engine, &algs, &scorer, &q, threads);
    }
    let alg = algs[0];
    let anchor = if lookahead { Anchor::LookAhead } else { Anchor::LookBack };
    let started = std::time::Instant::now();
    let result = if lookahead {
        engine.query_anchored(alg, &scorer, &q, anchor)
    } else {
        // Dynamic dispatch shim: the CLI picks the scorer at run time.
        engine.query_dyn(alg, &scorer, &q)
    };
    let elapsed = started.elapsed();

    println!(
        "{} durable records (k={k}, tau={tau}, I={interval}, {}) in {:.2?} — {} top-k queries{}",
        result.records.len(),
        if lookahead { "look-ahead" } else { "look-back" },
        elapsed,
        result.stats.topk_queries(),
        if result.stats.fallback { " (S-Band unavailable; served by S-Hop)" } else { "" },
    );
    for &id in result.records.iter().take(limit) {
        if args.has("durations") {
            let (dur, _) = engine.max_duration(&scorer, id, k);
            println!(
                "  t={id}  score={:.6}  max-duration={dur}  attrs={:?}",
                durable_topk::Scorer::score(&scorer, engine.dataset().row(id)),
                engine.dataset().row(id)
            );
        } else {
            println!(
                "  t={id}  score={:.6}  attrs={:?}",
                durable_topk::Scorer::score(&scorer, engine.dataset().row(id)),
                engine.dataset().row(id)
            );
        }
    }
    if result.records.len() > limit {
        println!("  … {} more (raise --limit)", result.records.len() - limit);
    }
    Ok(())
}

/// Replays the dataset record by record into a live [`ShardedEngine`]
/// (`--stream`), interleaving appends with progress queries and finishing
/// with the full query — the ingestion-time view of the same answer the
/// offline path computes at rest.
fn stream_replay(
    ds: &durable_topk::Dataset,
    alg: Algorithm,
    scorer: &LinearScorer,
    q: &DurableQuery,
    mode: args::StreamMode,
    limit: usize,
) -> Result<(), String> {
    let n = ds.len();
    let every = mode.every.unwrap_or_else(|| (n / 10).max(1));
    // A few durability windows per shard keeps sealing amortized while
    // bounding per-shard index size.
    let span = (q.tau as usize * 4).clamp(1_024, 262_144);
    let mut engine = ShardedEngine::new_live(ds.dim(), span, q.tau);
    if alg == Algorithm::SBand {
        engine = engine.with_skyband_bound(q.k);
    }

    let started = std::time::Instant::now();
    for id in 0..n as u32 {
        engine.append(ds.row(id));
        let ingested = id as usize + 1;
        if ingested % every == 0 && ingested < n && (q.interval.start() as usize) < ingested {
            let prefix = DurableQuery {
                k: q.k,
                tau: q.tau,
                interval: Window::new(q.interval.start(), q.interval.end().min(id)),
            };
            let r = engine.query(alg, scorer, &prefix);
            println!(
                "  t={ingested:>9}: {:>6} durable so far ({} sealed shards, {} top-k queries)",
                r.records.len(),
                engine.sealed_shards(),
                r.stats.topk_queries(),
            );
        }
    }
    let ingest = started.elapsed();
    println!(
        "ingested {n} records in {ingest:.2?} ({:.0} appends/s) across {} shards",
        n as f64 / ingest.as_secs_f64().max(1e-9),
        engine.shard_count(),
    );

    let started = std::time::Instant::now();
    let result = engine.query(alg, scorer, q);
    let elapsed = started.elapsed();
    println!(
        "{} durable records (k={}, tau={}, I={}, {alg}) in {elapsed:.2?} — {} top-k queries{}",
        result.records.len(),
        q.k,
        q.tau,
        q.interval,
        result.stats.topk_queries(),
        if result.stats.fallback {
            " (S-Band unavailable on the head; S-Hop served it)"
        } else {
            ""
        },
    );
    for &id in result.records.iter().take(limit) {
        println!(
            "  t={id}  score={:.6}  attrs={:?}",
            durable_topk::Scorer::score(scorer, ds.row(id)),
            ds.row(id)
        );
    }
    if result.records.len() > limit {
        println!("  … {} more (raise --limit)", result.records.len() - limit);
    }
    Ok(())
}

/// Runs the same query under every algorithm through the batch executor and
/// prints a comparison table (`--alg all`).
fn sweep(
    engine: &DurableTopKEngine,
    algs: &[Algorithm],
    scorer: &LinearScorer,
    q: &DurableQuery,
    threads: usize,
) -> Result<(), String> {
    let executor = BatchExecutor::new(threads);
    let started = std::time::Instant::now();
    let results = executor.run_sweep(engine, algs, scorer, q);
    let elapsed = started.elapsed();
    println!(
        "{} durable records (k={}, tau={}, I={}) — {} algorithms on {} threads in {:.2?}",
        results.first().map_or(0, |r| r.records.len()),
        q.k,
        q.tau,
        q.interval,
        algs.len(),
        executor.resolved_threads(algs.len()),
        elapsed,
    );
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>9}",
        "alg", "topk-queries", "checks", "candidates", "fallback"
    );
    for (alg, r) in algs.iter().zip(&results) {
        println!(
            "{:<8} {:>14} {:>12} {:>12} {:>9}",
            alg.to_string(),
            r.stats.topk_queries(),
            r.stats.durability_checks,
            r.stats.candidates,
            if r.stats.fallback { "yes" } else { "no" },
        );
        if r.records != results[0].records {
            return Err(format!("answer mismatch: {alg} disagrees with {}", algs[0]));
        }
    }
    Ok(())
}
