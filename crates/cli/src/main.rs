//! `durable-topk` — command-line durable top-k queries over CSV data.
//!
//! ```text
//! durable-topk generate ind --n 100000 --dim 2 --out data.csv
//! durable-topk stats data.csv
//! durable-topk topk data.csv --k 5 --window 1000:2000 --weights 0.7,0.3
//! durable-topk query data.csv --k 10 --tau 5000 --interval 50000:99999 \
//!               --weights 0.7,0.3 --alg shop --durations
//! ```

mod args;

use args::{
    parse_algorithms, parse_nodes, parse_range, parse_result_cache, parse_serve, parse_serve_node,
    parse_storage, parse_stream, parse_threads, parse_weights, Args, ServeMode, StorageChoice,
};
use durable_topk::{
    Algorithm, Anchor, Backpressure, BatchExecutor, DurableQuery, DurableTopKEngine, EngineConfig,
    FallbackReason, LinearScorer, PagedStorage, QueryStats, ScorerSpec, ServeEngine, ServeRequest,
    Window,
};
use durable_topk_net::{
    Coordinator, NetError, Node, NodeIdentity, NodeServer, NodeServerOptions, RemoteNode,
    RemoteOptions,
};
use durable_topk_temporal::{read_csv_file, write_csv_file, Dataset, DatasetStats};
use durable_topk_workloads as workloads;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

const USAGE: &str = "\
durable-topk — durable top-k queries over instant-stamped CSV data

USAGE:
  durable-topk generate <ind|anti|nba|network> --n N [--dim D] [--seed S] --out FILE
  durable-topk stats    FILE
  durable-topk topk     FILE --k K --window A:B [--weights W1,W2,..]
  durable-topk query    FILE --k K --tau T [--interval A:B] [--weights ..]
                             [--alg tbase|thop|sbase|sband|shop|shop1|all]
                             [--threads N] [--lookahead] [--durations] [--limit N]
                             [--stream [--every M]]
                             [--storage memory|paged] [--spill-after N]
                             [--result-cache BYTES|off]
  durable-topk serve    FILE --k K --tau T [--weights ..] [--alg ..]
                             [--clients C] [--requests R] [--queue-cap Q]
                             [--reject] [--ingest M] [--subscribe S]
                             [--storage memory|paged] [--spill-after N]
                             [--result-cache BYTES|off]
                             [--nodes HOST:PORT,HOST:PORT,..]
  durable-topk serve-node FILE --listen HOST:PORT --range A:B
                             [--k K] [--tau T]

Records are rows in arrival order; an optional header row names columns and
an optional leading `t` column holds wall-clock stamps. Weights default to
uniform. `query` defaults to --alg shop over the whole history; --alg all
sweeps every algorithm through the parallel batch executor (--threads 0 =
use all cores). --stream replays the file into a live sharded engine,
interleaving appends with a progress query every M arrivals (default: a
tenth of the file); incompatible with --alg all, --lookahead, --durations,
and --threads. `serve` replays a mixed workload through the bounded
request queue on the persistent worker pool: C client threads submit R
requests total (parameters varied around --k/--tau, algorithms cycled)
while the last M records (default: a tenth of the file) are ingested
live; --reject sheds load when the queue is full instead of blocking, and
a sample of the served answers is re-checked against the engine before
the summary prints throughput and p50/p99 latency. --subscribe registers
S standing queries before the client storm; the live appends keep their
materialized answer sets current incrementally and each is verified
against a full recompute at the end. --storage selects the
sealed-shard backend for the live modes (--stream and serve): `memory`
(default) keeps every sealed chunk resident; `paged` spills chunks beyond
the newest --spill-after (default 4) to pager-backed pages in a temporary
file, reloading them transparently — and bit-identically — at query
time. --result-cache puts a byte-budgeted memoization cache in front of
the sealed shards of the live modes: repeated full-range probes of an
immutable tail replay their answer without touching storage (default
33554432 bytes = 32 MiB; `off` disables it). `serve-node` hosts one
contiguous slice [A, B] of the file behind the binary wire protocol on
--listen (loading tau extra records of left context so every durability
window it owns is exact); `serve --nodes` drives a query-only client
storm through the scatter-gather coordinator over those nodes instead of
an in-process queue, spot-checks sampled answers against a local
reference engine, and prints per-node request counts and latency
percentiles. Every node and the coordinator must agree on --k/--tau.";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command.as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "topk" => topk(&args),
        "query" => query(&args),
        "serve" => serve(&args),
        "serve-node" => serve_node(&args),
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &Args) -> Result<Dataset, String> {
    let path = args.positional.first().ok_or_else(|| "missing input file".to_string())?;
    let imp = read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(cols) = &imp.columns {
        eprintln!(
            "loaded {} records x {} attributes ({})",
            imp.dataset.len(),
            imp.dataset.dim(),
            cols.join(", ")
        );
    } else {
        eprintln!("loaded {} records x {} attributes", imp.dataset.len(), imp.dataset.dim());
    }
    Ok(imp.dataset)
}

/// Rejects an empty input file with a proper error (nonzero exit) instead
/// of letting an engine build abort the process.
fn non_empty(ds: &Dataset, path_hint: &str) -> Result<(), String> {
    if ds.is_empty() {
        return Err(format!("{path_hint}: the input holds no records; nothing to query"));
    }
    Ok(())
}

/// Renders a query's fallback state as a summary-line suffix.
fn fallback_note(stats: &QueryStats) -> String {
    match stats.fallback {
        None => String::new(),
        Some(reason) => format!(" (fallback: {reason})"),
    }
}

/// Renders a query's fallback state as a sweep-table cell.
fn fallback_cell(stats: &QueryStats) -> &'static str {
    match stats.fallback {
        None => "no",
        Some(FallbackReason::MissingSkybandIndex) => "missing-index",
        Some(FallbackReason::SkybandBoundExceeded) => "k-bound",
        Some(FallbackReason::NonMonotoneScorer) => "non-monotone",
        Some(FallbackReason::TauBeyondOverlap) => "tau-overlap",
    }
}

/// Translates the CLI's engine flags into one [`EngineConfig`] for the
/// live modes (`--stream` replay, `serve`, `serve-node`).
fn engine_config(
    dim: usize,
    span: usize,
    tau: u32,
    skyband: Option<usize>,
    storage: StorageChoice,
    result_cache: Option<usize>,
) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::new(dim, span, tau);
    if let Some(k_max) = skyband {
        cfg = cfg.skyband_bound(k_max);
    }
    if let StorageChoice::Paged { spill_after } = storage {
        let backend = PagedStorage::with_temp_file(spill_after)
            .map_err(|e| format!("--storage paged: {e}"))?;
        cfg = cfg.storage(std::sync::Arc::new(backend));
    }
    if let Some(bytes) = result_cache {
        cfg = cfg.result_cache(bytes);
    }
    Ok(cfg)
}

fn scorer_for(args: &Args, dim: usize) -> Result<LinearScorer, String> {
    match args.options.get("weights") {
        None => Ok(LinearScorer::uniform(dim)),
        Some(w) => {
            let weights = parse_weights(w)?;
            if weights.len() != dim {
                return Err(format!(
                    "--weights has {} entries but the data has {dim} attributes",
                    weights.len()
                ));
            }
            Ok(LinearScorer::new(weights))
        }
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let family = args
        .positional
        .first()
        .ok_or_else(|| "generate needs a family: ind|anti|nba|network".to_string())?;
    let n: usize = args.parse_or("n", 100_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.require("out")?;
    let (ds, header): (Dataset, Option<Vec<&str>>) = match family.as_str() {
        "ind" => {
            let dim: usize = args.parse_or("dim", 2)?;
            (workloads::ind(n, dim, seed), None)
        }
        "anti" => (workloads::anti(n, seed), None),
        "nba" => (workloads::nba_like(n, seed), Some(workloads::NBA_ATTRIBUTES.to_vec())),
        "network" => (workloads::network_like(n, seed), None),
        other => return Err(format!("unknown family {other:?}")),
    };
    write_csv_file(out, &ds, header.as_deref()).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {} records x {} attributes to {out}", ds.len(), ds.dim());
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    print!("{}", DatasetStats::compute(&ds));
    Ok(())
}

/// Parses `--flag` as a positive integer; the engine asserts positivity, so
/// catch it here with a proper error instead of a panic.
fn parse_positive<T>(args: &Args, key: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr + PartialOrd + Default,
{
    let v: T = args.parse_or(key, default)?;
    if v <= T::default() {
        return Err(format!("--{key} must be at least 1"));
    }
    Ok(v)
}

fn topk(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    non_empty(&ds, args.positional.first().map_or("input", String::as_str))?;
    let k: usize = parse_positive(args, "k", 10)?;
    let (a, b) = parse_range(args.require("window")?)?;
    let scorer = scorer_for(args, ds.dim())?;
    let engine = DurableTopKEngine::new(ds);
    let result = engine.oracle().tree().top_k(engine.dataset(), &scorer, k, Window::new(a, b));
    println!("top-{k} of [{a}, {b}] (ties of the k-th score included):");
    for (id, score) in result.items {
        println!("  t={id}  score={score:.6}  attrs={:?}", engine.dataset().row(id));
    }
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    non_empty(&ds, args.positional.first().map_or("input", String::as_str))?;
    let n = ds.len() as u32;
    let k: usize = parse_positive(args, "k", 10)?;
    let tau: u32 = parse_positive(args, "tau", (n / 10).max(1))?;
    let interval = match args.options.get("interval") {
        Some(r) => {
            let (a, b) = parse_range(r)?;
            Window::new(a, b.min(n - 1))
        }
        None => Window::new(0, n - 1),
    };
    let algs = parse_algorithms(args.get_or("alg", "shop"))?;
    let threads = parse_threads(args)?;
    let stream = parse_stream(args, &algs)?;
    let storage = parse_storage(args)?;
    let result_cache = parse_result_cache(args)?;
    if stream.is_none()
        && (args.options.contains_key("storage") || args.options.contains_key("spill-after"))
    {
        return Err(
            "--storage/--spill-after select the live engine's backend; add --stream".to_string()
        );
    }
    if stream.is_none() && args.options.contains_key("result-cache") {
        return Err("--result-cache configures the live engine; add --stream".to_string());
    }
    let scorer = scorer_for(args, ds.dim())?;
    let limit: usize = args.parse_or("limit", 50)?;
    let lookahead = args.has("lookahead");
    if lookahead && algs.len() > 1 {
        return Err("--alg all cannot be combined with --lookahead".to_string());
    }
    let q = DurableQuery { k, tau, interval };
    if let Some(mode) = stream {
        return stream_replay(&ds, algs[0], &scorer, &q, mode, storage, result_cache, limit);
    }

    let mut engine = DurableTopKEngine::new(ds);
    if algs.contains(&Algorithm::SBand) {
        engine = engine.with_skyband_index(k);
    }
    if lookahead {
        engine = engine.with_lookahead();
    }

    if algs.len() > 1 {
        return sweep(&engine, &algs, &scorer, &q, threads);
    }
    let alg = algs[0];
    let anchor = if lookahead { Anchor::LookAhead } else { Anchor::LookBack };
    let started = std::time::Instant::now();
    let result = if lookahead {
        engine.query_anchored(alg, &scorer, &q, anchor)
    } else {
        engine.query(alg, &scorer, &q)
    };
    let elapsed = started.elapsed();

    println!(
        "{} durable records (k={k}, tau={tau}, I={interval}, {}) in {:.2?} — {} top-k queries{}",
        result.records.len(),
        if lookahead { "look-ahead" } else { "look-back" },
        elapsed,
        result.stats.topk_queries(),
        fallback_note(&result.stats),
    );
    for &id in result.records.iter().take(limit) {
        if args.has("durations") {
            let (dur, _) = engine.max_duration(&scorer, id, k);
            println!(
                "  t={id}  score={:.6}  max-duration={dur}  attrs={:?}",
                durable_topk::Scorer::score(&scorer, engine.dataset().row(id)),
                engine.dataset().row(id)
            );
        } else {
            println!(
                "  t={id}  score={:.6}  attrs={:?}",
                durable_topk::Scorer::score(&scorer, engine.dataset().row(id)),
                engine.dataset().row(id)
            );
        }
    }
    if result.records.len() > limit {
        println!("  … {} more (raise --limit)", result.records.len() - limit);
    }
    Ok(())
}

/// Replays the dataset record by record into a live [`ShardedEngine`]
/// (`--stream`), interleaving appends with progress queries and finishing
/// with the full query — the ingestion-time view of the same answer the
/// offline path computes at rest.
#[allow(clippy::too_many_arguments)]
fn stream_replay(
    ds: &durable_topk::Dataset,
    alg: Algorithm,
    scorer: &LinearScorer,
    q: &DurableQuery,
    mode: args::StreamMode,
    storage: StorageChoice,
    result_cache: Option<usize>,
    limit: usize,
) -> Result<(), String> {
    let n = ds.len();
    let every = mode.every.unwrap_or_else(|| (n / 10).max(1));
    // A few durability windows per shard keeps sealing amortized while
    // bounding per-shard index size.
    let span = (q.tau as usize * 4).clamp(1_024, 262_144);
    let skyband = (alg == Algorithm::SBand).then_some(q.k);
    let mut engine = engine_config(ds.dim(), span, q.tau, skyband, storage, result_cache)?
        .build()
        .map_err(|e| e.to_string())?;

    let started = std::time::Instant::now();
    for id in 0..n as u32 {
        engine.append(ds.row(id));
        let ingested = id as usize + 1;
        if ingested % every == 0 && ingested < n && (q.interval.start() as usize) < ingested {
            let prefix = DurableQuery {
                k: q.k,
                tau: q.tau,
                interval: Window::new(q.interval.start(), q.interval.end().min(id)),
            };
            let r = engine.query(alg, scorer, &prefix);
            println!(
                "  t={ingested:>9}: {:>6} durable so far ({} sealed shards, {} top-k queries)",
                r.records.len(),
                engine.sealed_shards(),
                r.stats.topk_queries(),
            );
        }
    }
    let ingest = started.elapsed();
    println!(
        "ingested {n} records in {ingest:.2?} ({:.0} appends/s) across {} shards",
        n as f64 / ingest.as_secs_f64().max(1e-9),
        engine.shard_count(),
    );

    let started = std::time::Instant::now();
    let result = engine.query(alg, scorer, q);
    let elapsed = started.elapsed();
    if let StorageChoice::Paged { .. } = storage {
        let st = engine.storage().stats();
        println!(
            "storage: {} sealed chunks ({} resident, {} spilled), {} cold fetches, \
             {} cold page reads",
            st.chunks, st.resident_chunks, st.spilled_chunks, st.cold_fetches, st.cold_page_reads,
        );
    }
    if let Some(cache) = engine.result_cache() {
        let cs = cache.stats();
        println!(
            "result cache: cache-hits={} cache-misses={} cache-evictions={} cache-bytes={} \
             entries={}",
            cs.hits, cs.misses, cs.evictions, cs.resident_bytes, cs.entries,
        );
    }
    println!(
        "{} durable records (k={}, tau={}, I={}, {alg}) in {elapsed:.2?} — {} top-k queries{}",
        result.records.len(),
        q.k,
        q.tau,
        q.interval,
        result.stats.topk_queries(),
        fallback_note(&result.stats),
    );
    for &id in result.records.iter().take(limit) {
        println!(
            "  t={id}  score={:.6}  attrs={:?}",
            durable_topk::Scorer::score(scorer, ds.row(id)),
            ds.row(id)
        );
    }
    if result.records.len() > limit {
        println!("  … {} more (raise --limit)", result.records.len() - limit);
    }
    Ok(())
}

/// Latency record of one served request: time in the queue plus execution.
fn total_latency(queued: Duration, service: Duration) -> Duration {
    queued + service
}

/// The `p`-th percentile of a sorted latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replays a mixed workload through the bounded request queue (`serve`):
/// client threads submit durable top-k requests with varied parameters
/// while the tail of the file is appended live, exercising background
/// shard seals under load. A sample of the served answers is re-checked
/// against the quiesced engine before the summary prints.
fn serve(args: &Args) -> Result<(), String> {
    if let Some(nodes) = parse_nodes(args)? {
        return serve_cluster(args, &nodes);
    }
    let ds = load(args)?;
    non_empty(&ds, args.positional.first().map_or("input", String::as_str))?;
    let n = ds.len();
    let k: usize = parse_positive(args, "k", 10)?;
    let tau: u32 = parse_positive(args, "tau", ((n as u32) / 10).max(1))?;
    let algs = parse_algorithms(args.get_or("alg", "all"))?;
    let mode = parse_serve(args)?;
    let weights = match args.options.get("weights") {
        None => None,
        Some(w) => {
            let weights = parse_weights(w)?;
            if weights.len() != ds.dim() {
                return Err(format!(
                    "--weights has {} entries but the data has {} attributes",
                    weights.len(),
                    ds.dim()
                ));
            }
            Some(weights)
        }
    };
    let scorer = match &weights {
        None => LinearScorer::uniform(ds.dim()),
        Some(w) => LinearScorer::new(w.clone()),
    };
    let spec = match weights {
        None => ScorerSpec::Uniform,
        Some(w) => ScorerSpec::Linear(w),
    };

    // Withhold the tail for live ingestion; keep at least one record in
    // the base so the queue has something to serve from the first request.
    let ingest = mode.ingest.unwrap_or(n / 10).min(n - 1);
    let base = n - ingest;
    let span = (tau as usize * 4).clamp(1_024, 262_144);
    let skyband = algs.contains(&Algorithm::SBand).then_some(k);
    let mut engine = engine_config(
        ds.dim(),
        span,
        tau,
        skyband,
        parse_storage(args)?,
        parse_result_cache(args)?,
    )?
    .build()
    .map_err(|e| e.to_string())?;
    for id in 0..base {
        engine.append(ds.row(id as u32));
    }
    let backpressure = if mode.reject { Backpressure::Reject } else { Backpressure::Block };
    let serving = ServeEngine::new(engine, mode.queue_cap, backpressure);
    eprintln!(
        "serving {} base records, ingesting {ingest} live; {} clients x {} requests, \
         queue capacity {} ({})",
        base,
        mode.clients,
        mode.requests,
        mode.queue_cap,
        if mode.reject { "reject when full" } else { "block when full" },
    );

    // Standing queries: registered before the storm, kept current by the
    // live appends, verified against full recomputes at every shard seal
    // and re-checked against the quiesced engine at the end.
    let mut subs = Vec::new();
    for s in 0..mode.subscribe {
        let req = ServeRequest {
            alg: Algorithm::THop,
            query: DurableQuery {
                k: 1 + s % k,
                tau: 1 + (s as u32).wrapping_mul(13) % tau,
                interval: Window::new((s as u32).wrapping_mul(97) % (base as u32), u32::MAX),
            },
            scorer: spec.clone(),
        };
        let id = serving
            .subscribe_verified(req.clone())
            .map_err(|e| format!("subscription {s} rejected: {e}"))?;
        subs.push((id, req));
    }
    if mode.subscribe > 0 {
        eprintln!("registered {} standing subscriptions", mode.subscribe);
    }

    // `appended` publishes how many records are safely queryable: queries
    // only look backwards, so any interval ending before this watermark
    // gets the same answer no matter how far ingestion has advanced.
    let appended = AtomicU32::new(base as u32);
    let per_client = mode.requests.div_ceil(mode.clients);
    let started = Instant::now();
    type Sample = (ServeRequest, Vec<u32>);
    let (latencies, samples, rejected, fallbacks) = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..mode.clients {
            let serving = serving.clone();
            let appended = &appended;
            let algs = &algs;
            let spec = spec.clone();
            clients.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut samples: Vec<Sample> = Vec::new();
                let mut rejected = 0usize;
                let mut fallbacks = 0usize;
                // The last client takes the remainder so exactly
                // --requests are issued overall.
                for i in (c * per_client)..((c + 1) * per_client).min(mode.requests) {
                    let upto = appended.load(Ordering::Acquire);
                    // Deterministic parameter sweep around --k/--tau, with
                    // the interval always inside the published watermark.
                    let b = (i as u32).wrapping_mul(7919) % upto;
                    let a = b.saturating_sub(1 + (i as u32).wrapping_mul(104_729) % upto);
                    let req = ServeRequest {
                        alg: algs[i % algs.len()],
                        query: DurableQuery {
                            k: 1 + i % k,
                            tau: 1 + (i as u32).wrapping_mul(31) % tau,
                            interval: Window::new(a, b),
                        },
                        scorer: spec.clone(),
                    };
                    match serving.submit(req.clone()) {
                        Ok(handle) => match handle.wait() {
                            Ok(response) => {
                                latencies.push(total_latency(response.queued, response.service));
                                fallbacks += usize::from(response.stats.is_fallback());
                                if i % 50 == 0 {
                                    samples.push((req, response.records));
                                }
                            }
                            Err(e) => return Err(format!("request {i} failed: {e}")),
                        },
                        Err(durable_topk::ServeError::QueueFull) => rejected += 1,
                        Err(e) => return Err(format!("request {i} not accepted: {e}")),
                    }
                }
                Ok((latencies, samples, rejected, fallbacks))
            }));
        }
        // The main thread plays the ingestion side: append the withheld
        // tail while the clients hammer the queue.
        for id in base..n {
            if let Err(e) = serving.append(ds.row(id as u32)) {
                return Err(format!("append {id} failed: {e}"));
            }
            appended.store(id as u32 + 1, Ordering::Release);
        }
        let mut latencies = Vec::new();
        let mut samples = Vec::new();
        let mut rejected = 0usize;
        let mut fallbacks = 0usize;
        for client in clients {
            let (lat, smp, rej, fbk) = client.join().map_err(|_| "client thread panicked")??;
            latencies.extend(lat);
            samples.extend(smp);
            rejected += rej;
            fallbacks += fbk;
        }
        Ok((latencies, samples, rejected, fallbacks))
    })?;
    serving.shutdown();
    let elapsed = started.elapsed();

    // Exactness spot-check: served answers must match direct queries
    // against the (now quiesced) engine — the ingestion race never shows.
    serving.quiesce();
    serving.subscription_sync();
    let engine = serving.engine();
    for (req, records) in &samples {
        let direct = engine
            .try_query(req.alg, &scorer, &req.query)
            .map_err(|e| format!("verification query failed: {e}"))?;
        if &direct.records != records {
            return Err(format!(
                "served answer diverged from the engine for {req:?}: {} vs {} records",
                records.len(),
                direct.records.len()
            ));
        }
    }
    // Every standing subscription must now hold exactly what a full
    // recompute over its interval yields — no drift allowed.
    for (sid, req) in &subs {
        let snap = serving.poll_subscription(*sid).ok_or("registered subscription disappeared")?;
        if snap.diverged {
            return Err(format!("subscription {sid:?} diverged from its seal verification"));
        }
        let full = DurableQuery {
            k: req.query.k,
            tau: req.query.tau,
            interval: Window::new(req.query.interval.start(), (n - 1) as u32),
        };
        let direct = engine
            .try_query(req.alg, &scorer, &full)
            .map_err(|e| format!("subscription recompute failed: {e}"))?;
        if snap.records != direct.records {
            return Err(format!(
                "subscription {sid:?} diverged from recompute: {} vs {} records",
                snap.records.len(),
                direct.records.len()
            ));
        }
    }
    drop(engine);

    let stats = serving.stats();
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    // `fallbacks=` is machine-checked by the CI serve smoke: with a
    // skyband bound covering the sweep, any nonzero count means an index
    // went missing somewhere on the ingestion timeline.
    // `cache-hits=` is likewise grepped nonzero by the smoke when the
    // result cache is on: the deterministic sweep revisits sealed shards.
    println!(
        "served {} requests in {elapsed:.2?} ({:.0} req/s) — {} verified, {} rejected, \
         fallbacks={fallbacks}, cold-page-hits={}, cache-hits={} cache-misses={} \
         cache-evictions={} cache-bytes={}, subs={} refreshes={} fast-path-skips={} \
         full-recomputes={}",
        stats.completed,
        stats.completed as f64 / elapsed.as_secs_f64().max(1e-9),
        samples.len(),
        rejected,
        stats.cold_page_hits,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_bytes,
        stats.subscriptions,
        stats.refreshes,
        stats.fast_path_skips,
        stats.full_recomputes,
    );
    println!(
        "latency p50={:.2?} p99={:.2?} max={:.2?}; queue high-water {} of {}; \
         refresh high-water {}; avg queued {:.2?}, avg service {:.2?}",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or_default(),
        stats.max_depth,
        mode.queue_cap,
        stats.max_refresh_inflight,
        stats.total_queued.checked_div(stats.completed.max(1) as u32).unwrap_or_default(),
        stats.total_service.checked_div(stats.completed.max(1) as u32).unwrap_or_default(),
    );
    // Lock-tracking stats: a no-op line in release builds (tracking off),
    // the checker's acquisition count and deepest nesting in debug runs.
    let check = durable_topk::check::report();
    if check.enabled {
        println!(
            "lock-check: tracked-acquisitions={} max-held-depth={}",
            check.tracked_acquisitions, check.max_held_depth
        );
    }
    Ok(())
}

/// Hosts one contiguous slice of the file behind the TCP wire protocol
/// (`serve-node`): builds a sharded engine over rows `[A − tau, B]` (the
/// extra `tau` rows are the left context that keeps every owned
/// durability window exact), then serves query/stats/ranges frames until
/// killed.
fn serve_node(args: &Args) -> Result<(), String> {
    let mode = parse_serve_node(args)?;
    let ds = load(args)?;
    non_empty(&ds, args.positional.first().map_or("input", String::as_str))?;
    let n = ds.len() as u32;
    let (lo, hi) = mode.range;
    if hi >= n {
        return Err(format!("--range end {hi} is past the last record {}", n - 1));
    }
    let k: usize = parse_positive(args, "k", 10)?;
    let tau: u32 = parse_positive(args, "tau", (n / 10).max(1))?;
    let ext_lo = lo.saturating_sub(tau);
    let slice = Dataset::from_rows(ds.dim(), (ext_lo..=hi).map(|id| ds.row(id).to_vec()));
    let span = (tau as usize * 4).clamp(1_024, 262_144);
    let shard_count = (slice.len() / span).max(1);
    let engine = EngineConfig::new(ds.dim(), span, tau)
        .skyband_bound(k)
        .build_from(&slice, shard_count)
        .map_err(|e| e.to_string())?;
    let serving = ServeEngine::new(engine, 256, Backpressure::Block);
    let listener = std::net::TcpListener::bind(&mode.listen)
        .map_err(|e| format!("--listen {}: {e}", mode.listen))?;
    let identity = NodeIdentity { base: ext_lo, owned_lo: lo };
    let server = NodeServer::spawn(listener, serving, identity, NodeServerOptions::default())
        .map_err(|e| format!("node server: {e}"))?;
    // Stderr so the readiness line is visible immediately even when stdout
    // is piped (block-buffered) by a harness.
    eprintln!(
        "node listening on {} — owns [{lo}, {hi}], context from {ext_lo}, tau {tau}, k bound {k}",
        server.addr()
    );
    loop {
        std::thread::park();
    }
}

/// Builds the coordinator over `--nodes`, retrying while the node
/// processes finish starting up; only transport errors retry.
fn connect_cluster(nodes: &[String]) -> Result<Coordinator, String> {
    let members: Vec<std::sync::Arc<dyn Node>> = nodes
        .iter()
        .map(|addr| {
            std::sync::Arc::new(RemoteNode::connect(addr.clone(), RemoteOptions::default()))
                as std::sync::Arc<dyn Node>
        })
        .collect();
    let mut attempt = 0u32;
    loop {
        match Coordinator::new(members.clone()) {
            Ok(c) => return Ok(c),
            Err(e @ (NetError::Io { .. } | NetError::Wire(_))) if attempt < 40 => {
                attempt += 1;
                if attempt == 1 {
                    eprintln!("waiting for nodes to come up ({e})");
                }
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => return Err(format!("cluster: {e}")),
        }
    }
}

/// Drives a query-only client storm through the scatter-gather
/// coordinator (`serve --nodes`): the deterministic parameter sweep of
/// `serve`, answered by remote nodes instead of an in-process queue, with
/// sampled answers re-checked against a local reference engine and
/// per-node counters in the summary.
fn serve_cluster(args: &Args, nodes: &[String]) -> Result<(), String> {
    for flag in ["ingest", "subscribe", "queue-cap", "storage", "spill-after", "result-cache"] {
        if args.options.contains_key(flag) || args.has(flag) {
            return Err(format!(
                "--nodes serving is query-only over remote engines; \
                 --{flag} applies to single-process serve"
            ));
        }
    }
    if args.has("reject") {
        return Err("--nodes serving has no local queue; --reject does not apply".to_string());
    }
    let ds = load(args)?;
    non_empty(&ds, args.positional.first().map_or("input", String::as_str))?;
    let n = ds.len();
    let k: usize = parse_positive(args, "k", 10)?;
    let tau: u32 = parse_positive(args, "tau", ((n as u32) / 10).max(1))?;
    let algs = parse_algorithms(args.get_or("alg", "all"))?;
    let mode: ServeMode = parse_serve(args)?;
    let weights = match args.options.get("weights") {
        None => None,
        Some(w) => {
            let weights = parse_weights(w)?;
            if weights.len() != ds.dim() {
                return Err(format!(
                    "--weights has {} entries but the data has {} attributes",
                    weights.len(),
                    ds.dim()
                ));
            }
            Some(weights)
        }
    };
    let scorer = match &weights {
        None => LinearScorer::uniform(ds.dim()),
        Some(w) => LinearScorer::new(w.clone()),
    };
    let spec = match weights {
        None => ScorerSpec::Uniform,
        Some(w) => ScorerSpec::Linear(w),
    };

    let coordinator = connect_cluster(nodes)?;
    let total = coordinator.total_len();
    if total != n {
        return Err(format!(
            "cluster covers {total} records but the file holds {n}; \
             every node must serve a slice of the same file"
        ));
    }
    let cluster_tau = coordinator.cluster_max_tau();
    if tau > cluster_tau {
        return Err(format!(
            "--tau {tau} exceeds the cluster's exactness bound {cluster_tau} \
             (restart the nodes with a larger --tau)"
        ));
    }
    eprintln!(
        "cluster of {} nodes covering {total} records (max tau {cluster_tau}); \
         {} clients x {} requests",
        nodes.len(),
        mode.clients,
        mode.requests,
    );

    // The reference answers come from a local flat engine over the same
    // file — the cluster must agree with it bit for bit.
    let mut reference = DurableTopKEngine::new(ds);
    if algs.contains(&Algorithm::SBand) {
        reference = reference.with_skyband_index(k);
    }

    let per_client = mode.requests.div_ceil(mode.clients);
    let upto = total as u32;
    let started = Instant::now();
    type Sample = (ServeRequest, Vec<u32>);
    let (latencies, samples, fallbacks) = std::thread::scope(|scope| -> Result<_, String> {
        let mut clients = Vec::new();
        for c in 0..mode.clients {
            let coordinator = &coordinator;
            let algs = &algs;
            let spec = spec.clone();
            clients.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut samples: Vec<Sample> = Vec::new();
                let mut fallbacks = 0usize;
                // The same deterministic sweep as single-process serve so
                // the two modes exercise comparable workloads.
                for i in (c * per_client)..((c + 1) * per_client).min(mode.requests) {
                    let b = (i as u32).wrapping_mul(7919) % upto;
                    let a = b.saturating_sub(1 + (i as u32).wrapping_mul(104_729) % upto);
                    let req = ServeRequest {
                        alg: algs[i % algs.len()],
                        query: DurableQuery {
                            k: 1 + i % k,
                            tau: 1 + (i as u32).wrapping_mul(31) % tau,
                            interval: Window::new(a, b),
                        },
                        scorer: spec.clone(),
                    };
                    match coordinator.query(&req) {
                        Ok(response) => {
                            latencies.push(response.service);
                            fallbacks += usize::from(response.stats.is_fallback());
                            if i % 50 == 0 {
                                samples.push((req, response.records));
                            }
                        }
                        Err(e) => return Err(format!("request {i} failed: {e}")),
                    }
                }
                Ok((latencies, samples, fallbacks))
            }));
        }
        let mut latencies = Vec::new();
        let mut samples = Vec::new();
        let mut fallbacks = 0usize;
        for client in clients {
            let (lat, smp, fbk) = client.join().map_err(|_| "client thread panicked")??;
            latencies.extend(lat);
            samples.extend(smp);
            fallbacks += fbk;
        }
        Ok((latencies, samples, fallbacks))
    })?;
    let elapsed = started.elapsed();

    // Exactness spot-check: scatter-gather answers must match the local
    // reference engine record for record.
    for (req, records) in &samples {
        let direct = reference.query(req.alg, &scorer, &req.query);
        if &direct.records != records {
            return Err(format!(
                "cluster answer diverged from the reference for {req:?}: {} vs {} records",
                records.len(),
                direct.records.len()
            ));
        }
    }

    let stats = coordinator.stats();
    let retries: u64 = stats.nodes.iter().map(|node| node.net_retries).sum();
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    // `fallbacks=` and the per-node `requests=` counts are machine-checked
    // by the CI multi-node smoke.
    println!(
        "served {} requests in {elapsed:.2?} ({:.0} req/s) — {} verified, fallbacks={fallbacks}, \
         nodes={} net-retries={retries}",
        latencies.len(),
        latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        samples.len(),
        stats.nodes.len(),
    );
    println!(
        "latency p50={:.2?} p99={:.2?} max={:.2?}",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or_default(),
    );
    for (i, node) in stats.nodes.iter().enumerate() {
        println!(
            "node[{i}] {} requests={} errors={} net-retries={} p50={:.2?} p99={:.2?}",
            node.label, node.requests, node.errors, node.net_retries, node.p50, node.p99,
        );
    }
    Ok(())
}

/// Runs the same query under every algorithm through the batch executor and
/// prints a comparison table (`--alg all`).
fn sweep(
    engine: &DurableTopKEngine,
    algs: &[Algorithm],
    scorer: &LinearScorer,
    q: &DurableQuery,
    threads: usize,
) -> Result<(), String> {
    let executor = BatchExecutor::new(threads);
    let started = std::time::Instant::now();
    let results = executor.run_sweep(engine, algs, scorer, q);
    let elapsed = started.elapsed();
    println!(
        "{} durable records (k={}, tau={}, I={}) — {} algorithms on {} threads in {:.2?}",
        results.first().map_or(0, |r| r.records.len()),
        q.k,
        q.tau,
        q.interval,
        algs.len(),
        executor.resolved_threads(algs.len()),
        elapsed,
    );
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>13}",
        "alg", "topk-queries", "checks", "candidates", "fallback"
    );
    for (alg, r) in algs.iter().zip(&results) {
        println!(
            "{:<8} {:>14} {:>12} {:>12} {:>13}",
            alg.to_string(),
            r.stats.topk_queries(),
            r.stats.durability_checks,
            r.stats.candidates,
            fallback_cell(&r.stats),
        );
        if r.records != results[0].records {
            return Err(format!("answer mismatch: {alg} disagrees with {}", algs[0]));
        }
    }
    Ok(())
}
