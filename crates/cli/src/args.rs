//! Minimal argument parsing (std-only).

use durable_topk::Algorithm;
use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and `--flag
/// value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` options (last occurrence wins).
    pub options: HashMap<String, String>,
    /// Bare `--key` switches.
    pub switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`-style input (program name excluded).
    ///
    /// A flag is a switch when the next token is absent or itself a flag.
    pub fn parse<I: IntoIterator<Item = String>>(input: I) -> Args {
        let tokens: Vec<String> = input.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                let next_is_value = i + 1 < tokens.len() && !tokens[i + 1].starts_with("--");
                if next_is_value {
                    args.options.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                if args.command.is_empty() {
                    args.command = tok.clone();
                } else {
                    args.positional.push(tok.clone());
                }
                i += 1;
            }
        }
        args
    }

    /// A required option, or an error message naming it.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Parses an option as `T`, with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Whether a bare switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Parses `a:b` into an inclusive range.
pub fn parse_range(s: &str) -> Result<(u32, u32), String> {
    let (a, b) =
        s.split_once(':').ok_or_else(|| format!("range {s:?} must look like start:end"))?;
    let a: u32 = a.parse().map_err(|_| format!("bad range start {a:?}"))?;
    let b: u32 = b.parse().map_err(|_| format!("bad range end {b:?}"))?;
    if a > b {
        return Err(format!("inverted range {s:?}"));
    }
    Ok((a, b))
}

/// Parses `w1,w2,…` into a weight vector.
pub fn parse_weights(s: &str) -> Result<Vec<f64>, String> {
    s.split(',').map(|w| w.trim().parse::<f64>().map_err(|_| format!("bad weight {w:?}"))).collect()
}

/// Parses an `--alg` value: one algorithm name, or `all` for a batch sweep
/// over every variant.
pub fn parse_algorithms(s: &str) -> Result<Vec<Algorithm>, String> {
    match s {
        "all" => Ok(Algorithm::ALL.to_vec()),
        "tbase" => Ok(vec![Algorithm::TBase]),
        "thop" => Ok(vec![Algorithm::THop]),
        "sbase" => Ok(vec![Algorithm::SBase]),
        "sband" => Ok(vec![Algorithm::SBand]),
        "shop" => Ok(vec![Algorithm::SHop]),
        "shop1" => Ok(vec![Algorithm::SHopTop1]),
        other => Err(format!(
            "unknown algorithm {other:?} (expected tbase|thop|sbase|sband|shop|shop1|all)"
        )),
    }
}

/// Options of the `--stream` replay mode: ingest the file record by
/// record into a live sharded engine, interleaving appends and queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMode {
    /// Run a progress query every this many appends (`--every`; `None`
    /// defaults to a tenth of the dataset).
    pub every: Option<usize>,
}

/// Parses and validates the `--stream` replay flags.
///
/// Mirrors the `--threads` validation style: plain error strings naming
/// the offending flag combination.
pub fn parse_stream(args: &Args, algs: &[Algorithm]) -> Result<Option<StreamMode>, String> {
    if !args.has("stream") {
        if args.options.contains_key("every") || args.switches.iter().any(|s| s == "every") {
            return Err("--every requires --stream".to_string());
        }
        return Ok(None);
    }
    if algs.len() > 1 {
        return Err("--stream cannot be combined with --alg all".to_string());
    }
    if args.has("lookahead") {
        return Err("--stream cannot be combined with --lookahead".to_string());
    }
    if args.has("durations") {
        return Err("--stream cannot be combined with --durations".to_string());
    }
    if args.options.contains_key("threads") || args.switches.iter().any(|s| s == "threads") {
        // Replay queries fan out through the global worker pool; a per-run
        // worker cap is not honored, so reject it instead of ignoring it.
        return Err("--stream cannot be combined with --threads".to_string());
    }
    let every = match args.options.get("every") {
        None => None,
        Some(v) => {
            let every: usize = v.parse().map_err(|_| format!("--every: cannot parse {v:?}"))?;
            if every == 0 {
                return Err("--every must be at least 1".to_string());
            }
            Some(every)
        }
    };
    Ok(Some(StreamMode { every }))
}

/// Options of the `serve` replay mode: drive a workload through the
/// bounded request queue with several client threads while the tail of
/// the file is ingested live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeMode {
    /// Concurrent client threads submitting requests (`--clients`).
    pub clients: usize,
    /// Total requests replayed across all clients (`--requests`).
    pub requests: usize,
    /// Bounded queue capacity (`--queue-cap`).
    pub queue_cap: usize,
    /// Shed load when the queue is full (`--reject`) instead of blocking.
    pub reject: bool,
    /// Records withheld from the initial build and appended live while
    /// the clients run (`--ingest`; `None` defaults to a tenth of the
    /// file).
    pub ingest: Option<usize>,
    /// Standing subscriptions registered before the client storm and kept
    /// current incrementally from the live appends (`--subscribe`,
    /// default 0).
    pub subscribe: usize,
}

/// Parses and validates the `serve` subcommand flags.
pub fn parse_serve(args: &Args) -> Result<ServeMode, String> {
    for conflicting in ["stream", "every", "lookahead", "durations", "threads"] {
        if args.options.contains_key(conflicting) || args.has(conflicting) {
            return Err(format!("serve cannot be combined with --{conflicting}"));
        }
    }
    let clients: usize = args.parse_or("clients", 4)?;
    if clients == 0 || clients > MAX_THREADS {
        return Err(format!("--clients must be between 1 and {MAX_THREADS}, got {clients}"));
    }
    let requests: usize = args.parse_or("requests", 400)?;
    if requests == 0 {
        return Err("--requests must be at least 1".to_string());
    }
    let queue_cap: usize = args.parse_or("queue-cap", 256)?;
    if queue_cap == 0 {
        return Err("--queue-cap must be at least 1".to_string());
    }
    let ingest = match args.options.get("ingest") {
        None => None,
        Some(v) => Some(v.parse::<usize>().map_err(|_| format!("--ingest: cannot parse {v:?}"))?),
    };
    let subscribe: usize = args.parse_or("subscribe", 0)?;
    if subscribe > 10_000 {
        return Err(format!("--subscribe must be at most 10000, got {subscribe}"));
    }
    Ok(ServeMode { clients, requests, queue_cap, reject: args.has("reject"), ingest, subscribe })
}

/// Parses `--nodes host:port,host:port,…` into the coordinator's member
/// list (`None` when the flag is absent — single-process serving).
pub fn parse_nodes(args: &Args) -> Result<Option<Vec<String>>, String> {
    if args.switches.iter().any(|s| s == "nodes") {
        return Err("--nodes needs a value: a comma-separated host:port list".to_string());
    }
    let Some(v) = args.options.get("nodes") else { return Ok(None) };
    let nodes: Vec<String> =
        v.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect();
    if nodes.is_empty() {
        return Err("--nodes lists no addresses".to_string());
    }
    Ok(Some(nodes))
}

/// Options of the `serve-node` subcommand: host one contiguous slice of
/// the global timeline behind the TCP wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeNodeMode {
    /// The listen address (`--listen host:port`; port 0 picks a free one).
    pub listen: String,
    /// The owned slice of the global timeline (`--range A:B`, inclusive).
    pub range: (u32, u32),
}

/// Parses and validates the `serve-node` subcommand flags.
pub fn parse_serve_node(args: &Args) -> Result<ServeNodeMode, String> {
    for conflicting in [
        "stream",
        "every",
        "lookahead",
        "durations",
        "threads",
        "clients",
        "requests",
        "ingest",
        "subscribe",
        "nodes",
    ] {
        if args.options.contains_key(conflicting) || args.has(conflicting) {
            return Err(format!("serve-node cannot be combined with --{conflicting}"));
        }
    }
    let listen = args.require("listen")?.to_string();
    let range = parse_range(args.require("range")?)?;
    Ok(ServeNodeMode { listen, range })
}

/// Storage backend of a live sharded engine (`--storage`, `--spill-after`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageChoice {
    /// Keep every sealed chunk resident in memory (the default).
    Memory,
    /// Spill sealed chunks beyond the newest `spill_after` to pager-backed
    /// pages in a temporary file, reloading them on demand at query time.
    Paged {
        /// Sealed chunks kept resident before older ones spill.
        spill_after: usize,
    },
}

/// Sealed chunks a paged backend keeps resident when `--spill-after` is
/// not given.
pub const DEFAULT_SPILL_AFTER: usize = 4;

/// Parses the `--storage memory|paged` / `--spill-after N` backend flags.
pub fn parse_storage(args: &Args) -> Result<StorageChoice, String> {
    if args.switches.iter().any(|s| s == "storage") {
        return Err("--storage needs a value: memory|paged".to_string());
    }
    let spill_after = match args.options.get("spill-after") {
        None => None,
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("--spill-after: cannot parse {v:?}"))?;
            if n == 0 {
                return Err("--spill-after must be at least 1".to_string());
            }
            Some(n)
        }
    };
    match (args.options.get("storage").map(String::as_str), spill_after) {
        (None | Some("memory"), None) => Ok(StorageChoice::Memory),
        (None | Some("memory"), Some(_)) => {
            Err("--spill-after requires --storage paged".to_string())
        }
        (Some("paged"), n) => {
            Ok(StorageChoice::Paged { spill_after: n.unwrap_or(DEFAULT_SPILL_AFTER) })
        }
        (Some(other), _) => {
            Err(format!("unknown storage backend {other:?} (expected memory|paged)"))
        }
    }
}

/// Byte budget of the sealed-shard result cache when `--result-cache` is
/// not given (32 MiB).
pub const DEFAULT_RESULT_CACHE_BYTES: usize = 32 * 1024 * 1024;

/// Parses `--result-cache <bytes>|off`: the byte budget of the sealed-shard
/// result cache the live modes (`--stream` replay and `serve`) put in front
/// of their sealed tails. `None` means the cache is disabled.
pub fn parse_result_cache(args: &Args) -> Result<Option<usize>, String> {
    if args.switches.iter().any(|s| s == "result-cache") {
        return Err("--result-cache needs a value: a byte budget or off".to_string());
    }
    match args.options.get("result-cache").map(String::as_str) {
        None => Ok(Some(DEFAULT_RESULT_CACHE_BYTES)),
        Some("off") => Ok(None),
        Some(v) => {
            let bytes: usize = v.parse().map_err(|_| {
                format!("--result-cache: cannot parse {v:?} (expected a byte budget or off)")
            })?;
            if bytes == 0 {
                return Err("--result-cache must be at least 1 byte (use off to disable)".into());
            }
            Ok(Some(bytes))
        }
    }
}

/// Largest worker count the CLI accepts (a typo guard, not a scheduler).
pub const MAX_THREADS: usize = 1024;

/// Parses `--threads`: `0` (the default) means "use available parallelism".
pub fn parse_threads(args: &Args) -> Result<usize, String> {
    let threads: usize = args.parse_or("threads", 0)?;
    if threads > MAX_THREADS {
        return Err(format!("--threads must be at most {MAX_THREADS}, got {threads}"));
    }
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn command_options_and_switches() {
        let a = parse("query data.csv --k 5 --durations --tau 100");
        assert_eq!(a.command, "query");
        assert_eq!(a.positional, vec!["data.csv"]);
        assert_eq!(a.require("k").expect("k"), "5");
        assert_eq!(a.parse_or::<u32>("tau", 1).expect("tau"), 100);
        assert!(a.has("durations"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("stats file.csv");
        assert_eq!(a.get_or("alg", "shop"), "shop");
        assert_eq!(a.parse_or::<usize>("k", 10).expect("default"), 10);
        assert!(a.require("k").is_err());
    }

    #[test]
    fn ranges_and_weights() {
        assert_eq!(parse_range("3:9").expect("range"), (3, 9));
        assert!(parse_range("9:3").is_err());
        assert!(parse_range("nope").is_err());
        assert_eq!(parse_weights("0.5, 0.25,0.25").expect("weights"), vec![0.5, 0.25, 0.25]);
        assert!(parse_weights("1,x").is_err());
    }

    #[test]
    fn algorithm_names_resolve() {
        assert_eq!(parse_algorithms("thop").expect("thop"), vec![Algorithm::THop]);
        assert_eq!(parse_algorithms("shop1").expect("shop1"), vec![Algorithm::SHopTop1]);
        assert_eq!(parse_algorithms("all").expect("all"), Algorithm::ALL.to_vec());
        let err = parse_algorithms("fancy").expect_err("unknown must fail");
        assert!(err.contains("fancy") && err.contains("all"), "err={err}");
    }

    #[test]
    fn threads_validation() {
        assert_eq!(parse_threads(&parse("query f.csv")).expect("default"), 0);
        assert_eq!(parse_threads(&parse("query f.csv --threads 8")).expect("8"), 8);
        assert!(parse_threads(&parse("query f.csv --threads 9999")).is_err());
        assert!(parse_threads(&parse("query f.csv --threads -3")).is_err());
        assert!(parse_threads(&parse("query f.csv --threads many")).is_err());
    }

    #[test]
    fn serve_validation() {
        let m = parse_serve(&parse("serve f.csv")).expect("defaults");
        assert_eq!(
            m,
            ServeMode {
                clients: 4,
                requests: 400,
                queue_cap: 256,
                reject: false,
                ingest: None,
                subscribe: 0
            }
        );
        let m = parse_serve(&parse(
            "serve f.csv --clients 8 --requests 1000 --queue-cap 32 --reject --ingest 500 \
             --subscribe 6",
        ))
        .expect("explicit");
        assert_eq!(
            m,
            ServeMode {
                clients: 8,
                requests: 1000,
                queue_cap: 32,
                reject: true,
                ingest: Some(500),
                subscribe: 6
            }
        );
        assert!(parse_serve(&parse("serve f.csv --clients 0")).is_err());
        assert!(parse_serve(&parse("serve f.csv --requests 0")).is_err());
        assert!(parse_serve(&parse("serve f.csv --queue-cap 0")).is_err());
        assert!(parse_serve(&parse("serve f.csv --ingest lots")).is_err());
        assert!(parse_serve(&parse("serve f.csv --subscribe many")).is_err());
        assert!(parse_serve(&parse("serve f.csv --subscribe 20000")).is_err());
        let err = parse_serve(&parse("serve f.csv --threads 4")).expect_err("threads conflicts");
        assert!(err.contains("--threads"), "err={err}");
        let err = parse_serve(&parse("serve f.csv --stream")).expect_err("stream conflicts");
        assert!(err.contains("--stream"), "err={err}");
    }

    #[test]
    fn nodes_validation() {
        assert_eq!(parse_nodes(&parse("serve f.csv")).expect("absent"), None);
        assert_eq!(
            parse_nodes(&parse("serve f.csv --nodes 127.0.0.1:7471")).expect("one"),
            Some(vec!["127.0.0.1:7471".to_string()])
        );
        assert_eq!(
            parse_nodes(&parse("serve f.csv --nodes a:1,b:2,c:3")).expect("three"),
            Some(vec!["a:1".to_string(), "b:2".to_string(), "c:3".to_string()])
        );
        let err = parse_nodes(&parse("serve f.csv --nodes")).expect_err("missing value");
        assert!(err.contains("host:port"), "err={err}");
        assert!(parse_nodes(&parse("serve f.csv --nodes ,,")).is_err());
    }

    #[test]
    fn serve_node_validation() {
        let m = parse_serve_node(&parse("serve-node f.csv --listen 0.0.0.0:7471 --range 0:4999"))
            .expect("valid");
        assert_eq!(m, ServeNodeMode { listen: "0.0.0.0:7471".to_string(), range: (0, 4999) });
        let err =
            parse_serve_node(&parse("serve-node f.csv --range 0:10")).expect_err("needs listen");
        assert!(err.contains("--listen"), "err={err}");
        let err =
            parse_serve_node(&parse("serve-node f.csv --listen a:1")).expect_err("needs range");
        assert!(err.contains("--range"), "err={err}");
        assert!(parse_serve_node(&parse("serve-node f.csv --listen a:1 --range 9:3")).is_err());
        let err = parse_serve_node(&parse("serve-node f.csv --listen a:1 --range 0:9 --clients 4"))
            .expect_err("clients conflicts");
        assert!(err.contains("--clients"), "err={err}");
        let err = parse_serve_node(&parse("serve-node f.csv --listen a:1 --range 0:9 --stream"))
            .expect_err("stream conflicts");
        assert!(err.contains("--stream"), "err={err}");
    }

    #[test]
    fn storage_validation() {
        assert_eq!(parse_storage(&parse("serve f.csv")).expect("default"), StorageChoice::Memory);
        assert_eq!(
            parse_storage(&parse("serve f.csv --storage memory")).expect("memory"),
            StorageChoice::Memory
        );
        assert_eq!(
            parse_storage(&parse("serve f.csv --storage paged")).expect("paged"),
            StorageChoice::Paged { spill_after: DEFAULT_SPILL_AFTER }
        );
        assert_eq!(
            parse_storage(&parse("serve f.csv --storage paged --spill-after 2")).expect("paged 2"),
            StorageChoice::Paged { spill_after: 2 }
        );
        let err = parse_storage(&parse("serve f.csv --storage disk")).expect_err("unknown backend");
        assert!(err.contains("disk") && err.contains("paged"), "err={err}");
        let err = parse_storage(&parse("serve f.csv --storage")).expect_err("missing value");
        assert!(err.contains("memory|paged"), "err={err}");
        let err =
            parse_storage(&parse("serve f.csv --spill-after 2")).expect_err("orphan spill-after");
        assert!(err.contains("--storage paged"), "err={err}");
        let err = parse_storage(&parse("serve f.csv --storage memory --spill-after 2"))
            .expect_err("memory cannot spill");
        assert!(err.contains("--storage paged"), "err={err}");
        assert!(parse_storage(&parse("serve f.csv --storage paged --spill-after 0")).is_err());
        assert!(parse_storage(&parse("serve f.csv --storage paged --spill-after lots")).is_err());
    }

    #[test]
    fn result_cache_validation() {
        assert_eq!(
            parse_result_cache(&parse("serve f.csv")).expect("default"),
            Some(DEFAULT_RESULT_CACHE_BYTES)
        );
        assert_eq!(
            parse_result_cache(&parse("serve f.csv --result-cache 4194304")).expect("bytes"),
            Some(4_194_304)
        );
        assert_eq!(
            parse_result_cache(&parse("serve f.csv --result-cache off")).expect("off"),
            None
        );
        let err = parse_result_cache(&parse("serve f.csv --result-cache 0"))
            .expect_err("zero budget must fail");
        assert!(err.contains("off"), "err={err}");
        let err = parse_result_cache(&parse("serve f.csv --result-cache lots"))
            .expect_err("non-numeric must fail");
        assert!(err.contains("lots"), "err={err}");
        let err = parse_result_cache(&parse("serve f.csv --result-cache"))
            .expect_err("missing value must fail");
        assert!(err.contains("byte budget"), "err={err}");
    }

    #[test]
    fn stream_validation() {
        let one = [Algorithm::THop];
        let all = Algorithm::ALL;
        assert_eq!(parse_stream(&parse("query f.csv"), &one).expect("off"), None);
        assert_eq!(
            parse_stream(&parse("query f.csv --stream"), &one).expect("on"),
            Some(StreamMode { every: None })
        );
        assert_eq!(
            parse_stream(&parse("query f.csv --stream --every 500"), &one).expect("every"),
            Some(StreamMode { every: Some(500) })
        );
        let err = parse_stream(&parse("query f.csv --stream"), &all).expect_err("alg all");
        assert!(err.contains("--alg all"), "err={err}");
        let err = parse_stream(&parse("query f.csv --stream --lookahead"), &one)
            .expect_err("lookahead conflicts");
        assert!(err.contains("--lookahead"), "err={err}");
        let err = parse_stream(&parse("query f.csv --stream --durations"), &one)
            .expect_err("durations conflicts");
        assert!(err.contains("--durations"), "err={err}");
        let err = parse_stream(&parse("query f.csv --stream --threads 4"), &one)
            .expect_err("threads conflicts");
        assert!(err.contains("--threads"), "err={err}");
        assert!(parse_stream(&parse("query f.csv --stream --every 0"), &one).is_err());
        assert!(parse_stream(&parse("query f.csv --stream --every lots"), &one).is_err());
        let err = parse_stream(&parse("query f.csv --every 5"), &one).expect_err("orphan every");
        assert!(err.contains("requires --stream"), "err={err}");
    }
}
